//! Equivalence property tests for shard-parallel execution.
//!
//! For random tables, statements, partitionings (hash and range, over
//! several columns, with shard counts from 1 up to far more shards than
//! rows) and exclusion sets, the sharded path
//! ([`ShardedAggregateCache`]) must produce results identical — group
//! keys, aggregate values, order and schema — to the unsharded
//! [`GroupedAggregateCache`] on the base table.
//!
//! Like `incremental_equivalence.rs`, values live on the half-integer
//! grid so every partial sum is exactly representable in an `f64` and the
//! per-shard partial aggregates merge without rounding: *bitwise*
//! equality is the right assertion, and any disagreement is an
//! algorithmic bug in the shard/merge path, never floating-point noise.

use dbwipes::engine::{parse_select, ExclusionQuery, GroupedAggregateCache, ShardedAggregateCache};
use dbwipes::storage::{DataType, RowSet, Schema, ShardedTable, Value};
use dbwipes::{Condition, ConjunctivePredicate, RowId, Table};
use proptest::prelude::*;
use std::sync::Arc;

/// A random sensor-style table whose `value` column lies on the
/// half-integer grid (NULLs included).
fn arbitrary_table() -> impl Strategy<Value = Table> {
    let value = prop_oneof![Just(None), (-100i64..300).prop_map(|k| Some(k as f64 / 2.0))];
    let row = (0i64..4, 0i64..6, value);
    proptest::collection::vec(row, 1..60).prop_map(|rows| {
        let schema = Schema::of(&[
            ("grp", DataType::Int),
            ("device", DataType::Int),
            ("value", DataType::Float),
        ]);
        let mut t = Table::new("m", schema).unwrap();
        for (g, d, v) in rows {
            t.push_row(vec![
                Value::Int(g),
                Value::Int(d),
                v.map(Value::Float).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        t
    })
}

/// A random statement drawn from shapes covering every aggregate,
/// grouped and ungrouped queries, WHERE clauses, ORDER BY and LIMIT.
fn arbitrary_statement() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SELECT grp, avg(value), sum(value), count(*), count(value) FROM m GROUP BY grp".to_string()),
        Just("SELECT grp, stddev(value), variance(value) FROM m GROUP BY grp".to_string()),
        Just("SELECT grp, min(value), max(value) FROM m GROUP BY grp".to_string()),
        Just("SELECT grp, device, sum(value), max(value) FROM m GROUP BY grp, device".to_string()),
        Just("SELECT avg(value), min(value), max(value), count(*) FROM m".to_string()),
        (-40i64..120).prop_map(|t| format!(
            "SELECT grp, avg(value), max(value) FROM m WHERE value > {} GROUP BY grp",
            t as f64 / 2.0
        )),
        Just("SELECT grp, grp * 10 AS label, sum(value) FROM m GROUP BY grp ORDER BY sum_value DESC LIMIT 3".to_string()),
        Just("SELECT grp, count(value) FROM m GROUP BY grp ORDER BY 2 DESC, grp LIMIT 2".to_string()),
    ]
}

/// A random partitioning: hash or range, on any column (including the
/// NULL-bearing float column), with shard counts covering the degenerate
/// single shard, typical small counts, and far more shards than rows.
fn arbitrary_partition() -> impl Strategy<Value = (bool, &'static str, usize)> {
    (
        any::<bool>(),
        prop_oneof![Just("grp"), Just("device"), Just("value")],
        prop_oneof![Just(1usize), 2usize..6, Just(100usize)],
    )
}

/// A random exclusion set in base-table coordinates (some rows possibly
/// out of range or duplicated — both paths must tolerate both).
fn arbitrary_exclusions() -> impl Strategy<Value = Vec<RowId>> {
    proptest::collection::vec((0usize..70).prop_map(RowId), 0..40)
}

fn build_partition(table: &Table, hash: bool, column: &str, shards: usize) -> Arc<ShardedTable> {
    let sharded = if hash {
        ShardedTable::hash(table, column, shards)
    } else {
        ShardedTable::range(table, column, shards)
    };
    Arc::new(sharded.unwrap())
}

/// The core assertion: for one (table, partition, statement, exclusions)
/// tuple, the sharded cache's full and excluding results are bitwise
/// identical to the unsharded cache's.
fn assert_equivalent(
    table: &Table,
    sharded: &Arc<ShardedTable>,
    sql: &str,
    excluded: &[RowId],
) -> Result<(), String> {
    let stmt = parse_select(sql).unwrap();
    let unsharded = GroupedAggregateCache::build(table, &stmt).unwrap();
    let cache = ShardedAggregateCache::build(sharded.clone(), &stmt).unwrap();

    let full_a = unsharded.full_result();
    let full_b = cache.full_result();
    prop_assert!(
        full_a.rows == full_b.rows && full_a.group_keys == full_b.group_keys,
        "full results diverged for {sql}: {:?} != {:?}",
        full_a.rows,
        full_b.rows
    );
    prop_assert_eq!(full_a.schema.names(), full_b.schema.names());

    // Exclusion path: global rows split through the partition mapping.
    let incremental = unsharded.result(&ExclusionQuery::new().excluding_rows(excluded));
    let split = sharded.split_rows(excluded);
    let sets: Vec<RowSet> = split
        .iter()
        .zip(sharded.shards())
        .map(|(rows, t)| RowSet::from_rows(t.num_rows(), rows.iter()))
        .collect();
    let merged = cache.result_excluding_local_sets(&sets);
    prop_assert!(
        incremental.rows == merged.rows && incremental.group_keys == merged.group_keys,
        "excluding results diverged for {sql} excluding {excluded:?}: {:?} != {:?}",
        incremental.rows,
        merged.rows
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: random (table, partition, statement,
    /// exclusion) tuples — hash and range, shard counts 1 / small / far
    /// beyond the row count — answer bitwise identically to the
    /// unsharded cache, full and under exclusion.
    #[test]
    fn sharded_matches_unsharded(
        table in arbitrary_table(),
        (hash, column, shards) in arbitrary_partition(),
        excluded in arbitrary_exclusions(),
        sql_a in arbitrary_statement(),
        sql_b in arbitrary_statement(),
    ) {
        let sharded = build_partition(&table, hash, column, shards);
        prop_assert_eq!(
            sharded.shards().iter().map(|s| s.num_rows()).sum::<usize>(),
            table.num_rows()
        );
        for sql in [&sql_a, &sql_b] {
            assert_equivalent(&table, &sharded, sql, &excluded)?;
        }
    }

    /// Boundary-straddling predicates: under *range* partitioning on the
    /// aggregated column, exclusion sets drawn from threshold predicates
    /// land on both sides of (and exactly on) the shard boundaries. The
    /// per-key path must agree with the unsharded per-key path too.
    #[test]
    fn range_boundary_straddling_predicates_match(
        table in arbitrary_table(),
        shards in 2usize..5,
        threshold in -50i64..150,
    ) {
        let sharded = build_partition(&table, false, "value", shards);
        let stmt = parse_select("SELECT grp, avg(value), count(*) FROM m GROUP BY grp").unwrap();
        let unsharded = GroupedAggregateCache::build(&table, &stmt).unwrap();
        let cache = ShardedAggregateCache::build(sharded.clone(), &stmt).unwrap();

        // `value > t/2` straddles every boundary above the threshold; the
        // exclusion set is exactly the ranker's TRUE-or-UNKNOWN rows.
        let predicate =
            ConjunctivePredicate::new(vec![Condition::above("value", threshold as f64 / 2.0)]);
        let p_expr = predicate.to_expr();
        let excluded: Vec<RowId> = table
            .visible_row_ids()
            .filter(|&r| {
                unsharded.contains(r)
                    && !matches!(p_expr.eval(&table, r), Ok(Value::Bool(false)))
            })
            .collect();

        let keys: Vec<Vec<Value>> = (0..4).map(|g| vec![Value::Int(g)]).collect();
        let a = unsharded.result(&ExclusionQuery::new().excluding_rows(&excluded).for_keys(&keys));
        let b = cache.result_excluding_keys_global(&excluded, &keys);
        prop_assert!(
            a.rows == b.rows && a.group_keys == b.group_keys,
            "per-key results diverged at threshold {threshold}: {:?} != {:?}",
            a.rows,
            b.rows
        );
        assert_equivalent(&table, &sharded, "SELECT grp, sum(value), min(value) FROM m GROUP BY grp", &excluded)?;
    }

    /// Whole-group and whole-table exclusion across shard boundaries:
    /// groups that vanish must vanish identically, and excluding every
    /// row leaves both paths agreeing on the empty (or implicit-group)
    /// answer.
    #[test]
    fn cross_shard_group_exclusion_matches(
        table in arbitrary_table(),
        (hash, column, shards) in arbitrary_partition(),
        victim in 0i64..4,
    ) {
        let sharded = build_partition(&table, hash, column, shards);
        let excluded: Vec<RowId> = (0..table.num_rows())
            .map(RowId)
            .filter(|&r| {
                table.value_by_name(r, "grp").map(|v| v == Value::Int(victim)).unwrap_or(false)
            })
            .collect();
        assert_equivalent(&table, &sharded, "SELECT grp, sum(value), count(*) FROM m GROUP BY grp", &excluded)?;
        let all: Vec<RowId> = (0..table.num_rows()).map(RowId).collect();
        assert_equivalent(&table, &sharded, "SELECT grp, avg(value) FROM m GROUP BY grp", &all)?;
        assert_equivalent(&table, &sharded, "SELECT avg(value), count(*), min(value) FROM m", &all)?;
    }
}

//! Equivalence property tests for streaming ingestion.
//!
//! The streaming path never rebuilds: retained aggregate caches and shard
//! partitions *absorb* appended rows in place (`absorb_append`), and open
//! server sessions fast-forward through the shared registry. These tests
//! pin the whole path to one property — **append-then-absorb is bitwise
//! identical to rebuild-from-scratch**:
//!
//! * [`GroupedAggregateCache::absorb_append`] against a cold build over
//!   the grown table, full and under exclusion — including the MIN/MAX
//!   rescan fallback, groups created by appended rows, and appends
//!   interleaved with exclusion queries;
//! * [`ShardedTable::absorb_append`] against fresh hash partitions at
//!   1–5 shards (shard contents, row routing and zone-map pruning all
//!   compared), plus answer-level equivalence for grown range partitions
//!   whose quantile boundaries a rebuild would *not* reproduce;
//! * the live-append gate: after N streamed batches through
//!   [`SessionManager::stream_append`], every open session's explanation
//!   is bit-identical to one computed on a freshly built table, with zero
//!   append-attributable tier-1 rebuilds asserted on the registry
//!   counters.
//!
//! Absorbing replays `AggregateState::add` over the appended suffix in
//! row order — exactly the additions a cold build would perform after the
//! prefix — so *bitwise* equality is the right assertion even off the
//! half-integer grid: any disagreement is an algorithmic bug in the
//! absorb path, never floating-point reordering noise.

use dbwipes::data::{generate_sensor, SensorConfig};
use dbwipes::engine::{parse_select, ExclusionQuery, GroupedAggregateCache, ShardedAggregateCache};
use dbwipes::storage::{Condition, DataType, RowSet, Schema, ShardedTable, Value};
use dbwipes::{Catalog, RowId, Table};
use dbwipes_server::SessionManager;
use proptest::prelude::*;
use std::sync::Arc;

/// One synthetic reading: (grp, device, value-on-the-half-integer-grid).
type Row = (i64, i64, Option<f64>);

fn push_reading(t: &mut Table, (g, d, v): Row) {
    t.push_row(vec![Value::Int(g), Value::Int(d), v.map(Value::Float).unwrap_or(Value::Null)])
        .unwrap();
}

fn table_of(rows: &[Row]) -> Table {
    let schema = Schema::of(&[
        ("grp", DataType::Int),
        ("device", DataType::Int),
        ("value", DataType::Float),
    ]);
    let mut t = Table::new("m", schema).unwrap();
    for &row in rows {
        push_reading(&mut t, row);
    }
    t
}

/// An append-only descendant: the same table identity grown by `rows`.
fn grow(base: &Table, rows: &[Row]) -> Table {
    let mut grown = base.clone();
    for &row in rows {
        push_reading(&mut grown, row);
    }
    grown
}

/// Prefix rows draw groups from 0..4; appended rows from 0..8, so roughly
/// half the appended traffic lands in groups the prefix never created.
fn arbitrary_rows(
    groups: std::ops::Range<i64>,
    len: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<Row>> {
    let value = prop_oneof![Just(None), (-100i64..300).prop_map(|k| Some(k as f64 / 2.0))];
    proptest::collection::vec((groups, 0i64..6, value), len)
}

/// A random exclusion set over the *grown* universe (some rows possibly
/// out of range or duplicated — the cache must tolerate both).
fn arbitrary_exclusions() -> impl Strategy<Value = Vec<RowId>> {
    proptest::collection::vec((0usize..120).prop_map(RowId), 0..40)
}

/// Statement shapes covering every aggregate — MIN/MAX included, whose
/// states cannot subtract and exercise the retained-argument rescan.
fn arbitrary_statement() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(
            "SELECT grp, avg(value), sum(value), count(*), count(value) FROM m GROUP BY grp"
                .to_string()
        ),
        Just("SELECT grp, stddev(value), variance(value) FROM m GROUP BY grp".to_string()),
        Just("SELECT grp, min(value), max(value) FROM m GROUP BY grp".to_string()),
        Just("SELECT grp, device, sum(value), max(value) FROM m GROUP BY grp, device".to_string()),
        Just("SELECT avg(value), min(value), max(value), count(*) FROM m".to_string()),
        (-40i64..120).prop_map(|t| format!(
            "SELECT grp, avg(value), max(value) FROM m WHERE value > {} GROUP BY grp",
            t as f64 / 2.0
        )),
        Just(
            "SELECT grp, count(value) FROM m GROUP BY grp ORDER BY 2 DESC, grp LIMIT 2".to_string()
        ),
    ]
}

/// The core cache assertion: an absorbed cache answers exactly like one
/// cold-built over the same grown table, full and under exclusion.
fn assert_cache_matches_rebuild(
    absorbed: &GroupedAggregateCache<'_>,
    grown: &Table,
    sql: &str,
    excluded: &[RowId],
) -> Result<(), String> {
    let stmt = parse_select(sql).unwrap();
    let rebuilt = GroupedAggregateCache::build(grown, &stmt).unwrap();
    let a = absorbed.full_result();
    let b = rebuilt.full_result();
    prop_assert!(
        a.rows == b.rows && a.group_keys == b.group_keys,
        "full results diverged for {sql}: {:?} != {:?}",
        a.rows,
        b.rows
    );
    prop_assert_eq!(a.schema.names(), b.schema.names());
    let q = ExclusionQuery::new().excluding_rows(excluded);
    let a = absorbed.result(&q);
    let b = rebuilt.result(&q);
    prop_assert!(
        a.rows == b.rows && a.group_keys == b.group_keys,
        "excluding results diverged for {sql} excluding {excluded:?}: {:?} != {:?}",
        a.rows,
        b.rows
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: build on a prefix, absorb two successive
    /// append waves — querying under exclusion between the waves — and
    /// stay bitwise identical to a cold build at every step. Appended
    /// groups (drawn beyond the prefix's range) must appear exactly where
    /// a rebuild would put them.
    #[test]
    fn absorbed_cache_matches_rebuild_from_scratch(
        prefix in arbitrary_rows(0i64..4, 1..40),
        wave_a in arbitrary_rows(0i64..8, 0..30),
        wave_b in arbitrary_rows(0i64..8, 0..30),
        excluded in arbitrary_exclusions(),
        sql_a in arbitrary_statement(),
        sql_b in arbitrary_statement(),
    ) {
        let base = table_of(&prefix);
        let grown_a = grow(&base, &wave_a);
        let grown_b = grow(&grown_a, &wave_b);
        prop_assert!(grown_b.epoch().is_append_descendant_of(base.epoch()));
        prop_assert_eq!(grown_b.epoch().structural, base.epoch().structural);

        for sql in [&sql_a, &sql_b] {
            let stmt = parse_select(sql).unwrap();
            let mut cache = GroupedAggregateCache::build(&base, &stmt).unwrap();
            // The return value counts appended rows that *passed the
            // statement's filter* — at most the wave, exactly it when
            // the statement has no WHERE clause.
            prop_assert!(cache.absorb_append(&grown_a).unwrap() <= wave_a.len());
            assert_cache_matches_rebuild(&cache, &grown_a, sql, &excluded)?;
            // Second wave *after* the exclusion queries: absorbing must
            // compose with prior incremental answers, not just cold state.
            prop_assert!(cache.absorb_append(&grown_b).unwrap() <= wave_b.len());
            prop_assert!(cache.absorb_append(&grown_b).unwrap() == 0, "re-absorb is a no-op");
            assert_cache_matches_rebuild(&cache, &grown_b, sql, &excluded)?;
        }
    }

    /// MIN/MAX under streaming: appended rows dethrone every group's
    /// extrema (values far beyond the prefix grid), then exclusions
    /// targeted at exactly those appended extrema force the rescan
    /// fallback *through absorbed state* — the retained argument lists
    /// must cover appended rows too.
    #[test]
    fn absorbed_min_max_extrema_match_rebuild(
        prefix in arbitrary_rows(0i64..4, 1..40),
        spikes in proptest::collection::vec((0i64..4, 0i64..6, any::<bool>()), 1..10),
    ) {
        let base = table_of(&prefix);
        let wave: Vec<Row> = spikes
            .iter()
            .map(|&(g, d, high)| (g, d, Some(if high { 400.0 } else { -400.0 })))
            .collect();
        let grown = grow(&base, &wave);
        let sql = "SELECT grp, min(value), max(value), avg(value) FROM m GROUP BY grp";
        let stmt = parse_select(sql).unwrap();
        let mut cache = GroupedAggregateCache::build(&base, &stmt).unwrap();
        cache.absorb_append(&grown).unwrap();
        // Exclude exactly the appended spikes: the new min/max of each
        // touched group vanishes and the rescan must find the runner-up.
        let excluded: Vec<RowId> = (base.num_rows()..grown.num_rows()).map(RowId).collect();
        assert_cache_matches_rebuild(&cache, &grown, sql, &excluded)?;
        assert_cache_matches_rebuild(&cache, &grown, sql, &[])?;
    }

    /// Grown hash partitions are indistinguishable from fresh ones at
    /// every shard count from 1 to 5: same shard contents row for row,
    /// same global↔local routing, and the same zone-map pruning verdicts
    /// (probed through `condition_may_match`, equality and threshold
    /// conditions on every column).
    #[test]
    fn grown_hash_partitions_match_fresh_ones(
        prefix in arbitrary_rows(0i64..4, 1..40),
        wave in arbitrary_rows(0i64..8, 1..30),
        shards in 1usize..6,
        column in prop_oneof![Just("grp"), Just("device"), Just("value")],
    ) {
        let base = table_of(&prefix);
        let grown = grow(&base, &wave);
        let mut part = ShardedTable::hash(&base, column, shards).unwrap();
        prop_assert_eq!(part.absorb_append(&grown).unwrap(), wave.len());
        prop_assert!(part.absorb_append(&grown).unwrap() == 0, "re-absorb is a no-op");
        let fresh = ShardedTable::hash(&grown, column, shards).unwrap();

        prop_assert_eq!(part.num_shards(), fresh.num_shards());
        prop_assert!(part.base_epoch() == grown.epoch());
        for s in 0..part.num_shards() {
            let (a, b) = (part.shard(s), fresh.shard(s));
            prop_assert!(a.num_rows() == b.num_rows(), "shard {s} row count diverged");
            for r in 0..a.num_rows() {
                prop_assert_eq!(a.row(RowId(r)).unwrap(), b.row(RowId(r)).unwrap());
            }
        }
        for global in 0..grown.num_rows() {
            prop_assert_eq!(part.locate(RowId(global)), fresh.locate(RowId(global)));
        }
        // Zone maps were extended, not rebuilt: both partitions must
        // prune identically for every probe the typed kernels can take.
        for col in ["grp", "device", "value"] {
            for k in -6..10 {
                let probes = [
                    Condition::equals(col, k),
                    Condition::above(col, k as f64 * 25.0),
                ];
                for cond in &probes {
                    for s in 0..part.num_shards() {
                        prop_assert!(
                            part.condition_may_match(s, cond)
                                == fresh.condition_may_match(s, cond),
                            "pruning diverged on shard {s} for {cond:?}"
                        );
                    }
                }
            }
        }
    }

    /// Grown *range* partitions keep their original quantile boundaries
    /// (a rebuild would draw new ones), so the pin is answer-level: a
    /// sharded cache over the absorbed partition answers bitwise like an
    /// unsharded cache over the grown table, full and under exclusion.
    #[test]
    fn grown_range_partitions_answer_like_the_unsharded_path(
        prefix in arbitrary_rows(0i64..4, 1..40),
        wave in arbitrary_rows(0i64..8, 1..30),
        shards in 1usize..6,
        excluded in arbitrary_exclusions(),
        sql in arbitrary_statement(),
    ) {
        let base = table_of(&prefix);
        let grown = grow(&base, &wave);
        let mut part = ShardedTable::range(&base, "value", shards).unwrap();
        part.absorb_append(&grown).unwrap();
        let part = Arc::new(part);
        prop_assert_eq!(
            part.shards().iter().map(|s| s.num_rows()).sum::<usize>(),
            grown.num_rows()
        );

        let stmt = parse_select(&sql).unwrap();
        let unsharded = GroupedAggregateCache::build(&grown, &stmt).unwrap();
        let sharded = ShardedAggregateCache::build(part.clone(), &stmt).unwrap();
        let a = unsharded.full_result();
        let b = sharded.full_result();
        prop_assert!(
            a.rows == b.rows && a.group_keys == b.group_keys,
            "full results diverged for {sql}: {:?} != {:?}", a.rows, b.rows
        );

        let incremental = unsharded.result(&ExclusionQuery::new().excluding_rows(&excluded));
        let split = part.split_rows(&excluded);
        let sets: Vec<RowSet> = split
            .iter()
            .zip(part.shards())
            .map(|(rows, t)| RowSet::from_rows(t.num_rows(), rows.iter()))
            .collect();
        let merged = sharded.result_excluding_local_sets(&sets);
        prop_assert!(
            incremental.rows == merged.rows && incremental.group_keys == merged.group_keys,
            "excluding results diverged for {sql} excluding {excluded:?}: {:?} != {:?}",
            incremental.rows,
            merged.rows
        );
    }
}

/// One appended sensor reading (schema: sensorid, epoch, hour, window,
/// temp, humidity, light, voltage), landing in the existing window 0 so
/// streamed rows join groups every open session already selected.
fn reading(sensor: i64, temp: f64) -> Vec<Value> {
    vec![
        Value::Int(sensor),
        Value::Int(0),
        Value::Int(0),
        Value::Int(0),
        Value::Float(temp),
        Value::Float(40.0),
        Value::Float(300.0),
        Value::Float(2.5),
    ]
}

/// Everything observable about an explanation, bit-exact: the predicate
/// renderings plus the raw IEEE-754 bits of every score component.
#[allow(clippy::type_complexity)]
fn explanation_bits(
    e: &dbwipes::Explanation,
) -> (u64, Vec<(String, u64, u64, u64, u64, u64, usize, usize)>) {
    (
        e.base_error.to_bits(),
        e.predicates
            .iter()
            .map(|p| {
                (
                    p.predicate.to_string(),
                    p.score.to_bits(),
                    p.error_before.to_bits(),
                    p.error_after.to_bits(),
                    p.improvement.to_bits(),
                    p.example_f1.to_bits(),
                    p.complexity,
                    p.matched_rows,
                )
            })
            .collect(),
    )
}

/// The live-append equivalence gate. Two sessions are mid-investigation
/// when three `stream_append` batches land; afterwards each session's
/// explanation must be bit-identical to one computed on a freshly built
/// table holding the same rows, and the registry counters must show the
/// appends caused *zero* tier-1 rebuilds (one lifetime miss: the first
/// cold build, fast-forwarded through `absorb_append` ever after).
#[test]
fn live_append_gate_streamed_sessions_match_a_fresh_table() {
    let ds = generate_sensor(&SensorConfig {
        num_readings: 2_700,
        failing_sensors: vec![15],
        ..SensorConfig::small()
    });
    let query = ds.window_query();
    let mut catalog = Catalog::new();
    catalog.register(ds.table.clone()).unwrap();
    let m = SessionManager::new(catalog);

    // Both sessions brush every output and pick an ε; session A explains
    // before any rows stream in, session B stays at the brushing stage.
    let metric = || dbwipes::ErrorMetric::too_high("std_temp", 4.0);
    let (a, b) = (m.open_session(), m.open_session());
    for id in [a, b] {
        let handle = m.session(id).unwrap();
        let mut s = handle.lock().unwrap();
        s.dashboard_mut().run_query(&query).unwrap();
        let outputs: Vec<usize> = (0..s.dashboard().result().unwrap().len()).collect();
        s.dashboard_mut().select_outputs(outputs);
        s.dashboard_mut().set_metric(metric());
    }
    {
        let handle = m.session(a).unwrap();
        let mut s = handle.lock().unwrap();
        s.debug_cached(m.registry()).unwrap();
    }
    assert_eq!(m.registry().stats().misses, 1, "exactly one cold build before streaming");

    // Three streamed batches: hot readings across many sensors, all in
    // the already-selected window.
    for batch in 0..3u8 {
        let rows: Vec<Vec<Value>> =
            (0..48).map(|i| reading(i % 20, 55.0 + f64::from(batch))).collect();
        let report = m.stream_append("readings", rows).unwrap();
        assert_eq!(report.appended, 48);
        assert_eq!(report.sessions_refreshed, 2, "both open sessions adopt batch {batch}");
    }
    let stats = m.registry().stats();
    assert_eq!(stats.misses, 1, "appends must never rebuild a tier-1 cache");
    assert_eq!(stats.append_absorbs, 3, "one fast-forward per streamed batch");

    // The reference: a second manager over a freshly built table holding
    // exactly the grown rows, driven through the same brush and ε.
    let grown = {
        let handle = m.session(a).unwrap();
        let s = handle.lock().unwrap();
        s.dashboard().backend().catalog().table_arc("readings").unwrap()
    };
    let mut fresh_catalog = Catalog::new();
    fresh_catalog.register((*grown).clone()).unwrap();
    let fresh = SessionManager::new(fresh_catalog);
    let f = fresh.open_session();
    let fresh_handle = fresh.session(f).unwrap();
    let fresh_bits = {
        let mut s = fresh_handle.lock().unwrap();
        s.dashboard_mut().run_query(&query).unwrap();
        let outputs: Vec<usize> = (0..s.dashboard().result().unwrap().len()).collect();
        s.dashboard_mut().select_outputs(outputs);
        s.dashboard_mut().set_metric(metric());
        let (explanation, _) = s.debug_cached(fresh.registry()).unwrap();
        assert!(!explanation.predicates.is_empty(), "the gate needs a non-trivial explanation");
        explanation_bits(explanation)
    };

    // Every open session explains over its absorbed state and must land
    // on the reference bits exactly.
    for id in [a, b] {
        let handle = m.session(id).unwrap();
        let mut s = handle.lock().unwrap();
        assert_eq!(
            s.dashboard().result().unwrap().rows,
            fresh_handle.lock().unwrap().dashboard().result().unwrap().rows,
            "session {id}'s displayed result diverged from the fresh table"
        );
        let (explanation, _) = s.debug_cached(m.registry()).unwrap();
        assert_eq!(
            explanation_bits(explanation),
            fresh_bits,
            "session {id}'s explanation diverged from the freshly built table"
        );
    }
    let stats = m.registry().stats();
    assert_eq!(stats.misses, 1, "post-append explains ran over absorbed caches, not rebuilds");
}

//! Equivalence property tests for the incremental re-aggregation subsystem.
//!
//! For random tables, statements and exclusion sets, the incremental path
//! (`GroupedAggregateCache::result` with an `ExclusionQuery`) must produce
//! results identical — group keys, aggregate values and schema, lineage
//! aside — to full re-execution of the statement on a table with the
//! excluded rows deleted.
//!
//! Values are drawn from a half-integer grid (`k/2` for small integer `k`),
//! so every partial sum and sum-of-squares is exactly representable in an
//! `f64` and `AggregateState::remove`'s subtraction is the exact inverse of
//! `add`. That makes *bitwise* equality the right assertion: any
//! disagreement is an algorithmic bug in the incremental path, never
//! floating-point reordering noise. (On arbitrary reals the incremental
//! values can drift from re-summation by FP-rounding ulps, which the ranker
//! tolerates; exactness of the *algebra* is what these tests pin down.)

use dbwipes::engine::{
    execute, parse_select, ExclusionQuery, ExecOptions, GroupedAggregateCache, QueryResult,
};
use dbwipes::storage::{DataType, Schema, Value};
use dbwipes::{RowId, Table};
use proptest::prelude::*;

/// A random sensor-style table whose `value` column lies on the
/// half-integer grid (NULLs included).
fn arbitrary_table() -> impl Strategy<Value = Table> {
    let value = prop_oneof![Just(None), (-100i64..300).prop_map(|k| Some(k as f64 / 2.0))];
    let row = (0i64..4, 0i64..6, value);
    proptest::collection::vec(row, 1..60).prop_map(|rows| {
        let schema = Schema::of(&[
            ("grp", DataType::Int),
            ("device", DataType::Int),
            ("value", DataType::Float),
        ]);
        let mut t = Table::new("m", schema).unwrap();
        for (g, d, v) in rows {
            t.push_row(vec![
                Value::Int(g),
                Value::Int(d),
                v.map(Value::Float).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        t
    })
}

/// A random exclusion set: a subset of row indices (some possibly out of
/// range or duplicated — the cache must tolerate both).
fn arbitrary_exclusions() -> impl Strategy<Value = Vec<RowId>> {
    proptest::collection::vec((0usize..70).prop_map(RowId), 0..40)
}

/// A random statement over the table, drawn from shapes covering every
/// aggregate (SUM/COUNT/AVG/STDDEV/VARIANCE plus the MIN/MAX fallback),
/// grouped and ungrouped queries, WHERE clauses, scalar items, ORDER BY and
/// LIMIT.
fn arbitrary_statement() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("SELECT grp, avg(value), sum(value), count(*), count(value) FROM m GROUP BY grp".to_string()),
        Just("SELECT grp, stddev(value), variance(value) FROM m GROUP BY grp".to_string()),
        Just("SELECT grp, min(value), max(value) FROM m GROUP BY grp".to_string()),
        Just("SELECT grp, device, sum(value), max(value) FROM m GROUP BY grp, device".to_string()),
        Just("SELECT avg(value), min(value), max(value), count(*) FROM m".to_string()),
        (-40i64..120).prop_map(|t| format!(
            "SELECT grp, avg(value), max(value) FROM m WHERE value > {} GROUP BY grp",
            t as f64 / 2.0
        )),
        Just("SELECT grp, grp * 10 AS label, sum(value) FROM m GROUP BY grp ORDER BY sum_value DESC LIMIT 3".to_string()),
        Just("SELECT grp, count(value) FROM m GROUP BY grp ORDER BY 2 DESC, grp LIMIT 2".to_string()),
    ]
}

/// Ground truth: full re-execution on a copy of the table with the excluded
/// rows physically deleted (lineage capture off, matching the cache).
fn reference(table: &Table, sql: &str, excluded: &[RowId]) -> QueryResult {
    let mut t = table.clone();
    for &r in excluded {
        if r.index() < t.num_rows() && !t.is_deleted(r) {
            t.delete_row(r).unwrap();
        }
    }
    let stmt = parse_select(sql).unwrap();
    execute(&t, &stmt, ExecOptions { capture_lineage: false }).unwrap()
}

fn assert_equivalent(table: &Table, sql: &str, excluded: &[RowId]) -> Result<(), String> {
    let stmt = parse_select(sql).unwrap();
    let cache = GroupedAggregateCache::build(table, &stmt).unwrap();
    let incremental = cache.result(&ExclusionQuery::new().excluding_rows(excluded));
    let full = reference(table, sql, excluded);
    prop_assert!(
        incremental.group_keys == full.group_keys,
        "group keys diverged for {sql} excluding {excluded:?}"
    );
    prop_assert!(
        incremental.rows == full.rows,
        "rows diverged for {sql} excluding {excluded:?}: {:?} != {:?}",
        incremental.rows,
        full.rows
    );
    prop_assert_eq!(incremental.schema.names(), full.schema.names());
    prop_assert_eq!(incremental.len(), full.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline equivalence property: 256 random (table, statement,
    /// exclusion-set) triples, bitwise-identical results. Four statements
    /// are drawn per case, so every case cross-checks several shapes.
    #[test]
    fn incremental_matches_full_reexecution(
        table in arbitrary_table(),
        excluded in arbitrary_exclusions(),
        sql_a in arbitrary_statement(),
        sql_b in arbitrary_statement(),
        sql_c in arbitrary_statement(),
        sql_d in arbitrary_statement(),
    ) {
        for sql in [&sql_a, &sql_b, &sql_c, &sql_d] {
            assert_equivalent(&table, sql, &excluded)?;
        }
    }

    /// MIN/MAX fallback: exclusions targeted at the extrema (the rows whose
    /// removal forces the rescan branch rather than an O(1) subtraction).
    #[test]
    fn min_max_fallback_matches(table in arbitrary_table(), take in 1usize..6) {
        // Exclude the `take` largest and smallest values — guaranteed to
        // dethrone the current min/max of their groups.
        let mut by_value: Vec<(f64, RowId)> = (0..table.num_rows())
            .filter_map(|i| {
                table.value_by_name(RowId(i), "value").ok().and_then(|v| v.as_f64()).map(|v| (v, RowId(i)))
            })
            .collect();
        by_value.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut excluded: Vec<RowId> = by_value.iter().take(take).map(|&(_, r)| r).collect();
        excluded.extend(by_value.iter().rev().take(take).map(|&(_, r)| r));
        assert_equivalent(&table, "SELECT grp, min(value), max(value), avg(value) FROM m GROUP BY grp", &excluded)?;
        assert_equivalent(&table, "SELECT min(value), max(value) FROM m", &excluded)?;
    }

    /// Empty-group deletion: excluding *every* row of some groups must make
    /// those groups disappear (GROUP BY) or leave the single implicit group
    /// reporting empty-input values (no GROUP BY).
    #[test]
    fn whole_group_exclusion_matches(table in arbitrary_table(), victim in 0i64..4) {
        let excluded: Vec<RowId> = (0..table.num_rows())
            .map(RowId)
            .filter(|&r| {
                table.value_by_name(r, "grp").map(|v| v == Value::Int(victim)).unwrap_or(false)
            })
            .collect();
        assert_equivalent(&table, "SELECT grp, sum(value), count(*) FROM m GROUP BY grp", &excluded)?;
        // Excluding everything exercises total-exclusion of all groups.
        let all: Vec<RowId> = (0..table.num_rows()).map(RowId).collect();
        assert_equivalent(&table, "SELECT grp, avg(value) FROM m GROUP BY grp", &all)?;
        assert_equivalent(&table, "SELECT avg(value), count(*), min(value) FROM m", &all)?;
    }

    /// The ranker's exclusion semantics: excluding exactly the cached rows
    /// where a predicate is TRUE-or-NULL equals rewriting the query with
    /// `AND NOT predicate` — the "clean as you query" rewrite the ranker
    /// used to execute per candidate.
    #[test]
    fn exclusion_set_matches_query_rewrite(table in arbitrary_table(), device in 0i64..6) {
        use dbwipes::storage::{Condition, ConjunctivePredicate};
        let predicate = ConjunctivePredicate::new(vec![Condition::equals("device", device)]);
        let stmt = parse_select("SELECT grp, avg(value), count(*) FROM m GROUP BY grp").unwrap();
        let cache = GroupedAggregateCache::build(&table, &stmt).unwrap();

        let p_expr = predicate.to_expr();
        let excluded: Vec<RowId> = table
            .visible_row_ids()
            .filter(|&r| {
                cache.contains(r)
                    && !matches!(p_expr.eval(&table, r), Ok(Value::Bool(false)))
            })
            .collect();
        let incremental = cache.result(&ExclusionQuery::new().excluding_rows(&excluded));

        let rewritten = stmt.with_additional_filter(predicate.to_exclusion_expr());
        let full = execute(&table, &rewritten, ExecOptions { capture_lineage: false }).unwrap();
        prop_assert_eq!(&incremental.rows, &full.rows);
        prop_assert_eq!(&incremental.group_keys, &full.group_keys);
    }
}

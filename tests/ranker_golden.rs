//! Golden regression tests for the Predicate Ranker.
//!
//! These pin the exact ordering (and, to a small tolerance, the scores) of
//! `rank_predicates` on the deterministic sensor and FEC fixtures. They were
//! captured against the original per-candidate full-re-execution ranker and
//! must keep passing after the incremental re-aggregation rewire: the
//! refactor is allowed to change *how* the scores are computed, not *what*
//! they are.

use dbwipes::core::{rank_predicates, ErrorMetric, RankerConfig};
use dbwipes::engine::execute_sql;
use dbwipes::storage::{Catalog, Condition, ConjunctivePredicate, RowId, Value};
use dbwipes_data::{generate_fec, generate_sensor, FecConfig, SensorConfig};

/// Scores may drift by FP-rounding noise when the computation is
/// restructured (incremental removal subtracts contributions instead of
/// re-summing), but nothing visible at this tolerance.
const TOL: f64 = 1e-6;

fn assert_golden(
    ranked: &[dbwipes::core::RankedPredicate],
    golden: &[(&str, f64, f64, usize)],
    label: &str,
) {
    let got: Vec<String> = ranked.iter().map(|p| p.summary()).collect();
    assert_eq!(
        ranked.len(),
        golden.len(),
        "{label}: expected {} ranked predicates, got:\n{}",
        golden.len(),
        got.join("\n")
    );
    for (i, (predicate, score, improvement, matched_rows)) in golden.iter().enumerate() {
        let r = &ranked[i];
        assert_eq!(
            r.predicate.to_string(),
            *predicate,
            "{label}: rank {i} predicate changed; full ranking:\n{}",
            got.join("\n")
        );
        assert!(
            (r.score - score).abs() < TOL,
            "{label}: rank {i} ({predicate}) score {} != golden {score}",
            r.score
        );
        assert!(
            (r.improvement - improvement).abs() < TOL,
            "{label}: rank {i} ({predicate}) improvement {} != golden {improvement}",
            r.improvement
        );
        assert_eq!(
            r.matched_rows, *matched_rows,
            "{label}: rank {i} ({predicate}) matched_rows changed"
        );
    }
}

#[test]
fn sensor_fixture_ranking_is_stable() {
    let ds = generate_sensor(&SensorConfig {
        num_readings: 5_400,
        failing_sensors: vec![15],
        ..SensorConfig::small()
    });
    let mut catalog = Catalog::new();
    catalog.register(ds.table.clone()).unwrap();
    let result = execute_sql(&catalog, &ds.window_query()).unwrap();

    let std_col = result.column_index("std_temp").unwrap();
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.rows[i][std_col].as_f64().unwrap_or(0.0) > 8.0)
        .collect();
    assert!(!suspicious.is_empty());
    let examples: Vec<RowId> = ds.error_rows().into_iter().take(8).collect();
    let metric = ErrorMetric::too_high("std_temp", 4.0);

    let candidates = vec![
        ConjunctivePredicate::new(vec![Condition::equals("sensorid", 15)]),
        ConjunctivePredicate::new(vec![Condition::equals("sensorid", 3)]),
        ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 100.0),
        ]),
        ConjunctivePredicate::new(vec![Condition::at_most("voltage", 1.8)]),
        ConjunctivePredicate::new(vec![Condition::above("temp", 95.0)]),
    ];
    let ranked = rank_predicates(
        catalog.table("readings").unwrap(),
        &result,
        &suspicious,
        &examples,
        &metric,
        candidates,
        &RankerConfig::default(),
    )
    .unwrap();

    // (predicate, score, improvement, matched_rows) — captured against the
    // pre-incremental ranker.
    let golden: &[(&str, f64, f64, usize)] = &[
        ("temp > 95.0000", 1.166666666667, 1.0, 40),
        ("sensorid = 15", 1.163265306122, 1.0, 100),
        ("sensorid = 15 AND temp > 100.0000", 1.098936170213, 1.0, 39),
        ("voltage <= 1.8000", 0.475599053726, 0.475599053726, 20),
        ("sensorid = 3", -0.013775878148, -0.013775878148, 100),
    ];
    assert_golden(&ranked, golden, "sensor");
}

#[test]
fn fec_fixture_ranking_is_stable() {
    let ds = generate_fec(&FecConfig {
        num_contributions: 10_000,
        reattribution_count: 80,
        ..FecConfig::default()
    });
    let mut catalog = Catalog::new();
    catalog.register(ds.table.clone()).unwrap();
    let result = execute_sql(&catalog, &ds.daily_total_query()).unwrap();

    let total_col = result.column_index("total").unwrap();
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.rows[i][total_col].as_f64().unwrap_or(0.0) < 0.0)
        .collect();
    assert!(!suspicious.is_empty());
    let examples: Vec<RowId> = result
        .inputs_of_rows(&suspicious)
        .into_iter()
        .filter(|&r| {
            ds.table.value_by_name(r, "amount").ok().and_then(|v| v.as_f64()).unwrap_or(0.0) < 0.0
        })
        .collect();
    let metric = ErrorMetric::too_low("total", 0.0);

    let candidates = vec![
        ConjunctivePredicate::new(vec![Condition::contains("memo", "REATTRIBUTION")]),
        ConjunctivePredicate::new(vec![Condition::at_most("amount", 0.0)]),
        ConjunctivePredicate::new(vec![Condition::equals("state", Value::str("MA"))]),
        ConjunctivePredicate::new(vec![
            Condition::contains("memo", "REATTRIBUTION"),
            Condition::at_most("amount", 0.0),
        ]),
    ];
    let ranked = rank_predicates(
        catalog.table("contributions").unwrap(),
        &result,
        &suspicious,
        &examples,
        &metric,
        candidates,
        &RankerConfig::default(),
    )
    .unwrap();

    let golden: &[(&str, f64, f64, usize)] = &[
        ("memo LIKE '%REATTRIBUTION%'", 1.5, 1.0, 80),
        ("amount <= 0.0000", 1.5, 1.0, 80),
        ("memo LIKE '%REATTRIBUTION%' AND amount <= 0.0000", 1.45, 1.0, 80),
        ("state = 'MA'", 0.187913334279, 0.098025693830, 1016),
    ];
    assert_golden(&ranked, golden, "fec");
}

//! Integration test: the paper's §3.2 FEC walkthrough (Figure 7), driven
//! through the public API across every crate.

use dbwipes::core::MetricKind;
use dbwipes::dashboard::{Brush, DashboardSession, SessionState};
use dbwipes::data::{generate_fec, FecConfig};
use dbwipes::{DbWipes, ErrorMetric};

fn session() -> (DashboardSession, dbwipes::data::FecDataset) {
    let dataset = generate_fec(&FecConfig { num_contributions: 20_000, ..FecConfig::default() });
    let mut db = DbWipes::new();
    db.register(dataset.table.clone()).unwrap();
    (DashboardSession::new(db), dataset)
}

#[test]
fn mccain_daily_totals_show_a_negative_spike_around_day_500() {
    let (mut session, dataset) = session();
    session.run_query(&dataset.daily_total_query()).unwrap();
    let result = session.result().unwrap();

    // There is at least one day with a negative total, and every such day is
    // within the injected reattribution window around day 500.
    let negative_days: Vec<i64> = (0..result.len())
        .filter(|&i| result.value_f64(i, "total").unwrap().unwrap_or(0.0) < 0.0)
        .map(|i| result.value(i, "day").unwrap().as_i64().unwrap())
        .collect();
    assert!(!negative_days.is_empty(), "no negative spike was generated");
    for day in &negative_days {
        assert!(
            (day - dataset.config.reattribution_day).abs() <= dataset.config.reattribution_spread,
            "negative total on unexpected day {day}"
        );
    }
}

#[test]
fn the_walkthrough_surfaces_the_reattribution_predicate_and_cleans_the_spike() {
    let (mut session, dataset) = session();
    session.run_query(&dataset.daily_total_query()).unwrap();

    // Brush the negative totals (S), zoom, brush the negative donations (D').
    let suspicious = session.brush_outputs("day", "total", Brush::below(0.0));
    assert!(!suspicious.is_empty());
    let examples = session.brush_inputs("day", "amount", Brush::below(0.0));
    assert!(!examples.is_empty());
    // Every brushed example is a genuine injected error.
    assert!(examples.iter().all(|r| dataset.truth.is_error(*r)));

    // The error form offers "too low" for a selection of negative values.
    let choices = session.metric_choices("total");
    assert!(choices.iter().any(|c| matches!(c.metric.kind, MetricKind::TooLow { .. })));
    session.set_metric(ErrorMetric::too_low("total", 0.0));

    let base_error = session.debug().unwrap().base_error;
    assert_eq!(session.state(), SessionState::Explained);
    assert!(base_error > 0.0);

    // The ranked list contains a predicate over the memo attribute with the
    // REATTRIBUTION string, ranked at or near the top.
    let rank = session
        .ranked_predicates()
        .iter()
        .position(|p| p.predicate.to_string().to_uppercase().contains("REATTRIBUTION"))
        .expect("a REATTRIBUTION predicate is returned");
    assert!(rank < 3, "REATTRIBUTION predicate ranked too low: {rank}");

    // That predicate matches the ground truth almost perfectly.
    let reattribution = &session.ranked_predicates()[rank];
    let score = dataset.truth.score_predicate(&dataset.table, &reattribution.predicate);
    assert!(score.precision > 0.95, "precision {}", score.precision);
    assert!(score.recall > 0.95, "recall {}", score.recall);
    assert!(reattribution.improvement > 0.9);

    // Clicking the top predicate removes the negative spike entirely when the
    // top predicate is the reattribution one; otherwise it at least shrinks it.
    let before = negative_day_count(&session);
    session.click_predicate(rank).unwrap();
    let after = negative_day_count(&session);
    assert_eq!(after, 0, "negative days remained after cleaning (was {before})");
    assert!(session.current_sql().contains("NOT ("));
}

#[test]
fn cleaning_physically_matches_query_rewriting() {
    let (mut session, dataset) = session();
    session.run_query(&dataset.daily_total_query()).unwrap();
    session.brush_outputs("day", "total", Brush::below(0.0));
    session.brush_inputs("day", "amount", Brush::below(0.0));
    session.set_metric(ErrorMetric::too_low("total", 0.0));
    session.debug().unwrap();
    let predicate = session.ranked_predicates()[0].predicate.clone();

    // Query-rewriting result.
    session.click_predicate(0).unwrap();
    let rewritten_total = grand_total(&session);

    // Physical cleaning on a fresh backend must give the same answer.
    let mut db = DbWipes::new();
    db.register(dataset.table.clone()).unwrap();
    let removed = db.clean("contributions", &predicate).unwrap();
    assert!(!removed.is_empty());
    let physical = db.query(&dataset.daily_total_query()).unwrap();
    let physical_total: f64 =
        (0..physical.len()).filter_map(|i| physical.value_f64(i, "total").unwrap()).sum();
    assert!((physical_total - rewritten_total).abs() < 1e-6);

    // Restoring brings the original answer back.
    db.restore("contributions", &removed).unwrap();
    let restored = db.query(&dataset.daily_total_query()).unwrap();
    let mut fresh = DbWipes::new();
    fresh.register(dataset.table.clone()).unwrap();
    let original = fresh.query(&dataset.daily_total_query()).unwrap();
    assert_eq!(restored.rows, original.rows);
}

fn negative_day_count(session: &DashboardSession) -> usize {
    let result = session.result().unwrap();
    (0..result.len())
        .filter(|&i| result.value_f64(i, "total").unwrap().unwrap_or(0.0) < 0.0)
        .count()
}

fn grand_total(session: &DashboardSession) -> f64 {
    let result = session.result().unwrap();
    (0..result.len()).filter_map(|i| result.value_f64(i, "total").unwrap()).sum()
}

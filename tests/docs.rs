//! Lints the prose documentation: every relative markdown link in
//! `README.md` and `docs/*.md` must point at a file (or directory) that
//! exists in the repository, and the three architecture/reference docs the
//! README promises must actually be there and linked.
//!
//! Absolute `http(s)://` links are out of scope (no network in CI or this
//! container); intra-crate rustdoc links are checked separately by the
//! `cargo doc -D warnings` CI job.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The markdown files the checker lints: the README plus everything
/// directly under `docs/`.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = vec![root.join("README.md")];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory must exist");
    for entry in entries {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    files
}

/// Extracts the `(target)` of every inline markdown link `[text](target)`
/// in `text`, skipping fenced code blocks (protocol examples contain
/// bracketed JSON that is not a link).
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // A link target is the parenthesized span immediately after a
            // closing bracket: ...](target)
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(end) = line[i + 2..].find(')') {
                    out.push(line[i + 2..i + 2 + end].to_string());
                    i += 2 + end;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// True for link targets the filesystem check does not apply to.
fn external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
}

#[test]
fn no_dangling_relative_links() {
    let mut dangling: Vec<String> = Vec::new();
    for file in doc_files() {
        let text = std::fs::read_to_string(&file).unwrap();
        let base = file.parent().unwrap();
        for target in link_targets(&text) {
            if external(&target) || target.is_empty() {
                continue;
            }
            // Strip a trailing #fragment; the file part must exist.
            let path_part = target.split('#').next().unwrap();
            if path_part.is_empty() {
                continue;
            }
            let resolved = base.join(path_part);
            if !resolved.exists() {
                dangling.push(format!(
                    "{}: [..]({target}) -> {}",
                    file.strip_prefix(repo_root()).unwrap().display(),
                    resolved.display()
                ));
            }
        }
    }
    assert!(dangling.is_empty(), "dangling relative links:\n{}", dangling.join("\n"));
}

/// The README must link out to each of the three reference docs, and the
/// docs must cross-link without rot.
#[test]
fn readme_links_the_reference_docs() {
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let targets: BTreeSet<String> = link_targets(&readme)
        .into_iter()
        .map(|t| t.split('#').next().unwrap().to_string())
        .collect();
    for doc in ["docs/ARCHITECTURE.md", "docs/PROTOCOL.md", "docs/TUNING.md"] {
        assert!(Path::new(&root.join(doc)).exists(), "{doc} is missing — the README promises it");
        assert!(targets.contains(doc), "README.md does not link to {doc}");
    }
}

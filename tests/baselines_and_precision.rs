//! Integration test: the paper's precision argument (experiment E5).
//!
//! "Traditional provenance will return the entire input collection, which
//! has very low precision. In contrast, users are seeking precise
//! descriptions of the inputs that caused the errors" (§1). With ground
//! truth available, we can check that claim quantitatively.

use dbwipes::core::baselines::{
    coarse_grained_provenance, fine_grained_provenance, greedy_responsibility,
    single_attribute_predicates, top_k_influence, SingleAttributeConfig,
};
use dbwipes::core::{rank_influence, ErrorMetric, ExplanationRequest};
use dbwipes::data::{generate_corrupted, CorruptionConfig};
use dbwipes::{DbWipes, RowId};

struct Setup {
    db: DbWipes,
    dataset: dbwipes::data::CorruptedDataset,
    result: dbwipes::QueryResult,
    suspicious: Vec<usize>,
    metric: ErrorMetric,
}

fn setup() -> Setup {
    let dataset = generate_corrupted(&CorruptionConfig {
        num_rows: 10_000,
        num_devices: 20,
        corrupted_devices: vec![7, 8],
        corruption_start_group: 0,
        corruption_shift: 150.0,
        ..CorruptionConfig::default()
    });
    let mut db = DbWipes::new();
    db.register(dataset.table.clone()).unwrap();
    let result = db.query(&dataset.group_avg_query()).unwrap();
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > 65.0)
        .collect();
    assert!(!suspicious.is_empty());
    let metric = ErrorMetric::too_high("avg_value", 60.0);
    Setup { db, dataset, result, suspicious, metric }
}

#[test]
fn traditional_provenance_has_low_precision() {
    let s = setup();
    let truth_fraction = s.dataset.truth.error_count() as f64 / s.dataset.table.num_rows() as f64;

    let coarse = coarse_grained_provenance(s.db.catalog().table("measurements").unwrap());
    let coarse_score = s.dataset.truth.score_rows(&coarse.rows().collect::<Vec<_>>());
    assert!((coarse_score.precision - truth_fraction).abs() < 0.02);
    assert_eq!(coarse_score.recall, 1.0);

    let fine = fine_grained_provenance(&s.result, &s.suspicious);
    let fine_score = s.dataset.truth.score_rows(&fine.rows().collect::<Vec<_>>());
    // Fine-grained provenance returns (nearly) the whole table here, so its
    // precision is barely better than the base rate.
    assert!(fine_score.precision < 0.2, "precision {}", fine_score.precision);
    assert!(fine.len() > 1_000);
}

#[test]
fn dbwipes_predicate_is_far_more_precise_than_lineage() {
    let s = setup();
    let request = ExplanationRequest::new(s.suspicious.clone(), vec![], s.metric.clone());
    let explanation = s.db.explain(&s.result, &request).unwrap();
    let best = explanation.best().expect("a ranked predicate");
    let table = s.db.catalog().table("measurements").unwrap();
    let dbwipes_score = s.dataset.truth.score_rows(&best.predicate.matching_rows(table));

    let fine = fine_grained_provenance(&s.result, &s.suspicious);
    let fine_score = s.dataset.truth.score_rows(&fine.rows().collect::<Vec<_>>());

    assert!(
        dbwipes_score.precision > 4.0 * fine_score.precision,
        "DBWipes precision {} vs lineage precision {}",
        dbwipes_score.precision,
        fine_score.precision
    );
    assert!(dbwipes_score.recall > 0.9);
    // And the answer is a short description, not a tuple dump.
    assert!(best.complexity <= 3);
    assert!(best.improvement > 0.9);
}

#[test]
fn influence_and_responsibility_rank_true_errors_highly() {
    let s = setup();
    let table = s.db.catalog().table("measurements").unwrap();
    let influence = rank_influence(table, &s.result, &s.suspicious, &s.metric).unwrap();
    assert!(influence.base_error > 0.0);

    let k = s.dataset.truth.error_count();
    let top = top_k_influence(&influence, k);
    let top_score = s.dataset.truth.score_rows(&top.rows().collect::<Vec<_>>());
    assert!(top_score.precision > 0.8, "top-k precision {}", top_score.precision);

    let resp = greedy_responsibility(&influence);
    let responsible: Vec<RowId> =
        resp.iter().filter(|(_, r)| *r > 0.0).map(|(row, _)| *row).collect();
    assert!(!responsible.is_empty());
    let resp_score = s.dataset.truth.score_rows(&responsible);
    assert!(resp_score.precision > 0.8, "responsibility precision {}", resp_score.precision);
}

#[test]
fn single_attribute_baseline_is_beaten_or_matched_by_the_full_pipeline() {
    let s = setup();
    let table = s.db.catalog().table("measurements").unwrap();
    let single = single_attribute_predicates(
        table,
        &s.result,
        &s.suspicious,
        &[],
        &s.metric,
        &SingleAttributeConfig::default(),
    )
    .unwrap();
    assert!(!single.is_empty());
    let single_best_f1 = s.dataset.truth.score_rows(&single[0].predicate.matching_rows(table)).f1;

    let request = ExplanationRequest::new(s.suspicious.clone(), vec![], s.metric.clone());
    let explanation = s.db.explain(&s.result, &request).unwrap();
    let dbwipes_f1 =
        s.dataset.truth.score_rows(&explanation.best().unwrap().predicate.matching_rows(table)).f1;
    assert!(
        dbwipes_f1 + 1e-9 >= single_best_f1,
        "DBWipes f1 {dbwipes_f1} vs single-attribute f1 {single_best_f1}"
    );
}

//! Integration test: the Intel-sensor running example (Figures 4 and 6).

use dbwipes::dashboard::{Brush, DashboardSession};
use dbwipes::data::{generate_sensor, SensorConfig};
use dbwipes::{DbWipes, ErrorMetric, ExplanationRequest};

fn dataset() -> dbwipes::data::SensorDataset {
    generate_sensor(&SensorConfig { num_readings: 27_000, ..SensorConfig::default() })
}

#[test]
fn failing_sensors_inflate_window_statistics() {
    let ds = dataset();
    let mut db = DbWipes::new();
    db.register(ds.table.clone()).unwrap();
    let result = db.query(&ds.window_query()).unwrap();
    assert!(result.len() > 1);

    // At least one window has a visibly inflated standard deviation, and the
    // windows before the failure point stay normal.
    let stds: Vec<f64> =
        (0..result.len()).filter_map(|i| result.value_f64(i, "std_temp").unwrap()).collect();
    let max_std = stds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min_std = stds.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(max_std > 8.0, "max std {max_std}");
    assert!(min_std < 5.0, "min std {min_std}");
}

#[test]
fn the_sensor_walkthrough_finds_a_low_voltage_or_sensor_id_predicate() {
    let ds = dataset();
    let mut db = DbWipes::new();
    db.register(ds.table.clone()).unwrap();
    let mut session = DashboardSession::new(db);
    session.run_query(&ds.window_query()).unwrap();

    let suspicious = session.brush_outputs("window", "std_temp", Brush::above(8.0));
    assert!(!suspicious.is_empty());
    let examples = session.brush_inputs("sensorid", "temp", Brush::above(100.0));
    assert!(!examples.is_empty());
    assert!(examples.iter().all(|r| ds.truth.is_error(*r)));

    session.set_metric(ErrorMetric::too_high("std_temp", 5.0));
    let explanation = session.debug().unwrap();
    let best = explanation.best().unwrap();
    let text = best.predicate.to_string();
    assert!(
        text.contains("voltage") || text.contains("sensorid"),
        "unexpected best predicate: {text}"
    );
    assert!(best.improvement > 0.7, "improvement {}", best.improvement);

    // The best predicate's matches are (almost) exactly the corrupted rows.
    let score = ds.truth.score_predicate(&ds.table, &best.predicate);
    assert!(score.recall > 0.9, "recall {}", score.recall);
    assert!(score.precision > 0.6, "precision {}", score.precision);

    // Clicking it brings every window's spread back to normal.
    session.click_predicate(0).unwrap();
    let result = session.result().unwrap();
    let max_std = (0..result.len())
        .filter_map(|i| result.value_f64(i, "std_temp").unwrap())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(max_std < 8.0, "max std after cleaning: {max_std}");
}

#[test]
fn explanations_work_per_sensor_grouping_too() {
    // Grouping by sensor id (instead of window) makes the broken sensors the
    // suspicious groups themselves; the explanation must then lean on
    // non-group attributes such as voltage.
    let ds = dataset();
    let mut db = DbWipes::new();
    db.register(ds.table.clone()).unwrap();
    let result =
        db.query("SELECT sensorid, avg(temp) AS avg_temp FROM readings GROUP BY sensorid").unwrap();
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_temp").unwrap().unwrap_or(0.0) > 40.0)
        .collect();
    assert_eq!(suspicious.len(), ds.config.failing_sensors.len());

    let request =
        ExplanationRequest::new(suspicious, vec![], ErrorMetric::too_high("avg_temp", 30.0));
    let explanation = db.explain(&result, &request).unwrap();
    let best = explanation.best().unwrap();
    // With the failing sensors *being* the suspicious groups, the valid
    // explanations are the collapsed battery voltage or the time at which
    // the failure started (the corrupted readings are the late ones).
    let text = best.predicate.to_string();
    assert!(
        ["voltage", "epoch", "window", "hour"].iter().any(|c| text.contains(c)),
        "unexpected predicate: {text}"
    );
    assert!(best.improvement > 0.5);
    // Component timings are all populated.
    assert!(explanation.timings.preprocess_ms >= 0.0);
    assert!(explanation.timings.total_ms() > 0.0);
}

#[test]
fn lineage_links_every_suspicious_window_to_its_readings() {
    let ds = dataset();
    let mut db = DbWipes::new();
    db.register(ds.table.clone()).unwrap();
    let result = db.query(&ds.window_query()).unwrap();
    let table = db.catalog().table("readings").unwrap();
    for i in 0..result.len() {
        let window = result.value(i, "window").unwrap().as_i64().unwrap();
        let inputs = result.inputs_of(i);
        assert!(!inputs.is_empty());
        for rid in inputs {
            let w = table.value_by_name(*rid, "window").unwrap().as_i64().unwrap();
            assert_eq!(w, window);
        }
    }
    // The union of all lineage sets covers the whole table exactly once.
    let all: usize = (0..result.len()).map(|i| result.inputs_of(i).len()).sum();
    assert_eq!(all, ds.table.num_rows());
}

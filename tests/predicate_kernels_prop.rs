//! Equivalence property tests for the vectorized predicate path.
//!
//! For random tables (NULLs, soft deletes, empty tables included) and
//! random conditions (equality, ranges, `IN` sets with NULL members,
//! substring containment), the columnar kernels
//! (`CompiledPredicate::eval_columns`) must agree **row for row** with the
//! scalar three-valued evaluator (`CompiledPredicate::matches`), and
//! `matching_rows` must keep its contract: the visible matches, ascending
//! by `RowId`, identical to the per-row expression walk. The `RowSet`
//! bitmap algebra is pinned against a `BTreeSet` oracle.

use dbwipes::storage::rowset::RowSet;
use dbwipes::storage::{Candidate, ConditionBitmapCache, DataType, PredicateTree, Schema, Value};
use dbwipes::{Condition, ConjunctivePredicate, RowId, ShardedTable, Table};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random sensor-style table: nullable int / float / str columns, a few
/// soft-deleted rows, possibly empty.
fn arbitrary_table() -> impl Strategy<Value = Table> {
    let id = prop_oneof![Just(None), (0i64..6).prop_map(Some)];
    let x = prop_oneof![Just(None), (-40i64..40).prop_map(|k| Some(k as f64 / 2.0))];
    let memo = (0usize..5).prop_map(|k| ["", "ok", "REATTRIBUTION TO SPOUSE", "spouse", "Lab"][k]);
    let row = (id, x, memo, proptest::collection::vec(0usize..10, 0..2));
    proptest::collection::vec(row, 0..50).prop_map(|rows| {
        let schema =
            Schema::of(&[("id", DataType::Int), ("x", DataType::Float), ("memo", DataType::Str)]);
        let mut t = Table::new("m", schema).unwrap();
        let mut delete = Vec::new();
        for (i, (id, x, memo, delete_marks)) in rows.into_iter().enumerate() {
            t.push_row(vec![
                id.map(Value::Int).unwrap_or(Value::Null),
                x.map(Value::Float).unwrap_or(Value::Null),
                if memo.is_empty() && i % 2 == 0 { Value::Null } else { Value::str(memo) },
            ])
            .unwrap();
            if !delete_marks.is_empty() {
                delete.push(RowId(i));
            }
        }
        for r in delete {
            t.delete_row(r).unwrap();
        }
        t
    })
}

/// A random condition over the table's columns, covering every kernel:
/// numeric and string equality (negated too), half-open and closed ranges,
/// `IN` sets with and without NULL members, containment (empty needle
/// included), and the unbounded range that compiles to `TRUE`.
fn arbitrary_condition() -> impl Strategy<Value = Condition> {
    prop_oneof![
        (0i64..7).prop_map(|v| Condition::equals("id", v)),
        (0i64..7).prop_map(|v| Condition::not_equals("id", v)),
        Just(Condition::equals("id", Value::Null)),
        (-30i64..30).prop_map(|v| Condition::above("x", v as f64 / 2.0)),
        (-30i64..30).prop_map(|v| Condition::at_least("x", v as f64 / 2.0)),
        (-30i64..30).prop_map(|v| Condition::at_most("x", v as f64 / 2.0)),
        ((-30i64..0), (0i64..30)).prop_map(|(lo, hi)| Condition::between(
            "x",
            lo as f64 / 2.0,
            hi as f64 / 2.0
        )),
        Just(Condition::Range {
            column: "x".into(),
            low: None,
            low_inclusive: false,
            high: None,
            high_inclusive: false,
        }),
        (0i64..4).prop_map(|v| Condition::in_set("id", vec![Value::Int(v), Value::Int(v + 2)])),
        (0i64..4).prop_map(|v| Condition::in_set("id", vec![Value::Int(v), Value::Null])),
        Just(Condition::in_set("memo", vec![Value::str("ok"), Value::str("Lab"), Value::Int(3)])),
        Just(Condition::in_set("memo", vec![Value::str("ok"), Value::Null])),
        (0usize..4).prop_map(|k| Condition::contains("memo", ["", "SPOUSE", "lab", "zzz"][k])),
        Just(Condition::equals("memo", Value::str("ok"))),
        Just(Condition::not_equals("memo", Value::str("ok"))),
    ]
}

/// One predicate's kernels against the scalar evaluator, on every physical
/// row (deleted rows included — the bitmap universe is physical).
fn assert_kernel_equivalence(table: &Table, pred: &ConjunctivePredicate) -> Result<(), String> {
    let compiled = pred.compile(table).expect("generated conditions are well-typed");
    let tri = compiled.eval_columns();
    prop_assert_eq!(tri.trues.universe(), table.num_rows());
    for i in 0..table.num_rows() {
        let scalar = compiled.matches(RowId(i));
        prop_assert!(
            tri.trues.contains(i) == (scalar == Some(true)),
            "trues diverged from scalar at row {} for {}",
            i,
            pred
        );
        prop_assert!(
            tri.unknowns.contains(i) == scalar.is_none(),
            "unknowns diverged from scalar at row {} for {}",
            i,
            pred
        );
        prop_assert!(!(tri.trues.contains(i) && tri.unknowns.contains(i)));
    }
    // matching_rows: identical output to the expression walk, ascending.
    let via_expr: Vec<RowId> =
        table.visible_row_ids().filter(|&r| pred.matches(table, r)).collect();
    let rows = pred.matching_rows(table);
    prop_assert!(rows == via_expr, "matching_rows diverged for {}", pred);
    prop_assert!(rows.windows(2).all(|w| w[0] < w[1]), "matching_rows not ascending");
    // selectivity / coverage agree with the materialized counts.
    let total = table.visible_rows();
    let selectivity = if total == 0 { 0.0 } else { rows.len() as f64 / total as f64 };
    prop_assert!((pred.selectivity(table) - selectivity).abs() < 1e-12);
    let all: Vec<RowId> = table.visible_row_ids().collect();
    let coverage = if all.is_empty() { 0.0 } else { rows.len() as f64 / all.len() as f64 };
    prop_assert!((pred.coverage(table, &all) - coverage).abs() < 1e-12);
    Ok(())
}

/// A random boolean predicate tree over four random conditions: flat
/// disjunctions, negations, and nested AND-OR-NOT shapes up to depth 3,
/// plus the degenerate empty connectives (`TRUE` / `FALSE`).
fn arbitrary_tree() -> impl Strategy<Value = PredicateTree> {
    let leaf = |c: Condition| PredicateTree::from(ConjunctivePredicate::new(vec![c]));
    (
        arbitrary_condition(),
        arbitrary_condition(),
        arbitrary_condition(),
        arbitrary_condition(),
        0usize..9,
    )
        .prop_map(move |(a, b, c, d, shape)| match shape {
            0 => PredicateTree::Or(vec![leaf(a), leaf(b)]),
            1 => PredicateTree::negation(ConjunctivePredicate::new(vec![a])),
            2 => PredicateTree::Not(Box::new(PredicateTree::Or(vec![leaf(a), leaf(b)]))),
            3 => PredicateTree::And(vec![
                PredicateTree::Or(vec![leaf(a), leaf(b)]),
                PredicateTree::Not(Box::new(leaf(c))),
            ]),
            4 => PredicateTree::any_of(vec![
                ConjunctivePredicate::new(vec![a, b]),
                ConjunctivePredicate::new(vec![c, d]),
            ]),
            5 => PredicateTree::Or(vec![
                PredicateTree::Not(Box::new(leaf(a))),
                PredicateTree::And(vec![leaf(b), PredicateTree::Not(Box::new(leaf(c)))]),
            ]),
            6 => PredicateTree::Not(Box::new(PredicateTree::Not(Box::new(leaf(a))))),
            7 => PredicateTree::And(vec![]),
            _ => PredicateTree::Or(vec![]),
        })
}

/// The scalar three-valued verdict of a tree's expression on one row.
fn scalar_verdict(tree: &PredicateTree, table: &Table, row: RowId) -> Option<bool> {
    match Candidate::to_expr(tree).eval(table, row).expect("well-typed") {
        Value::Bool(b) => Some(b),
        Value::Null => None,
        other => panic!("boolean tree evaluated to {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole's headline property: vectorized NOT/OR/nested boolean
    /// trees agree with the scalar three-valued walk row for row —
    /// UNKNOWN propagation through the Kleene connectives included — on
    /// random tables (empty and soft-deleted rows too), and the vectorized
    /// `Expr::filter` fast path returns exactly the scalar oracle's rows.
    #[test]
    fn boolean_trees_match_scalar_walk(
        table in arbitrary_table(),
        tree in arbitrary_tree(),
    ) {
        let cache = ConditionBitmapCache::new(&table);
        let tri = tree.tri_eval(&cache, &table).expect("generated trees are vectorizable");
        prop_assert_eq!(tri.trues.universe(), table.num_rows());
        for i in 0..table.num_rows() {
            let scalar = scalar_verdict(&tree, &table, RowId(i));
            prop_assert!(
                tri.trues.contains(i) == (scalar == Some(true)),
                "trues diverged from scalar at row {} for {}", i, tree
            );
            prop_assert!(
                tri.unknowns.contains(i) == scalar.is_none(),
                "unknowns diverged from scalar at row {} for {}", i, tree
            );
        }
        // The user-facing filter paths: vectorized == scalar oracle.
        let expr = Candidate::to_expr(&tree);
        prop_assert_eq!(expr.filter(&table).unwrap(), expr.filter_scalar(&table).unwrap());
    }

    /// Sharded zone-map pruning is *exact* for boolean trees: evaluating a
    /// tree per shard with pruned leaves substituted by all-FALSE (the
    /// `tri_eval_pruned` path the sharded ranker uses) and merging must
    /// reproduce the unsharded bitmaps bit for bit — disjunctions prune
    /// only when every branch prunes, and a NOT over a pruned equality
    /// still contributes its complement.
    #[test]
    fn sharded_tree_pruning_is_exact(
        table in arbitrary_table(),
        tree in arbitrary_tree(),
        column in prop_oneof![Just("id"), Just("x"), Just("memo")],
        shards in prop_oneof![Just(1usize), 2usize..5, Just(19usize)],
    ) {
        let full = ConditionBitmapCache::new(&table)
            .bool_expr(&table, &Candidate::to_expr(&tree))
            .expect("generated trees are vectorizable");
        let sharded = ShardedTable::hash(&table, column, shards).unwrap();
        let mut trues = Vec::new();
        let mut unknowns = Vec::new();
        for (s, shard) in sharded.shards().iter().enumerate() {
            let cache = ConditionBitmapCache::new(shard);
            let live = |c: &Condition| sharded.condition_may_match(s, c);
            let tri = tree
                .tri_eval_pruned(&cache, shard, &live)
                .expect("vectorizable on every shard");
            trues.push(tri.trues.clone());
            unknowns.push(tri.unknowns.clone());
        }
        prop_assert!(
            sharded.merge_sets(&trues) == full.trues,
            "pruned TRUE bitmaps diverged for {} sharded {}x on {}", tree, shards, column
        );
        prop_assert!(
            sharded.merge_sets(&unknowns) == full.unknowns,
            "pruned UNKNOWN bitmaps diverged for {} sharded {}x on {}", tree, shards, column
        );
    }

    /// Kernels ≡ scalar for single conditions and random conjunctions, and
    /// the condition-bitmap cache agrees with direct evaluation (twice, so
    /// the second pass exercises the hit path).
    #[test]
    fn vectorized_matches_scalar(
        table in arbitrary_table(),
        a in arbitrary_condition(),
        b in arbitrary_condition(),
        c in arbitrary_condition(),
    ) {
        let predicates = [
            ConjunctivePredicate::new(vec![a.clone()]),
            ConjunctivePredicate::new(vec![b.clone()]),
            ConjunctivePredicate::new(vec![a.clone(), b.clone()]),
            ConjunctivePredicate::new(vec![a.clone(), b.clone(), c.clone()]),
            ConjunctivePredicate::always_true(),
        ];
        let cache = ConditionBitmapCache::new(&table);
        for pred in &predicates {
            assert_kernel_equivalence(&table, pred)?;
            for _round in 0..2 {
                let via_cache = cache.conjunction(&table, pred).expect("well-typed");
                let direct = pred.compile(&table).unwrap().eval_columns();
                prop_assert!(
                    via_cache.trues == direct.trues && via_cache.unknowns == direct.unknowns,
                    "cached bitmaps diverged for {}", pred
                );
            }
        }
        let (hits, misses) = cache.stats();
        prop_assert!(hits + misses > 0);
    }

    /// `RowSet` algebra laws against a `BTreeSet` oracle.
    #[test]
    fn rowset_algebra_matches_btreeset_oracle(
        universe in 0usize..200,
        xs in proptest::collection::vec(0usize..200, 0..60),
        ys in proptest::collection::vec(0usize..200, 0..60),
    ) {
        let xs: Vec<usize> = xs.into_iter().filter(|&i| i < universe).collect();
        let ys: Vec<usize> = ys.into_iter().filter(|&i| i < universe).collect();
        let a = RowSet::from_indices(universe, xs.iter().copied());
        let b = RowSet::from_indices(universe, ys.iter().copied());
        let oa: BTreeSet<usize> = xs.into_iter().collect();
        let ob: BTreeSet<usize> = ys.into_iter().collect();

        let ordered = |s: &RowSet| -> Vec<usize> { s.iter().collect() };
        prop_assert_eq!(ordered(&a), oa.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(a.count_ones(), oa.len());
        prop_assert_eq!(
            ordered(&a.and(&b)),
            oa.intersection(&ob).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(ordered(&a.or(&b)), oa.union(&ob).copied().collect::<Vec<_>>());
        prop_assert_eq!(
            ordered(&a.and_not(&b)),
            oa.difference(&ob).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(a.intersection_count(&b), oa.intersection(&ob).count());
        for probe in [0usize, 1, 63, 64, 127, 199] {
            prop_assert_eq!(a.contains(probe), oa.contains(&probe));
        }
        // Round trip through RowIds preserves the set.
        let ids = a.to_row_ids();
        prop_assert_eq!(ids.len(), a.count_ones());
        let back = RowSet::from_rows(universe, ids.iter());
        prop_assert!(back == a);
        // Identities: A ∧ A = A, A ∨ ∅ = A, A \ A = ∅, A ∧ full = A.
        prop_assert!(a.and(&a) == a);
        prop_assert!(a.or(&RowSet::empty(universe)) == a);
        prop_assert!(a.and_not(&a).is_empty());
        prop_assert!(a.and(&RowSet::full(universe)) == a);
    }
}

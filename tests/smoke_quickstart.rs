//! CI smoke test: the paper's core loop, end to end, exactly as the
//! quickstart example drives it — load synthetic data, run an aggregate
//! query, brush the suspicious outputs, ask *why*, and check that a ranked,
//! clickable predicate list comes back and actually repairs the query.

use dbwipes::core::CleaningSession;
use dbwipes::data::{generate_corrupted, CorruptionConfig};
use dbwipes::{DbWipes, ErrorMetric, ExplanationRequest};

#[test]
fn quickstart_loop_produces_a_ranked_repairing_predicate() {
    // Load: a dataset with a known, predicate-describable corruption.
    let dataset = generate_corrupted(&CorruptionConfig {
        num_rows: 8_000,
        num_devices: 20,
        corrupted_devices: vec![7, 8],
        corruption_start_group: 0,
        corruption_shift: 150.0,
        ..CorruptionConfig::default()
    });
    assert!(dataset.truth.error_count() > 0, "generator must inject errors");

    let mut db = DbWipes::new();
    db.register(dataset.table.clone()).expect("register table");

    // Query: the per-group aggregate the analyst is looking at.
    let result = db.query(&dataset.group_avg_query()).expect("query executes");
    assert!(result.len() > 1, "query must produce groups");

    // Brush: the groups whose average is suspiciously high.
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > 65.0)
        .collect();
    assert!(!suspicious.is_empty(), "corruption must push groups over the threshold");

    // Explain: no example tuples — the backend falls back to influence.
    let metric = ErrorMetric::too_high("avg_value", 60.0);
    let request = ExplanationRequest::new(suspicious.clone(), vec![], metric);
    let explanation = db.explain(&result, &request).expect("explanation");

    // The paper's deliverable: a non-empty ranked predicate list.
    assert!(!explanation.predicates.is_empty(), "ranked predicate list must be non-empty");
    assert!(explanation.base_error > 0.0);
    let best = explanation.best().expect("best predicate");
    assert!(best.improvement > 0.5, "best predicate should mostly repair ε: {}", best.summary());

    // The ranking is genuinely sorted.
    for pair in explanation.predicates.windows(2) {
        assert!(pair[0].score >= pair[1].score, "predicates must be sorted by score");
    }

    // Click: rewriting the query with AND NOT (best) lowers every brushed
    // group's average (or removes the group entirely).
    let mut session = CleaningSession::new(result.statement.clone());
    session.apply(best.predicate.clone());
    let cleaned = session
        .execute(db.catalog().table("measurements").expect("table"))
        .expect("cleaned query executes");
    let cleaned_max = (0..cleaned.len())
        .filter_map(|i| cleaned.value_f64(i, "avg_value").ok().flatten())
        .fold(f64::NEG_INFINITY, f64::max);
    let original_max = (0..result.len())
        .filter_map(|i| result.value_f64(i, "avg_value").ok().flatten())
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        cleaned_max < original_max,
        "cleaning must lower the worst group average ({cleaned_max} vs {original_max})"
    );

    // And the predicate should actually describe the injected corruption.
    let score = dataset.truth.score_predicate(&dataset.table, &best.predicate);
    assert!(score.f1 > 0.6, "best predicate should match ground truth, f1 = {}", score.f1);
}

//! Property-based tests over the learning substrate and the parser —
//! invariants the Predicate Enumerator depends on.

use dbwipes::engine::parse_select;
use dbwipes::learn::{
    discover_subgroups, DecisionTree, FeatureSpace, SplitCriterion, SubgroupConfig, TreeConfig,
};
use dbwipes::storage::{DataType, Schema, Value};
use dbwipes::{RowId, Table};
use proptest::prelude::*;

/// A random labelled table: numeric `x`, numeric `y`, categorical `tag`,
/// plus a label column used as ground truth (the label is *not* part of the
/// feature space).
fn labelled_table() -> impl Strategy<Value = (Table, Vec<bool>)> {
    let row = (0.0..100.0f64, -10.0..10.0f64, 0usize..4, any::<bool>());
    proptest::collection::vec(row, 8..80).prop_map(|rows| {
        let schema =
            Schema::of(&[("x", DataType::Float), ("y", DataType::Float), ("tag", DataType::Str)]);
        let mut t = Table::new("d", schema).unwrap();
        let mut labels = Vec::new();
        for (x, y, tag, noise) in rows {
            // Ground truth: positive iff x > 60, with a little label noise so
            // trees cannot always be perfect.
            let label = x > 60.0 || (noise && x > 55.0);
            t.push_row(vec![Value::Float(x), Value::Float(y), Value::str(format!("t{tag}"))])
                .unwrap();
            labels.push(label);
        }
        (t, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every positive rule extracted from a decision tree is *consistent*:
    /// the rows it covers (via the compiled predicate) are exactly the rows
    /// that reach that leaf, so each covered training row satisfies the
    /// predicate and the rule's class counts add up.
    #[test]
    fn tree_rules_compile_to_predicates_that_cover_their_leaves((table, labels) in labelled_table()) {
        let rows: Vec<RowId> = table.visible_row_ids().collect();
        let space = FeatureSpace::build_excluding(&table, &[], &rows);
        let dataset = space.extract(&table, &rows);
        for criterion in [SplitCriterion::Gini, SplitCriterion::GainRatio] {
            let tree = DecisionTree::train(
                &dataset,
                &labels,
                TreeConfig { criterion, ..TreeConfig::default() },
            );
            for rule in tree.positive_rules() {
                let predicate = rule.to_predicate(&space);
                let covered = predicate.matching_rows(&table);
                // The predicate merges the path tests, so it can only be
                // *looser* than the exact leaf membership — never tighter:
                // every row predicted positive by the tree and covered by the
                // leaf's path must satisfy the predicate.
                prop_assert!(covered.len() >= rule.pos.min(1));
                // Predicted-positive instances must satisfy at least one
                // positive rule's predicate.
            }
            // Global consistency: every instance predicted positive satisfies
            // at least one extracted positive rule.
            let rules: Vec<_> = tree.positive_rules();
            for (i, instance) in dataset.instances.iter().enumerate() {
                if tree.predict(instance) {
                    let rid = rows[i];
                    let covered_by_some = rules.iter().any(|r| r.to_predicate(&space).matches(&table, rid));
                    prop_assert!(covered_by_some, "row {rid} predicted positive but matched no rule");
                }
            }
        }
    }

    /// Subgroup discovery only returns rules with strictly positive WRAcc
    /// whose reported coverage matches a recount over the dataset.
    #[test]
    fn subgroups_report_accurate_coverage((table, labels) in labelled_table()) {
        let rows: Vec<RowId> = table.visible_row_ids().collect();
        let space = FeatureSpace::build_excluding(&table, &[], &rows);
        let dataset = space.extract(&table, &rows);
        let subgroups = discover_subgroups(&dataset, &labels, &SubgroupConfig::default());
        for sg in subgroups {
            prop_assert!(sg.wracc > 0.0);
            let covered = sg.covered_indices(&dataset);
            let pos = covered.iter().filter(|&&i| labels[i]).count();
            let neg = covered.len() - pos;
            prop_assert_eq!(pos, sg.covered_pos);
            prop_assert_eq!(neg, sg.covered_neg);
            prop_assert!(pos >= SubgroupConfig::default().min_positive_coverage);
        }
    }

    /// Statements survive a render → parse → render round trip: the SQL the
    /// dashboard displays can always be re-submitted through the query form.
    #[test]
    fn statement_sql_round_trips(
        threshold in -100i64..100,
        limit in proptest::option::of(1usize..50),
        desc in any::<bool>(),
    ) {
        let direction = if desc { "DESC" } else { "ASC" };
        let limit_clause = limit.map(|l| format!(" LIMIT {l}")).unwrap_or_default();
        let sql = format!(
            "SELECT grp, avg(value) AS a, count(*) FROM m WHERE value > {threshold} AND tag LIKE '%x%' \
             GROUP BY grp ORDER BY a {direction}{limit_clause}"
        );
        let first = parse_select(&sql).unwrap();
        let rendered = first.to_sql();
        let second = parse_select(&rendered).unwrap();
        prop_assert_eq!(rendered.clone(), second.to_sql());
        prop_assert_eq!(first, second);
    }

    /// Error metrics are non-negative, zero on the empty selection, and
    /// monotone in the offending direction.
    #[test]
    fn error_metrics_are_nonnegative_and_monotone(
        threshold in -50.0..50.0f64,
        value in -100.0..100.0f64,
        bump in 0.0..50.0f64,
    ) {
        use dbwipes::ErrorMetric;
        let high = ErrorMetric::too_high("c", threshold);
        let low = ErrorMetric::too_low("c", threshold);
        let eq = ErrorMetric::not_equal_to("c", threshold);
        for m in [&high, &low, &eq] {
            prop_assert!(m.evaluate(&[Some(value)]) >= 0.0);
            prop_assert_eq!(m.evaluate(&[]), 0.0);
            prop_assert_eq!(m.evaluate(&[None]), 0.0);
        }
        // Raising a value never decreases a "too high" error and never
        // increases a "too low" error.
        prop_assert!(high.evaluate(&[Some(value + bump)]) >= high.evaluate(&[Some(value)]));
        prop_assert!(low.evaluate(&[Some(value + bump)]) <= low.evaluate(&[Some(value)]));
        // The paper's diff metric equals the max single-value excess.
        let diff = ErrorMetric::diff("c", threshold);
        let vals = [Some(value), Some(value + bump)];
        let expected = (value + bump - threshold).max(0.0).max((value - threshold).max(0.0));
        prop_assert!((diff.evaluate(&vals) - expected).abs() < 1e-9);
    }
}

//! Property-based tests over the storage, engine and provenance invariants
//! the rest of the system relies on.

use dbwipes::engine::{execute, parse_select, ExecOptions};
use dbwipes::storage::{col, lit, Condition, ConjunctivePredicate, DataType, Schema, Value};
use dbwipes::{RowId, Table};
use proptest::prelude::*;

/// A small random table of sensor-style rows.
fn arbitrary_table() -> impl Strategy<Value = Table> {
    let row = (0i64..4, 0i64..6, prop_oneof![Just(None), (-50.0..150.0f64).prop_map(Some)]);
    proptest::collection::vec(row, 1..60).prop_map(|rows| {
        let schema = Schema::of(&[
            ("grp", DataType::Int),
            ("device", DataType::Int),
            ("value", DataType::Float),
        ]);
        let mut t = Table::new("m", schema).unwrap();
        for (g, d, v) in rows {
            t.push_row(vec![
                Value::Int(g),
                Value::Int(d),
                v.map(Value::Float).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The lineage of a group-by query partitions exactly the rows that pass
    /// the WHERE clause: every filtered row appears in exactly one group.
    #[test]
    fn lineage_partitions_the_filtered_input(table in arbitrary_table(), threshold in -60.0..160.0f64) {
        let stmt = parse_select(&format!(
            "SELECT grp, avg(value) FROM m WHERE value > {threshold} GROUP BY grp"
        )).unwrap();
        let result = execute(&table, &stmt, ExecOptions::default()).unwrap();
        let mut all_inputs: Vec<RowId> = (0..result.len()).flat_map(|i| result.inputs_of(i).to_vec()).collect();
        all_inputs.sort();
        let mut expected: Vec<RowId> = col("value").gt(lit(threshold)).filter(&table).unwrap();
        expected.sort();
        prop_assert_eq!(all_inputs.clone(), expected);
        // No duplicates across groups.
        let mut dedup = all_inputs.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), all_inputs.len());
    }

    /// Aggregates computed by the engine match a naive reference computation
    /// over the lineage rows.
    #[test]
    fn aggregates_match_naive_reference(table in arbitrary_table()) {
        let stmt = parse_select(
            "SELECT grp, avg(value), sum(value), count(value), min(value), max(value) FROM m GROUP BY grp",
        ).unwrap();
        let result = execute(&table, &stmt, ExecOptions::default()).unwrap();
        for i in 0..result.len() {
            let values: Vec<f64> = result
                .inputs_of(i)
                .iter()
                .filter_map(|&r| table.value_by_name(r, "value").unwrap().as_f64())
                .collect();
            let avg = result.value_f64(i, "avg_value").unwrap();
            let sum = result.value_f64(i, "sum_value").unwrap();
            let count = result.value_f64(i, "count_value").unwrap().unwrap();
            let min = result.value_f64(i, "min_value").unwrap();
            let max = result.value_f64(i, "max_value").unwrap();
            prop_assert_eq!(count as usize, values.len());
            if values.is_empty() {
                prop_assert!(avg.is_none());
                prop_assert!(sum.is_none());
                prop_assert!(min.is_none());
                prop_assert!(max.is_none());
            } else {
                let naive_sum: f64 = values.iter().sum();
                prop_assert!((sum.unwrap() - naive_sum).abs() < 1e-6);
                prop_assert!((avg.unwrap() - naive_sum / values.len() as f64).abs() < 1e-6);
                prop_assert!((min.unwrap() - values.iter().copied().fold(f64::INFINITY, f64::min)).abs() < 1e-9);
                prop_assert!((max.unwrap() - values.iter().copied().fold(f64::NEG_INFINITY, f64::max)).abs() < 1e-9);
            }
        }
    }

    /// Clean-as-you-query soundness: rewriting the query with `AND NOT p` is
    /// equivalent to physically deleting the rows matching `p`.
    #[test]
    fn query_rewrite_equals_physical_deletion(table in arbitrary_table(), device in 0i64..6) {
        let predicate = ConjunctivePredicate::new(vec![Condition::equals("device", device)]);
        let stmt = parse_select("SELECT grp, avg(value), count(*) FROM m GROUP BY grp").unwrap();

        let rewritten_stmt = stmt.with_additional_filter(predicate.to_exclusion_expr());
        let rewritten = execute(&table, &rewritten_stmt, ExecOptions::default()).unwrap();

        let mut physical = table.clone();
        let matching = predicate.matching_rows(&physical);
        physical.delete_rows(&matching).unwrap();
        let deleted = execute(&physical, &stmt, ExecOptions::default()).unwrap();

        prop_assert_eq!(rewritten.rows, deleted.rows);
    }

    /// A conjunctive predicate matches a row iff its compiled expression
    /// evaluates to TRUE on that row, and its matched set plus its exclusion
    /// set cover every visible row exactly once.
    #[test]
    fn predicate_and_expression_agree(table in arbitrary_table(), low in -50.0..150.0f64, device in 0i64..6) {
        let predicate = ConjunctivePredicate::new(vec![
            Condition::above("value", low),
            Condition::equals("device", device),
        ]);
        let matched = predicate.matching_rows(&table);
        let via_expr = predicate.to_expr().filter(&table).unwrap();
        prop_assert_eq!(matched.clone(), via_expr);
        let excluded = predicate.to_exclusion_expr().filter(&table).unwrap();
        // NULL `value` rows satisfy neither the predicate nor its negation
        // (SQL three-valued logic), so matched + excluded <= all rows.
        prop_assert!(matched.len() + excluded.len() <= table.num_rows());
        for r in &matched {
            prop_assert!(!excluded.contains(r));
        }
    }

    /// The influence of every tuple is bounded by the base error when the
    /// metric combines penalties with `Sum` over a single selected group,
    /// and removing the *most* influential tuple never increases the error
    /// beyond the base (sanity of leave-one-out analysis).
    #[test]
    fn influence_is_consistent_with_base_error(table in arbitrary_table(), threshold in 0.0..80.0f64) {
        let stmt = parse_select("SELECT grp, avg(value) FROM m GROUP BY grp").unwrap();
        let result = execute(&table, &stmt, ExecOptions::default()).unwrap();
        if result.is_empty() {
            return Ok(());
        }
        let metric = dbwipes::ErrorMetric::too_high("avg_value", threshold);
        let selected = vec![0usize];
        let report = dbwipes::core::rank_influence(&table, &result, &selected, &metric);
        let report = match report {
            Ok(r) => r,
            Err(_) => return Ok(()),
        };
        prop_assert!(report.base_error >= 0.0);
        for t in &report.influences {
            // influence = base - after, and after >= 0, so influence <= base.
            prop_assert!(t.influence <= report.base_error + 1e-9);
        }
    }

    /// CSV round-trips preserve every visible row.
    #[test]
    fn csv_round_trip(table in arbitrary_table()) {
        let csv = dbwipes::storage::csv::to_csv(&table);
        let back = dbwipes::storage::csv::from_csv("m", &csv).unwrap();
        prop_assert_eq!(back.num_rows(), table.visible_rows());
        for (new_idx, old_id) in table.visible_row_ids().enumerate() {
            let original = table.row(old_id).unwrap();
            let round_tripped = back.row(RowId(new_idx)).unwrap();
            prop_assert_eq!(original, round_tripped);
        }
    }
}

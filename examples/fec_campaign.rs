//! The paper's §3.2 walkthrough: a data journalist debugging McCain's
//! campaign contributions (Figure 7).
//!
//! The journalist plots the candidate's total donations per day, notices a
//! negative spike around day 500, zooms into the raw donations of those
//! days, highlights the negative ones, picks the error metric "values are
//! too low", and clicks "debug!". DBWipes returns a predicate referencing
//! the memo string "REATTRIBUTION TO SPOUSE"; clicking it removes most of
//! the negative spike.
//!
//! Run with: `cargo run --release --example fec_campaign`

use dbwipes::dashboard::{render_ascii, Brush, DashboardSession};
use dbwipes::data::{generate_fec, FecConfig};
use dbwipes::{DbWipes, ErrorMetric};

fn main() {
    // Synthetic stand-in for the FEC dump (see DESIGN.md for the substitution).
    let config = FecConfig { num_contributions: 60_000, ..FecConfig::default() };
    let dataset = generate_fec(&config);
    println!("generated {} contributions; {}", dataset.table.num_rows(), dataset.truth.description);

    let mut db = DbWipes::new();
    db.register(dataset.table.clone()).expect("register");
    let mut session = DashboardSession::new(db);

    // Step 1: the journalist's query — total received donations per day.
    let sql = dataset.daily_total_query();
    println!("\nquery: {sql}\n");
    session.run_query(&sql).expect("query");

    // Step 2: the Figure-7 plot.
    let plot = session.plot("day", "total").expect("plot");
    println!("{}", render_ascii(&plot, 100, 22));

    // Step 3: brush the strange negative spike (totals below zero).
    let suspicious = session.brush_outputs("day", "total", Brush::below(0.0));
    println!("brushed {} suspicious days (total < 0)", suspicious.len());

    // Step 4: zoom in to the individual donations of those days and brush
    // the negative ones as D'.
    let zoom = session.zoom("day", "amount").expect("zoom");
    println!("zoomed into {} individual donations", zoom.len());
    let examples = session.brush_inputs("day", "amount", Brush::below(0.0));
    println!("highlighted {} negative donations as examples (D')\n", examples.len());

    // Step 5: the error form suggests "values are too low"; pick it.
    let choices = session.metric_choices("total");
    for c in &choices {
        println!("error form offers: {}", c.label);
    }
    let metric = choices
        .iter()
        .map(|c| c.metric.clone())
        .find(|m| matches!(m.kind, dbwipes::core::MetricKind::TooLow { .. }))
        .unwrap_or_else(|| ErrorMetric::too_low("total", 0.0));
    session.set_metric(metric);

    // Step 6: debug!
    let explanation = session.debug().expect("explanation");
    println!("\nranked predicates:\n{}\n", explanation.to_display());

    // The walkthrough's punchline: the top predicates reference the memo
    // attribute containing "REATTRIBUTION TO SPOUSE".
    let reattribution_rank = session
        .ranked_predicates()
        .iter()
        .position(|p| p.predicate.to_string().to_uppercase().contains("REATTRIBUTION"));
    match reattribution_rank {
        Some(rank) => println!("the REATTRIBUTION TO SPOUSE predicate is ranked #{}", rank + 1),
        None => println!("no REATTRIBUTION predicate was returned (unexpected)"),
    }

    // Step 7: click the best predicate and watch the negative spike vanish.
    let negative_days_before = count_negative_days(&session);
    session.click_predicate(0).expect("clean");
    let negative_days_after = count_negative_days(&session);
    println!(
        "\nafter cleaning: {} -> {} days with negative totals",
        negative_days_before, negative_days_after
    );
    println!("rewritten query: {}", session.current_sql());

    let plot = session.plot("day", "total").expect("plot");
    println!("\n{}", render_ascii(&plot, 100, 22));
}

fn count_negative_days(session: &DashboardSession) -> usize {
    let result = session.result().expect("result");
    (0..result.len())
        .filter(|&i| result.value_f64(i, "total").unwrap().unwrap_or(0.0) < 0.0)
        .count()
}

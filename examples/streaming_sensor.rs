//! Continuous ingestion while a session brushes: the streaming half of the
//! Intel-sensor demo. An analyst opens a session, plots per-window
//! temperature aggregates, brushes the suspicious windows and asks for an
//! explanation — and while they are looking at it, the sensor network
//! keeps reporting. Each arriving `stream_append` batch is absorbed by the
//! session's retained aggregate cache (filter + fold of just the new rows,
//! never a cold re-execution), so the displayed result and the next
//! explanation are always computed over the table as it is *now*.
//!
//! ```sh
//! cargo run --example streaming_sensor
//! ```
//!
//! Watch two things in the transcript:
//!
//! * the brushed window's `avg_temp`/`std_temp` climb wave after wave as a
//!   failing sensor streams hot readings into it, without the session ever
//!   re-running its query from scratch;
//! * the final `stats` reply: `cache.misses` stays at 1 (the original
//!   query) while `cache.append_absorbs` counts every streamed wave.

use dbwipes_server::{Json, SessionManager};
use std::fmt::Write as _;

const WINDOW_SQL: &str = "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS std_temp \
                          FROM readings GROUP BY window ORDER BY window";

/// The window the failing sensor floods; its row of the GROUP BY result is
/// the one to watch.
const HOT_WINDOW: f64 = 0.0;

fn send(manager: &SessionManager, line: &str) -> Json {
    let reply = manager.handle_line(line);
    let json = Json::parse(&reply).expect("server replies are JSON");
    assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true), "command failed: {reply}");
    json
}

/// Reads one y-value for [`HOT_WINDOW`] off a `plot` reply — the way a
/// frontend tracks the displayed result without restarting the analysis
/// (a new `run_query` would begin a fresh session state, dropping the
/// brush and metric; `plot` just renders what is already displayed).
fn plotted_hot_window(manager: &SessionManager, y: &str) -> f64 {
    let reply = send(manager, &format!(r#"{{"cmd":"plot","session":1,"x":"window","y":"{y}"}}"#));
    reply
        .get("series")
        .and_then(|s| s.get("points"))
        .and_then(Json::as_array)
        .and_then(|points| {
            points
                .iter()
                .find(|p| p.get("x").and_then(Json::as_f64) == Some(HOT_WINDOW))
                .and_then(|p| p.get("y"))
                .and_then(Json::as_f64)
        })
        .unwrap_or(f64::NAN)
}

/// Renders the brushed window's displayed aggregates.
fn hot_window_row(manager: &SessionManager) -> String {
    let avg = plotted_hot_window(manager, "avg_temp");
    let std = plotted_hot_window(manager, "std_temp");
    format!("window {HOT_WINDOW}: avg_temp {avg:.2}, std_temp {std:.2}")
}

/// One wave of hot readings from sensor 15, as a `stream_append` line.
/// Row layout matches the demo schema: sensorid, epoch, hour, window,
/// temp, humidity, light, voltage.
fn wave_line(wave: usize, rows: usize) -> String {
    let mut payload = String::from(r#"{"cmd":"stream_append","table":"readings","rows":["#);
    for r in 0..rows {
        if r > 0 {
            payload.push(',');
        }
        let temp = 88.0 + wave as f64 * 4.0 + (r % 8) as f64 / 2.0;
        write!(payload, "[15,0,0,{HOT_WINDOW},{temp:.1},35.0,250.0,2.3]").expect("string write");
    }
    write!(payload, r#"],"id":{wave}}}"#).expect("string write");
    payload
}

fn main() {
    let ds = dbwipes_data::generate_sensor(&dbwipes_data::SensorConfig {
        num_readings: 2_700,
        failing_sensors: vec![15],
        ..dbwipes_data::SensorConfig::small()
    });
    let mut catalog = dbwipes_storage::Catalog::new();
    catalog.register(ds.table.clone()).expect("register demo table");
    let manager = SessionManager::new(catalog);

    // The analyst's session: query, brush the high-variance windows, pick
    // an error metric. From here on the session has a displayed result a
    // live frontend would be rendering.
    send(&manager, r#"{"cmd":"open_session"}"#);
    send(&manager, &format!(r#"{{"cmd":"run_query","session":1,"sql":"{WINDOW_SQL}"}}"#));
    println!("before streaming   → {}", hot_window_row(&manager));
    send(
        &manager,
        r#"{"cmd":"brush_outputs","session":1,"x":"window","y":"std_temp","brush":{"y_min":8}}"#,
    );
    send(
        &manager,
        r#"{"cmd":"set_metric","session":1,"kind":"too_high","column":"std_temp","value":4}"#,
    );
    send(&manager, r#"{"cmd":"debug","session":1}"#);

    // The sensor network keeps reporting: three waves of hot readings land
    // while the brush is up. Every wave refreshes the open session through
    // cache absorption — note `sessions_refreshed` in each reply.
    for wave in 0..3usize {
        let reply = send(&manager, &wave_line(wave, 64));
        println!(
            "wave {wave}: appended {} rows (table now {}), sessions refreshed: {}",
            reply.get("appended").and_then(Json::as_u64).unwrap_or(0),
            reply.get("total_rows").and_then(Json::as_u64).unwrap_or(0),
            reply.get("sessions_refreshed").and_then(Json::as_u64).unwrap_or(0),
        );
        println!("after wave {wave}       → {}", hot_window_row(&manager));
    }

    // The next explanation runs over the grown table: the streamed-in
    // readings are part of the evidence, not a stale snapshot.
    let debug = send(&manager, r#"{"cmd":"debug","session":1}"#);
    if let Some(first) = debug
        .get("predicates")
        .and_then(Json::as_array)
        .and_then(<[Json]>::first)
        .and_then(|p| p.get("predicate"))
        .and_then(Json::as_str)
    {
        println!("top explanation over the live table: {first}");
    }

    let stats = send(&manager, r#"{"cmd":"stats"}"#);
    let cache = stats.get("cache").expect("stats reply carries cache counters");
    println!(
        "cache counters: misses {}, append absorbs {}",
        cache.get("misses").and_then(Json::as_u64).unwrap_or(0),
        cache.get("append_absorbs").and_then(Json::as_u64).unwrap_or(0),
    );
    send(&manager, r#"{"cmd":"close_session","session":1}"#);
}

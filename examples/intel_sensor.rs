//! The paper's running Intel-Lab example (Figures 4 and 6): hot sensors.
//!
//! The analyst computes average and standard deviation of temperature in
//! 30-minute windows, highlights the windows with suspiciously high
//! standard deviation, zooms in, highlights the readings above 100°F, and
//! asks DBWipes why. The ranked predicates point at the failing sensors
//! (their ids and collapsing battery voltage); clicking one repairs the
//! aggregate series.
//!
//! Run with: `cargo run --release --example intel_sensor`

use dbwipes::dashboard::{render_ascii, Brush, DashboardSession};
use dbwipes::data::{generate_sensor, SensorConfig};
use dbwipes::{DbWipes, ErrorMetric};

fn main() {
    let config = SensorConfig { num_readings: 120_000, ..SensorConfig::default() };
    let dataset = generate_sensor(&config);
    println!(
        "generated {} readings from {} sensors; {}",
        dataset.table.num_rows(),
        config.num_sensors,
        dataset.truth.description
    );

    let mut db = DbWipes::new();
    db.register(dataset.table.clone()).expect("register");
    let mut session = DashboardSession::new(db);

    // Figure 4 (left): avg and stddev of temperature per 30-minute window.
    let sql = dataset.window_query();
    println!("\nquery: {sql}\n");
    session.run_query(&sql).expect("query");
    let plot = session.plot("window", "std_temp").expect("plot");
    println!("{}", render_ascii(&plot, 100, 20));

    // Brush the high-stddev windows.
    let suspicious = session.brush_outputs("window", "std_temp", Brush::above(8.0));
    println!("brushed {} windows with std_temp > 8\n", suspicious.len());

    // Figure 4 (right): zoom in to the raw readings and highlight the
    // >100°F values.
    let zoom = session.zoom("sensorid", "temp").expect("zoom");
    println!("zoomed into {} readings:", zoom.len());
    println!("{}", render_ascii(&zoom, 100, 20));
    let examples = session.brush_inputs("sensorid", "temp", Brush::above(100.0));
    println!("highlighted {} readings above 100F as D'\n", examples.len());

    // Error metric: the windows' temperature spread is too high.
    session.set_metric(ErrorMetric::too_high("std_temp", 5.0));

    // Figure 6: the ranked list of predicates.
    let explanation = session.debug().expect("explanation");
    println!("ranked predicates (Figure 6):\n{}\n", explanation.to_display());

    // How well does the best predicate match the ground-truth failing sensors?
    let best = &session.ranked_predicates()[0];
    let score = dataset.truth.score_predicate(&dataset.table, &best.predicate);
    println!(
        "best predicate matches the injected failures with precision={:.2} recall={:.2}",
        score.precision, score.recall
    );

    // Click it and compare the spread before/after.
    let before = max_std(&session);
    session.click_predicate(0).expect("clean");
    let after = max_std(&session);
    println!("\nmax window stddev: {before:.1} -> {after:.1} after cleaning");
    println!("rewritten query: {}", session.current_sql());
    let plot = session.plot("window", "std_temp").expect("plot");
    println!("\n{}", render_ascii(&plot, 100, 20));
}

fn max_std(session: &DashboardSession) -> f64 {
    let result = session.result().expect("result");
    (0..result.len())
        .filter_map(|i| result.value_f64(i, "std_temp").unwrap())
        .fold(f64::NEG_INFINITY, f64::max)
}

//! Quickstart: ask DBWipes *why* an aggregate looks wrong.
//!
//! Builds a small measurements table in which two devices start reporting
//! shifted values halfway through the trace, runs a per-group average
//! query, selects the anomalous groups, and prints the ranked predicates
//! DBWipes returns — then "clicks" the best one and shows the repaired
//! result.
//!
//! Run with: `cargo run --example quickstart`

use dbwipes::core::CleaningSession;
use dbwipes::data::{generate_corrupted, CorruptionConfig};
use dbwipes::{DbWipes, ErrorMetric, ExplanationRequest};

fn main() {
    // 1. Generate a dataset with a known, describable corruption.
    let dataset = generate_corrupted(&CorruptionConfig {
        num_rows: 8_000,
        num_devices: 20,
        corrupted_devices: vec![7, 8],
        corruption_start_group: 0,
        corruption_shift: 150.0,
        ..CorruptionConfig::default()
    });
    println!("ground truth: {}", dataset.truth.description);
    println!("              ({} corrupted rows)\n", dataset.truth.error_count());

    let mut db = DbWipes::new();
    db.register(dataset.table.clone()).expect("register table");

    // 2. Run the aggregate query the analyst is looking at.
    let sql = dataset.group_avg_query();
    println!("query: {sql}\n");
    let result = db.query(&sql).expect("query executes");
    println!("{}", result.to_display(8));

    // 3. Select the suspicious outputs: groups whose average exceeds 65.
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > 65.0)
        .collect();
    println!("selected {} suspicious groups (avg_value > 65)\n", suspicious.len());

    // 4. Ask for an explanation. We pass no example tuples (D'): DBWipes
    //    falls back to the most influential inputs.
    let metric = ErrorMetric::too_high("avg_value", 60.0);
    let request = ExplanationRequest::new(suspicious, vec![], metric);
    let explanation = db.explain(&result, &request).expect("explanation");

    println!("baseline error: {:.2}", explanation.base_error);
    println!("component timings: {:?}\n", explanation.timings);
    println!("ranked predicates:");
    println!("{}\n", explanation.to_display());

    // 5. "Click" the best predicate: rewrite the query with AND NOT (...).
    let best = explanation.best().expect("at least one predicate").predicate.clone();
    println!("cleaning with: {best}\n");
    let mut session = CleaningSession::new(result.statement.clone());
    session.apply(best.clone());
    let cleaned = session
        .execute(db.catalog().table("measurements").expect("table"))
        .expect("cleaned query executes");
    println!("rewritten query: {}\n", session.current_sql());
    println!("{}", cleaned.to_display(8));

    // 6. Score the chosen predicate against the ground truth.
    let score = dataset.truth.score_predicate(&dataset.table, &best);
    println!(
        "predicate precision={:.2} recall={:.2} f1={:.2} (vs injected corruption)",
        score.precision, score.recall, score.f1
    );
}

//! Iterative clean-as-you-query: keep clicking predicates until the error
//! metric is satisfied, then undo everything.
//!
//! The demo's core interaction is a *loop*: each applied predicate rewrites
//! the query, the visualization updates, and the user can immediately
//! explore the next suspicious point. This example drives that loop
//! programmatically on a dataset with two separate corruption causes, shows
//! how the error metric shrinks after every click, compares query-rewriting
//! cleaning with physical deletion, and finally undoes the whole session.
//!
//! Run with: `cargo run --release --example interactive_cleaning`

use dbwipes::core::{suggest_metrics, CleaningStrategy, ErrorMetric, ExplanationRequest};
use dbwipes::data::{generate_corrupted, CorruptionConfig};
use dbwipes::DbWipes;

fn main() {
    // Two corrupted devices create two overlapping anomalies.
    let dataset = generate_corrupted(&CorruptionConfig {
        num_rows: 12_000,
        num_devices: 20,
        corrupted_devices: vec![3, 13],
        corruption_shift: 150.0,
        ..CorruptionConfig::default()
    });
    println!("ground truth: {}\n", dataset.truth.description);

    let mut db = DbWipes::new();
    db.register(dataset.table.clone()).expect("register");
    let sql = dataset.group_avg_query();
    let mut result = db.query(&sql).expect("query");

    // Build the error metric from the data itself, the way the dashboard's
    // error form does: "normal" groups define the expected ceiling.
    let values: Vec<f64> =
        (0..result.len()).filter_map(|i| result.value_f64(i, "avg_value").unwrap()).collect();
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > 62.0)
        .collect();
    let normal: Vec<f64> = values
        .iter()
        .enumerate()
        .filter(|(i, _)| !suspicious.contains(i))
        .map(|(_, v)| *v)
        .collect();
    let selected_vals: Vec<f64> =
        suspicious.iter().filter_map(|&i| result.value_f64(i, "avg_value").unwrap()).collect();
    let metric = suggest_metrics("avg_value", &selected_vals, &normal)
        .into_iter()
        .next()
        .unwrap_or_else(|| ErrorMetric::too_high("avg_value", 62.0));
    println!("error metric: {metric}");
    println!("{} suspicious groups selected\n", suspicious.len());

    // Iteratively explain + clean until the error is (almost) gone.
    let mut session = dbwipes::CleaningSession::new(result.statement.clone());
    let table = dataset.table.clone();
    let mut round = 0;
    loop {
        round += 1;
        let error = metric.evaluate_result(&result, &suspicious_rows(&result, 62.0));
        println!(
            "round {round}: error = {error:.2}, applied predicates = {}",
            session.applied().len()
        );
        if error < 1.0 || round > 5 {
            break;
        }
        let mut request =
            ExplanationRequest::new(suspicious_rows(&result, 62.0), vec![], metric.clone());
        // Alternate the cleaning strategy just to exercise both paths.
        request.config.enumerator.cleaning =
            if round % 2 == 0 { CleaningStrategy::NaiveBayes } else { CleaningStrategy::KMeans };
        let explanation = match dbwipes::core::explain_on_table(&table, &result, &request) {
            Ok(e) => e,
            Err(err) => {
                println!("  no further explanation: {err}");
                break;
            }
        };
        let Some(best) = explanation.best() else {
            println!("  no predicates returned");
            break;
        };
        println!("  applying: {}", best.summary());
        session.apply(best.predicate.clone());
        result = session.execute(&table).expect("cleaned query");
    }

    println!("\nfinal rewritten query:\n  {}\n", session.current_sql());

    // Compare with physically deleting the matched tuples instead.
    let mut physical = DbWipes::new();
    physical.register(dataset.table.clone()).expect("register");
    let mut removed_total = 0;
    for predicate in session.applied() {
        removed_total += physical.clean("measurements", predicate).expect("clean").len();
    }
    let physical_result = physical.query(&sql).expect("query after physical cleaning");
    println!(
        "physical cleaning removed {removed_total} rows; max group average is now {:.1}",
        (0..physical_result.len())
            .filter_map(|i| physical_result.value_f64(i, "avg_value").unwrap())
            .fold(f64::NEG_INFINITY, f64::max)
    );

    // Undo everything.
    while session.undo().is_some() {}
    let restored = session.execute(&table).expect("restored query");
    println!(
        "after undoing all predicates the anomaly is back: {} groups above 62",
        suspicious_rows(&restored, 62.0).len()
    );
}

fn suspicious_rows(result: &dbwipes::QueryResult, threshold: f64) -> Vec<usize> {
    (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > threshold)
        .collect()
}

//! Ranked provenance vs. traditional provenance (the paper's §1 argument).
//!
//! Traditional fine-grained provenance answers "why is this average wrong?"
//! with *every* contributing tuple — thousands of rows with very low
//! precision. This example runs DBWipes and the baseline strategies on the
//! same anomaly and prints the precision/recall each achieves against the
//! injected ground truth, plus the size of the answer a user would have to
//! inspect.
//!
//! Run with: `cargo run --release --example provenance_comparison`

use dbwipes::core::baselines::{
    coarse_grained_provenance, fine_grained_provenance, greedy_responsibility,
    single_attribute_predicates, top_k_influence, SingleAttributeConfig,
};
use dbwipes::core::{rank_influence, ErrorMetric, ExplanationRequest};
use dbwipes::data::{generate_corrupted, CorruptionConfig};
use dbwipes::{DbWipes, RowId};
use std::collections::BTreeSet;

fn main() {
    let dataset = generate_corrupted(&CorruptionConfig {
        num_rows: 15_000,
        num_devices: 20,
        corrupted_devices: vec![7, 8],
        corruption_start_group: 0,
        corruption_shift: 150.0,
        ..CorruptionConfig::default()
    });
    let truth: BTreeSet<RowId> = dataset.truth.error_rows.clone();
    println!("ground truth: {} ({} rows)\n", dataset.truth.description, truth.len());

    let mut db = DbWipes::new();
    db.register(dataset.table.clone()).expect("register");
    let result = db.query(&dataset.group_avg_query()).expect("query");

    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > 65.0)
        .collect();
    let metric = ErrorMetric::too_high("avg_value", 60.0);
    let table = db.catalog().table("measurements").expect("table");

    println!(
        "{:<34} {:>9} {:>10} {:>8} {:>8}",
        "strategy", "returned", "precision", "recall", "f1"
    );
    println!("{}", "-".repeat(74));

    // Coarse-grained provenance: the whole table.
    let coarse = coarse_grained_provenance(table);
    report(
        "coarse-grained provenance",
        dataset.truth.score_rows(&coarse.rows().collect::<Vec<_>>()),
    );

    // Fine-grained provenance: all inputs of the suspicious outputs.
    let fine = fine_grained_provenance(&result, &suspicious);
    report(
        "fine-grained provenance (Trio)",
        dataset.truth.score_rows(&fine.rows().collect::<Vec<_>>()),
    );

    // Top-k influence (k = |ground truth|).
    let influence = rank_influence(table, &result, &suspicious, &metric).expect("influence");
    let topk = top_k_influence(&influence, truth.len());
    report(
        "top-k leave-one-out influence",
        dataset.truth.score_rows(&topk.rows().collect::<Vec<_>>()),
    );

    // Greedy responsibility (causality-style).
    let resp = greedy_responsibility(&influence);
    let responsible: Vec<RowId> =
        resp.iter().filter(|(_, r)| *r > 0.0).map(|(row, _)| *row).collect();
    report("greedy responsibility (causality)", dataset.truth.score_rows(&responsible));

    // Exhaustive single-attribute predicates.
    let single = single_attribute_predicates(
        table,
        &result,
        &suspicious,
        &[],
        &metric,
        &SingleAttributeConfig::default(),
    )
    .expect("single-attribute baseline");
    if let Some(best) = single.first() {
        let rows = best.predicate.matching_rows(table);
        report(
            &format!("best 1-attribute predicate ({})", best.predicate),
            dataset.truth.score_rows(&rows),
        );
    }

    // Full DBWipes pipeline.
    let request = ExplanationRequest::new(suspicious, vec![], metric);
    let explanation = db.explain(&result, &request).expect("explanation");
    let best = explanation.best().expect("predicate");
    let rows = best.predicate.matching_rows(table);
    report(
        &format!("DBWipes ranked predicate ({})", best.predicate),
        dataset.truth.score_rows(&rows),
    );
    println!(
        "\nDBWipes describes the error with {} condition(s) instead of a {}-row dump.",
        best.complexity,
        fine.len()
    );
}

fn report(name: &str, score: dbwipes::data::PredicateScore) {
    let display_name: String = name.chars().take(34).collect();
    println!(
        "{:<34} {:>9} {:>10.3} {:>8.3} {:>8.3}",
        display_name, score.matched, score.precision, score.recall, score.f1
    );
}

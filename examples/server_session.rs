//! Drives the `dbwipes-server` binary end to end over stdin/stdout: a
//! scripted Figure-1 session — query, brush S and D′, pick ε, debug twice
//! (watch the second one hit the shared registry), clean, undo — spoken in
//! the line-delimited JSON protocol a web frontend would use.
//!
//! ```sh
//! cargo build --release -p dbwipes-server   # build the server first
//! cargo run --example server_session
//! ```
//!
//! When the binary is not built yet, the same script runs in-process
//! against a [`dbwipes_server::SessionManager`] (identical dispatch code,
//! no pipes), so the example always works.

use dbwipes_server::SessionManager;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn script() -> Vec<String> {
    let q = "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS std_temp \
             FROM readings GROUP BY window ORDER BY window";
    vec![
        r#"{"cmd":"tables"}"#.to_string(),
        r#"{"cmd":"open_session"}"#.to_string(),
        format!(r#"{{"cmd":"run_query","session":1,"sql":"{q}"}}"#),
        r#"{"cmd":"plot","session":1,"x":"window","y":"std_temp"}"#.to_string(),
        r#"{"cmd":"brush_outputs","session":1,"x":"window","y":"std_temp","brush":{"y_min":8}}"#
            .to_string(),
        r#"{"cmd":"brush_inputs","session":1,"x":"sensorid","y":"temp","brush":{"y_min":100}}"#
            .to_string(),
        r#"{"cmd":"set_metric","session":1,"kind":"too_high","column":"std_temp","value":4}"#
            .to_string(),
        r#"{"cmd":"debug","session":1}"#.to_string(),
        r#"{"cmd":"debug","session":1}"#.to_string(),
        r#"{"cmd":"click_predicate","session":1,"index":0}"#.to_string(),
        r#"{"cmd":"undo","session":1}"#.to_string(),
        r#"{"cmd":"stats"}"#.to_string(),
        r#"{"cmd":"close_session","session":1}"#.to_string(),
    ]
}

/// The built server binary, if present next to this example's own profile
/// directory (`target/<profile>/dbwipes-server`).
fn server_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?; // target/<profile>/examples/server_session
    let profile_dir = exe.parent()?.parent()?;
    [profile_dir.join("dbwipes-server"), profile_dir.join("dbwipes-server.exe")]
        .into_iter()
        .find(|candidate| candidate.is_file())
}

fn preview(reply: &str) -> String {
    const LIMIT: usize = 160;
    if reply.chars().count() <= LIMIT {
        reply.to_string()
    } else {
        let cut: String = reply.chars().take(LIMIT).collect();
        format!("{cut}… ({} bytes)", reply.len())
    }
}

fn drive_binary(binary: &PathBuf) -> std::io::Result<()> {
    println!("driving {}\n", binary.display());
    let mut child = Command::new(binary)
        .args(["--readings", "5400"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()?;
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut replies = stdout.lines();
    for line in script() {
        writeln!(stdin, "{line}")?;
        stdin.flush()?;
        let reply = replies.next().expect("one reply per request")?;
        println!("→ {line}");
        println!("← {}\n", preview(&reply));
    }
    drop(stdin); // EOF ends the server loop.
    child.wait()?;
    Ok(())
}

fn drive_in_process() {
    println!("dbwipes-server binary not built; running the protocol in-process");
    println!("(build it with: cargo build --release -p dbwipes-server)\n");
    let data = dbwipes_data::generate_sensor(&dbwipes_data::SensorConfig {
        num_readings: 5_400,
        failing_sensors: vec![15],
        ..dbwipes_data::SensorConfig::small()
    });
    let mut catalog = dbwipes_storage::Catalog::new();
    catalog.register(data.table.clone()).expect("register demo table");
    let manager = SessionManager::new(catalog);
    for line in script() {
        let reply = manager.handle_line(&line);
        println!("→ {line}");
        println!("← {}\n", preview(&reply));
    }
}

fn main() {
    match server_binary() {
        Some(binary) => {
            if let Err(e) = drive_binary(&binary) {
                eprintln!("failed to drive the binary ({e}); falling back to in-process");
                drive_in_process();
            }
        }
        None => drive_in_process(),
    }
}

//! Offline, dependency-free stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate, implementing
//! the API subset the DBWipes benches use: [`Criterion`],
//! [`BenchmarkGroup`] (with `sample_size`, `measurement_time`,
//! `throughput`, `bench_function`, `bench_with_input`), [`BenchmarkId`],
//! [`Throughput`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Behaviour mirrors real criterion's two modes:
//!
//! * invoked **without** `--bench` (as `cargo test` does for bench
//!   targets), every benchmark body runs exactly once as a smoke test;
//! * invoked **with** `--bench` (as `cargo bench` does), each benchmark is
//!   timed over `sample_size` iterations after one warm-up, and the mean /
//!   min / max per-iteration wall time is printed.
//!
//! There are no plots, no statistics beyond the above, and no baselines —
//! this exists so the workspace builds and benches run in a container with
//! no network access; swapping back to real criterion is a one-line
//! `Cargo.toml` change.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` to the target binary; cargo test does
        // not. Smoke mode (run-once) keeps `cargo test -q` fast.
        let timed = std::env::args().any(|a| a == "--bench");
        Criterion { smoke_only: !timed }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 10 }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let smoke = self.smoke_only;
        run_one(id, 10, smoke, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; the shim times a fixed iteration count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim does not report throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.criterion.smoke_only, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, self.criterion.smoke_only, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F>(label: &str, sample_size: usize, smoke_only: bool, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher =
        Bencher { iterations: if smoke_only { 1 } else { sample_size }, samples: Vec::new() };
    f(&mut bencher);
    if smoke_only {
        println!("bench {label}: ok (smoke mode, 1 iteration)");
    } else if let Some(stats) = bencher.stats() {
        println!(
            "bench {label}: mean {:?} / min {:?} / max {:?} over {} iterations",
            stats.mean,
            stats.min,
            stats.max,
            bencher.samples.len(),
        );
    }
}

struct Stats {
    mean: Duration,
    min: Duration,
    max: Duration,
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly (once in smoke mode), recording wall time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up when actually measuring.
        if self.iterations > 1 {
            black_box(f());
        }
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn stats(&self) -> Option<Stats> {
        let n = u32::try_from(self.samples.len()).ok().filter(|&n| n > 0)?;
        let total: Duration = self.samples.iter().sum();
        Some(Stats {
            mean: total / n,
            min: *self.samples.iter().min()?,
            max: *self.samples.iter().max()?,
        })
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id that is just the parameter, for single-function groups.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Things usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Units for [`BenchmarkGroup::throughput`] (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a bench group function calling each target with a [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Offline, dependency-free stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate, implementing the
//! API subset the DBWipes property tests use: the [`strategy::Strategy`]
//! trait with
//! `prop_map`, range / tuple / `Just` / `any::<bool>()` strategies,
//! [`collection::vec`], [`option::of`], `prop_oneof!`, `ProptestConfig`
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Semantics: each `proptest!` test body runs for `ProptestConfig::cases`
//! deterministic random cases (seeded from the test's name, so failures
//! reproduce). Unlike real proptest there is **no shrinking** — a failing
//! case panics with the ordinary assertion message. The container this
//! workspace builds in has no network access, so the real crate cannot be
//! vendored; this shim keeps the test sources compatible so the swap back
//! is a one-line `Cargo.toml` change.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors with lengths in `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies ([`option::of`]).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Option<T>` values (about half `Some`).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` or `Some(v)` with `v` drawn from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Runs `proptest!`-style property tests: optional
/// `#![proptest_config(..)]` header, then `#[test]` functions whose
/// arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("proptest case {case} failed: {message}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// `assert!` that reports through the surrounding `proptest!` runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the surrounding `proptest!` runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err(::std::format!("assertion failed: `{:?}` == `{:?}`", left, right));
        }
    }};
}

/// Picks one of several same-valued strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(options.push(::std::boxed::Box::new($strat));)+
        $crate::strategy::OneOf::new(options)
    }};
}

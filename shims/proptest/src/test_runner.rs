//! The deterministic per-test RNG and the run configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block (subset of the real crate's
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest also defaults to 256 cases.
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies, seeded deterministically from the test
/// name so every run (and every CI run) explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// The underlying generator (used directly by strategy impls).
    pub rng: StdRng,
}

impl TestRng {
    /// Builds the RNG for the named test (FNV-1a hash of the name as seed).
    pub fn deterministic(test_name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { rng: StdRng::seed_from_u64(hash) }
    }
}

//! The [`Strategy`] trait and the primitive strategies: ranges, tuples,
//! [`Just`], [`any`], [`Map`] (via [`Strategy::prop_map`]) and [`OneOf`]
//! (via `prop_oneof!`).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Object-safe: `prop_map` is `Self: Sized`, so `Box<dyn Strategy<Value = T>>`
/// works (that is what `prop_oneof!` builds).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (the subset of real
/// proptest's `Arbitrary` we need).
pub trait ArbitraryValue: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen_bool(0.5)
    }
}

impl ArbitraryValue for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen::<i64>()
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen::<u64>()
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen::<f64>()
    }
}

/// Strategy over a type's full domain; see [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Mirrors `proptest::prelude::any::<T>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds the union. Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate(rng)
    }
}

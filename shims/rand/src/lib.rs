//! Offline, dependency-free stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing exactly the API subset the DBWipes workspace uses:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] over integer and
//!   float ranges (half-open and inclusive),
//! * [`seq::SliceRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast and statistically solid for synthetic-dataset generation (it is not
//! cryptographic, and neither is `StdRng`'s use here). The container this
//! workspace builds in has no network access, so the real crates.io `rand`
//! cannot be vendored; this shim keeps every call site source-compatible so
//! the swap back is a one-line `Cargo.toml` change.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the subset of the real crate's `Standard` distribution we need).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Types that can be sampled uniformly from a bounded range.
///
/// Like the real crate, [`SampleRange`] has exactly one generic impl per
/// range shape over this trait — that uniqueness is what lets inference
/// resolve `rng.gen_range(-2..=2)` against surrounding integer types.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)` (`inclusive == false`) or
    /// `[low, high]` (`inclusive == true`). Panics if the range is empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges a value can be drawn uniformly from — implemented for half-open
/// and inclusive ranges of any [`SampleUniform`] type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Draws uniformly from `[0, span)` without modulo bias (Lemire's
/// multiply-shift; the residual bias is < span·2⁻⁶⁴, irrelevant here).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "cannot sample from empty range");
                    let span = (high as i128 - low as i128 + 1) as u64;
                    // span == 0 means the full 64-bit domain: use raw bits.
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (low as i128 + below(rng, span) as i128) as $t
                } else {
                    assert!(low < high, "cannot sample from empty range");
                    let span = (high as i128 - low as i128) as u64;
                    (low as i128 + below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        if inclusive {
            assert!(low <= high, "cannot sample from empty range");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
            low + unit * (high - low)
        } else {
            assert!(low < high, "cannot sample from empty range");
            low + f64::sample(rng) * (high - low)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_uniform(rng, f64::from(low), f64::from(high), inclusive) as f32
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 like the reference implementation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type of the sequence.
        type Item;

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(10.0..500.0);
            assert!((10.0..500.0).contains(&f));
            let g: f64 = rng.gen_range(-1.5..=1.5);
            assert!((-1.5..=1.5).contains(&g));
        }
    }

    #[test]
    fn unit_float_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = items.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

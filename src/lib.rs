//! # dbwipes
//!
//! An open-source Rust reproduction of **DBWipes: Clean as You Query**
//! (Wu, Madden, Stonebraker — VLDB 2012 demo): an end-to-end system that
//! lets an analyst run aggregate SQL queries, select suspicious results,
//! and receive a *ranked list of human-readable predicates* describing the
//! input tuples that caused the anomaly — which can then be clicked to
//! clean the query.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`storage`] — columnar tables, typed values, predicate expressions.
//! * [`provenance`] — fine-grained lineage and coarse operator graphs.
//! * [`engine`] — the SQL-subset aggregate query engine with lineage capture.
//! * [`learn`] — decision trees, CN2-SD subgroup discovery, k-means, naive Bayes.
//! * [`core`] — the Ranked Provenance System (Preprocessor, Dataset
//!   Enumerator, Predicate Enumerator, Predicate Ranker, cleaner, baselines).
//! * [`data`] — synthetic FEC / Intel-sensor / corruption datasets with
//!   ground truth.
//! * [`dashboard`] — the headless interactive session (scatterplots,
//!   brushing, error forms, clickable ranked predicates).
//!
//! The most convenient entry points are re-exported at the top level:
//! [`DbWipes`], [`DashboardSession`], [`ErrorMetric`], and
//! [`ExplanationRequest`]. See `examples/` for runnable walkthroughs of the
//! paper's FEC and Intel-sensor scenarios.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use dbwipes_core as core;
pub use dbwipes_dashboard as dashboard;
pub use dbwipes_data as data;
pub use dbwipes_engine as engine;
pub use dbwipes_learn as learn;
pub use dbwipes_provenance as provenance;
pub use dbwipes_storage as storage;

pub use dbwipes_core::{
    rank_predicates_sharded, CleaningSession, DbWipes, ErrorMetric, ExplainConfig, Explanation,
    ExplanationRequest, RankedPredicate,
};
pub use dbwipes_dashboard::{Brush, DashboardSession};
pub use dbwipes_engine::{execute_sql, parse_select, QueryResult, ShardedAggregateCache};
pub use dbwipes_storage::{
    Catalog, Condition, ConjunctivePredicate, RowId, ShardedTable, Table, Value,
};

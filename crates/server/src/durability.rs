//! Durable storage behind the service: snapshot-on-register, flush-on-
//! shutdown, restore-on-startup, and warm-cache rehydration.
//!
//! A [`StorageRuntime`] wraps the storage crate's [`FsBackend`] with the
//! service-level policy and counters the `stats` command reports:
//!
//! * **Table snapshots are written eagerly** — `register` persists the
//!   table before the reply is sent, so a kill at any later point still
//!   recovers to the registered data. Saves are version-gated: flushing a
//!   table whose exact (id, version) is already in the manifest is a
//!   no-op, which makes the shutdown flush idempotent and cheap.
//! * **Warm state is written opportunistically** — at flush time the
//!   [`CacheRegistry`]'s finished aggregate caches and the process's
//!   donated condition bitmaps are serialized into per-table sidecars.
//!   Sidecars are best-effort by design: they only accelerate recovery,
//!   so a corrupt or missing sidecar degrades to a cold rebuild, never to
//!   an error.
//! * **Restore inverts both steps** — the manifest rebuilds the
//!   [`Catalog`] with every table's persisted identity stamps, then the
//!   sidecars reseed the registry ([`CacheRegistry::insert_prebuilt`])
//!   and the warm bitmap store, so the first explain after a restart hits
//!   the same tiers a long-running server would.
//!
//! The decode path trusts nothing: every snapshot and sidecar is
//! checksummed by the storage layer, and a cache image is only installed
//! when its stamped table identity matches the restored table exactly.

use crate::registry::CacheRegistry;
use dbwipes_engine::{decode_cache, encode_cache, GroupedAggregateCache};
use dbwipes_storage::persist::{ByteReader, ByteWriter};
use dbwipes_storage::{
    export_warm_bitmaps, seed_warm_bitmaps, Catalog, FsBackend, StorageBackend, StorageError, Table,
};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sidecar kind holding a table's serialized aggregate caches.
const AGGS_KIND: &str = "aggs";
/// Sidecar kind holding a table's donated condition bitmaps.
const BITS_KIND: &str = "bits";

/// The service's handle on durable storage: a filesystem backend plus the
/// counters surfaced by the `stats` command. See the module docs for the
/// save/restore policy.
#[derive(Debug)]
pub struct StorageRuntime {
    backend: FsBackend,
    snapshot_saves: AtomicU64,
    snapshot_loads: AtomicU64,
    rehydrated_caches: AtomicU64,
}

/// Point-in-time reading of the runtime's counters, as reported by the
/// `stats` command's `storage` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageCounters {
    /// Table snapshots written (version-gated: unchanged tables skip).
    pub snapshot_saves: u64,
    /// Table snapshots loaded during catalog restore.
    pub snapshot_loads: u64,
    /// Bytes the data directory currently occupies.
    pub bytes_on_disk: u64,
    /// Warm entries reloaded instead of recomputed: registry aggregate
    /// caches plus donated condition bitmaps.
    pub rehydrated_caches: u64,
}

impl StorageRuntime {
    /// Opens (creating if needed) the data directory at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Ok(StorageRuntime {
            backend: FsBackend::open(dir.as_ref())?,
            snapshot_saves: AtomicU64::new(0),
            snapshot_loads: AtomicU64::new(0),
            rehydrated_caches: AtomicU64::new(0),
        })
    }

    /// True when the manifest lists no tables — a fresh data directory
    /// that should be seeded rather than restored.
    pub fn is_empty(&self) -> Result<bool, StorageError> {
        Ok(self.backend.list_manifest()?.entries.is_empty())
    }

    /// Rebuilds the full catalog from the manifest. Every restored table
    /// keeps its persisted identity and version stamps, so cache
    /// fingerprints minted before the restart still match.
    pub fn restore_catalog(&self) -> Result<Catalog, StorageError> {
        let manifest = self.backend.list_manifest()?;
        let mut catalog = Catalog::new();
        for entry in &manifest.entries {
            let table = self.backend.load_table(entry.table_id)?;
            self.snapshot_loads.fetch_add(1, Ordering::Relaxed);
            catalog.register_or_replace(table);
        }
        Ok(catalog)
    }

    /// Persists `table` unless its exact (id, version) is already durable.
    /// Re-registration under the same name gets a fresh table id, so any
    /// manifest entry holding the *name* under an older id is evicted —
    /// otherwise dead snapshots would accumulate and be restored as
    /// duplicate tables.
    pub fn save_table(&self, table: &Table) -> Result<bool, StorageError> {
        let manifest = self.backend.list_manifest()?;
        let lower = table.name().to_ascii_lowercase();
        for entry in &manifest.entries {
            if entry.table_id != table.id() && entry.name.to_ascii_lowercase() == lower {
                self.backend.evict(entry.table_id)?;
            }
        }
        if let Some(entry) = manifest.entry(table.id()) {
            if entry.epoch == table.epoch() {
                return Ok(false);
            }
        }
        self.backend.save_table(table)?;
        self.snapshot_saves.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Serializes `table`'s warm state into its sidecars: the registry's
    /// finished aggregate caches built over exactly this table data, and
    /// the process's donated condition bitmaps. Empty state writes
    /// nothing.
    pub fn save_warm_state(
        &self,
        table: &Arc<Table>,
        caches: &[Arc<GroupedAggregateCache<'static>>],
    ) -> Result<(), StorageError> {
        let matching: Vec<&Arc<GroupedAggregateCache<'static>>> = caches
            .iter()
            .filter(|c| c.table().id() == table.id() && c.table().version() == table.version())
            .collect();
        if !matching.is_empty() {
            let mut w = ByteWriter::new();
            w.put_u64(matching.len() as u64);
            for cache in &matching {
                let image = encode_cache(cache);
                w.put_u64(image.len() as u64);
                w.put_bytes(&image);
            }
            self.backend.save_sidecar(table.id(), table.version(), AGGS_KIND, w.bytes())?;
        }
        let bitmaps = export_warm_bitmaps(table.id(), table.version());
        if !bitmaps.is_empty() {
            let encoded = dbwipes_storage::persist::encode_warm_bitmaps(&bitmaps);
            self.backend.save_sidecar(table.id(), table.version(), BITS_KIND, &encoded)?;
        }
        Ok(())
    }

    /// Reloads `table`'s warm state: aggregate caches are decoded and
    /// published to `registry` ([`CacheRegistry::insert_prebuilt`]),
    /// donated bitmaps reseed the process-wide warm store. Returns how
    /// many entries of each kind were rehydrated. Best-effort: a missing,
    /// corrupt, or mismatched sidecar contributes zero entries rather
    /// than failing the restore.
    pub fn load_warm_state(&self, table: &Arc<Table>, registry: &CacheRegistry) -> (usize, usize) {
        let mut caches = 0usize;
        if let Ok(Some(bytes)) = self.backend.load_sidecar(table.id(), table.version(), AGGS_KIND) {
            let mut r = ByteReader::new(&bytes);
            if let Ok(count) = r.get_len(8) {
                for _ in 0..count {
                    let Ok(len) = r.get_len(1) else { break };
                    let Ok(image) = r.take(len) else { break };
                    let Ok(cache) = decode_cache(image, Arc::clone(table)) else { continue };
                    if registry.insert_prebuilt(cache.fingerprint(), Arc::new(cache)) {
                        caches += 1;
                    }
                }
            }
        }
        let mut bitmaps = 0usize;
        if let Ok(Some(bytes)) = self.backend.load_sidecar(table.id(), table.version(), BITS_KIND) {
            if let Ok(entries) = dbwipes_storage::persist::decode_warm_bitmaps(&bytes) {
                bitmaps = seed_warm_bitmaps(table.id(), table.version(), entries);
            }
        }
        self.rehydrated_caches.fetch_add((caches + bitmaps) as u64, Ordering::Relaxed);
        (caches, bitmaps)
    }

    /// The counters the `stats` command reports. `bytes_on_disk` is read
    /// live from the data directory (0 if it cannot be listed).
    pub fn counters(&self) -> StorageCounters {
        StorageCounters {
            snapshot_saves: self.snapshot_saves.load(Ordering::Relaxed),
            snapshot_loads: self.snapshot_loads.load(Ordering::Relaxed),
            bytes_on_disk: self.backend.bytes_on_disk().unwrap_or(0),
            rehydrated_caches: self.rehydrated_caches.load(Ordering::Relaxed),
        }
    }

    /// The underlying backend (tests inspect the manifest through it).
    pub fn backend(&self) -> &FsBackend {
        &self.backend
    }
}

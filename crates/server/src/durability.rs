//! Durable storage behind the service: snapshot-on-register, flush-on-
//! shutdown, restore-on-startup, warm-cache rehydration, and the fault
//! policy that keeps the service answering when the disk does not.
//!
//! A [`StorageRuntime`] wraps a pluggable [`StorageBackend`] (the
//! filesystem [`FsBackend`] in production, a
//! [`FaultInjectingBackend`]
//! under chaos tests via `DBWIPES_FAULT_PLAN`) with the service-level
//! policy and counters the `stats` command reports:
//!
//! * **Table snapshots are written eagerly** — `register` persists the
//!   table before the reply is sent, so a kill at any later point still
//!   recovers to the registered data. Saves are version-gated: flushing a
//!   table whose exact (id, version) is already in the manifest is a
//!   no-op, which makes the shutdown flush idempotent and cheap.
//! * **Writes retry with capped exponential backoff** — a failed snapshot
//!   write is retried up to `DBWIPES_STORAGE_RETRIES` times (default 3),
//!   sleeping `DBWIPES_STORAGE_BACKOFF_MS` (default 10) doubled per
//!   attempt and capped at 1 s, but only when
//!   [`StorageError::is_transient`] says a retry could help: a full disk
//!   or a corrupt snapshot fails fast.
//! * **Exhausted retries degrade, they never kill** — the runtime flips
//!   into *degraded* mode: queries, brushes and explains keep serving
//!   bit-identically from memory, `stream_append` keeps absorbing
//!   in-memory (flagging `durable:false` in its reply), and the `stats`
//!   `health` block reports the degradation. The next snapshot write that
//!   actually succeeds self-heals the runtime back to healthy.
//! * **Warm state is written opportunistically** — at flush time the
//!   [`CacheRegistry`]'s finished aggregate caches and the process's
//!   donated condition bitmaps are serialized into per-table sidecars.
//!   Sidecars are best-effort by design: they retry like snapshots but
//!   never enter health accounting, because a lost sidecar degrades to a
//!   cold rebuild, never to an error.
//! * **Restore inverts both steps** — the manifest rebuilds the
//!   [`Catalog`] with every table's persisted identity stamps, then the
//!   sidecars reseed the registry ([`CacheRegistry::insert_prebuilt`])
//!   and the warm bitmap store, so the first explain after a restart hits
//!   the same tiers a long-running server would.
//!
//! The decode path trusts nothing: every snapshot and sidecar is
//! checksummed by the storage layer, and a cache image is only installed
//! when its stamped table identity matches the restored table exactly.

use crate::registry::CacheRegistry;
use dbwipes_engine::{decode_cache, encode_cache, GroupedAggregateCache};
use dbwipes_storage::persist::{ByteReader, ByteWriter};
use dbwipes_storage::{
    export_warm_bitmaps, seed_warm_bitmaps, Catalog, FaultInjectingBackend, FaultPlan, FsBackend,
    StorageBackend, StorageError, Table,
};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sidecar kind holding a table's serialized aggregate caches.
const AGGS_KIND: &str = "aggs";
/// Sidecar kind holding a table's donated condition bitmaps.
const BITS_KIND: &str = "bits";

/// Hard ceiling on a single backoff sleep, whatever the knobs say.
const MAX_BACKOFF: Duration = Duration::from_secs(1);

/// Transient-fault retries per write: `DBWIPES_STORAGE_RETRIES` (default
/// 3), read per write so tests and operators can adjust a live process.
fn storage_retries() -> u32 {
    std::env::var("DBWIPES_STORAGE_RETRIES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .unwrap_or(3)
        .min(16)
}

/// Base backoff in milliseconds: `DBWIPES_STORAGE_BACKOFF_MS` (default
/// 10), doubled per retry and capped at [`MAX_BACKOFF`].
fn storage_backoff_ms() -> u64 {
    std::env::var("DBWIPES_STORAGE_BACKOFF_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(10)
}

/// The service's handle on durable storage: a pluggable backend plus the
/// retry/degradation policy and the counters surfaced by the `stats`
/// command. See the module docs for the save/restore/fault policy.
#[derive(Debug)]
pub struct StorageRuntime {
    backend: Box<dyn StorageBackend>,
    snapshot_saves: AtomicU64,
    snapshot_loads: AtomicU64,
    rehydrated_caches: AtomicU64,
    /// True while persistence is known broken; queries keep serving.
    degraded: AtomicBool,
    /// Failed snapshot writes since the last success (resets on heal).
    consecutive_failures: AtomicU64,
    /// Monotonic count of retry attempts (not first tries).
    retries: AtomicU64,
    /// Monotonic count of healthy→degraded transitions.
    degraded_entries: AtomicU64,
    /// The error that caused the most recent failure, until healed.
    last_persist_error: Mutex<Option<String>>,
}

/// Point-in-time reading of the runtime's counters, as reported by the
/// `stats` command's `storage` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageCounters {
    /// Table snapshots written (version-gated: unchanged tables skip).
    pub snapshot_saves: u64,
    /// Table snapshots loaded during catalog restore.
    pub snapshot_loads: u64,
    /// Bytes the data directory currently occupies.
    pub bytes_on_disk: u64,
    /// Warm entries reloaded instead of recomputed: registry aggregate
    /// caches plus donated condition bitmaps.
    pub rehydrated_caches: u64,
}

/// Point-in-time reading of the runtime's fault state, as reported by the
/// `stats` command's `health` block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StorageHealth {
    /// True while persistence is broken; the service still answers every
    /// query from memory and `stream_append` flags `durable:false`.
    pub degraded: bool,
    /// The failure that caused the current/most recent degradation;
    /// cleared when a later write self-heals the runtime.
    pub last_persist_error: Option<String>,
    /// Monotonic count of retry attempts across all writes.
    pub retries: u64,
    /// Failed snapshot writes since the last successful one.
    pub consecutive_failures: u64,
    /// Monotonic count of healthy→degraded transitions (a self-healed
    /// runtime keeps its history).
    pub degraded_entries: u64,
}

impl StorageRuntime {
    /// Opens (creating if needed) the data directory at `dir`. When the
    /// `DBWIPES_FAULT_PLAN` environment variable is a non-empty
    /// [`FaultPlan`] spec, the filesystem backend is wrapped in a
    /// [`FaultInjectingBackend`] — the chaos-test entry point.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let dir = dir.as_ref();
        let fs = FsBackend::open(dir)?;
        let backend: Box<dyn StorageBackend> = match std::env::var("DBWIPES_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => {
                let plan = FaultPlan::parse(&spec)?;
                Box::new(FaultInjectingBackend::with_torn_dir(Box::new(fs), plan, dir))
            }
            _ => Box::new(fs),
        };
        Ok(Self::with_backend(backend))
    }

    /// Builds a runtime over an arbitrary backend — the seam chaos tests
    /// use to inject scripted faults without touching the environment.
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Self {
        StorageRuntime {
            backend,
            snapshot_saves: AtomicU64::new(0),
            snapshot_loads: AtomicU64::new(0),
            rehydrated_caches: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            consecutive_failures: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            degraded_entries: AtomicU64::new(0),
            last_persist_error: Mutex::new(None),
        }
    }

    /// True when the manifest lists no tables — a fresh data directory
    /// that should be seeded rather than restored.
    pub fn is_empty(&self) -> Result<bool, StorageError> {
        Ok(self.backend.list_manifest()?.entries.is_empty())
    }

    /// Rebuilds the full catalog from the manifest. Every restored table
    /// keeps its persisted identity and version stamps, so cache
    /// fingerprints minted before the restart still match.
    pub fn restore_catalog(&self) -> Result<Catalog, StorageError> {
        let manifest = self.backend.list_manifest()?;
        let mut catalog = Catalog::new();
        for entry in &manifest.entries {
            let table = self.backend.load_table(entry.table_id)?;
            self.snapshot_loads.fetch_add(1, Ordering::Relaxed);
            catalog.register_or_replace(table);
        }
        Ok(catalog)
    }

    /// Runs one write, retrying transient failures with capped
    /// exponential backoff. Permanent errors (ENOSPC, corruption,
    /// logical) fail fast — sleeping cannot fix them.
    fn write_with_retries<T>(
        &self,
        mut op: impl FnMut() -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let budget = storage_retries();
        let base_ms = storage_backoff_ms();
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) if e.is_transient() && attempt < budget => {
                    let backoff =
                        Duration::from_millis(base_ms.saturating_mul(1u64 << attempt.min(20)))
                            .min(MAX_BACKOFF);
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    std::thread::sleep(backoff);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// A snapshot write failed even after retries: record the error and
    /// flip into degraded mode (counting the transition once per
    /// healthy→degraded edge).
    fn record_persist_failure(&self, error: &StorageError) {
        self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
        *self.last_persist_error.lock().unwrap_or_else(|p| p.into_inner()) =
            Some(error.to_string());
        if !self.degraded.swap(true, Ordering::Relaxed) {
            self.degraded_entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A snapshot write actually reached the backend: self-heal.
    fn record_persist_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.degraded.store(false, Ordering::Relaxed);
        *self.last_persist_error.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// Persists `table` unless its exact (id, version) is already durable.
    /// Re-registration under the same name gets a fresh table id, so any
    /// manifest entry holding the *name* under an older id is evicted —
    /// otherwise dead snapshots would accumulate and be restored as
    /// duplicate tables.
    ///
    /// Writes retry per the module policy; an exhausted write returns the
    /// error *and* flips the runtime into degraded mode, while a write
    /// that reaches the backend (`Ok(true)`) self-heals it. The
    /// version-gated no-op (`Ok(false)`) proves nothing about the disk
    /// and touches health state in neither direction.
    pub fn save_table(&self, table: &Table) -> Result<bool, StorageError> {
        let manifest = self.backend.list_manifest()?;
        let lower = table.name().to_ascii_lowercase();
        for entry in &manifest.entries {
            if entry.table_id != table.id() && entry.name.to_ascii_lowercase() == lower {
                self.backend.evict(entry.table_id)?;
            }
        }
        if let Some(entry) = manifest.entry(table.id()) {
            if entry.epoch == table.epoch() {
                return Ok(false);
            }
        }
        match self.write_with_retries(|| self.backend.save_table(table)) {
            Ok(_) => {
                self.snapshot_saves.fetch_add(1, Ordering::Relaxed);
                self.record_persist_success();
                Ok(true)
            }
            Err(e) => {
                self.record_persist_failure(&e);
                Err(e)
            }
        }
    }

    /// Serializes `table`'s warm state into its sidecars: the registry's
    /// finished aggregate caches built over exactly this table data, and
    /// the process's donated condition bitmaps. Empty state writes
    /// nothing. Sidecar writes retry like snapshots but stay out of
    /// health accounting — they are best-effort accelerators.
    pub fn save_warm_state(
        &self,
        table: &Arc<Table>,
        caches: &[Arc<GroupedAggregateCache<'static>>],
    ) -> Result<(), StorageError> {
        let matching: Vec<&Arc<GroupedAggregateCache<'static>>> = caches
            .iter()
            .filter(|c| c.table().id() == table.id() && c.table().version() == table.version())
            .collect();
        if !matching.is_empty() {
            let mut w = ByteWriter::new();
            w.put_u64(matching.len() as u64);
            for cache in &matching {
                let image = encode_cache(cache);
                w.put_u64(image.len() as u64);
                w.put_bytes(&image);
            }
            self.write_with_retries(|| {
                self.backend.save_sidecar(table.id(), table.version(), AGGS_KIND, w.bytes())
            })?;
        }
        let bitmaps = export_warm_bitmaps(table.id(), table.version());
        if !bitmaps.is_empty() {
            let encoded = dbwipes_storage::persist::encode_warm_bitmaps(&bitmaps);
            self.write_with_retries(|| {
                self.backend.save_sidecar(table.id(), table.version(), BITS_KIND, &encoded)
            })?;
        }
        Ok(())
    }

    /// Reloads `table`'s warm state: aggregate caches are decoded and
    /// published to `registry` ([`CacheRegistry::insert_prebuilt`]),
    /// donated bitmaps reseed the process-wide warm store. Returns how
    /// many entries of each kind were rehydrated. Best-effort: a missing,
    /// corrupt, or mismatched sidecar contributes zero entries rather
    /// than failing the restore.
    pub fn load_warm_state(&self, table: &Arc<Table>, registry: &CacheRegistry) -> (usize, usize) {
        let mut caches = 0usize;
        if let Ok(Some(bytes)) = self.backend.load_sidecar(table.id(), table.version(), AGGS_KIND) {
            let mut r = ByteReader::new(&bytes);
            if let Ok(count) = r.get_len(8) {
                for _ in 0..count {
                    let Ok(len) = r.get_len(1) else { break };
                    let Ok(image) = r.take(len) else { break };
                    let Ok(cache) = decode_cache(image, Arc::clone(table)) else { continue };
                    if registry.insert_prebuilt(cache.fingerprint(), Arc::new(cache)) {
                        caches += 1;
                    }
                }
            }
        }
        let mut bitmaps = 0usize;
        if let Ok(Some(bytes)) = self.backend.load_sidecar(table.id(), table.version(), BITS_KIND) {
            if let Ok(entries) = dbwipes_storage::persist::decode_warm_bitmaps(&bytes) {
                bitmaps = seed_warm_bitmaps(table.id(), table.version(), entries);
            }
        }
        self.rehydrated_caches.fetch_add((caches + bitmaps) as u64, Ordering::Relaxed);
        (caches, bitmaps)
    }

    /// The counters the `stats` command reports. `bytes_on_disk` is read
    /// live from the data directory (0 if it cannot be listed).
    pub fn counters(&self) -> StorageCounters {
        StorageCounters {
            snapshot_saves: self.snapshot_saves.load(Ordering::Relaxed),
            snapshot_loads: self.snapshot_loads.load(Ordering::Relaxed),
            bytes_on_disk: self.backend.bytes_on_disk().unwrap_or(0),
            rehydrated_caches: self.rehydrated_caches.load(Ordering::Relaxed),
        }
    }

    /// The fault state the `stats` command's `health` block reports.
    pub fn health(&self) -> StorageHealth {
        StorageHealth {
            degraded: self.degraded.load(Ordering::Relaxed),
            last_persist_error: self
                .last_persist_error
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone(),
            retries: self.retries.load(Ordering::Relaxed),
            consecutive_failures: self.consecutive_failures.load(Ordering::Relaxed),
            degraded_entries: self.degraded_entries.load(Ordering::Relaxed),
        }
    }

    /// True while persistence is broken (see [`StorageHealth`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The underlying backend (tests inspect the manifest through it).
    pub fn backend(&self) -> &dyn StorageBackend {
        self.backend.as_ref()
    }
}

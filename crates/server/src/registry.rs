//! The cross-brush aggregate-cache registry.
//!
//! DBWipes' interaction loop re-asks the same question constantly: every
//! `debug!` click, every re-brush after an undo, and every session looking
//! at the demo dataset runs the ranked-provenance pipeline over the *same*
//! statement. Before this registry existed, each of those calls rebuilt a
//! [`GroupedAggregateCache`] — a full statement execution — from scratch.
//!
//! [`CacheRegistry`] keeps built caches alive, keyed by
//! [`CacheFingerprint`] (canonical statement SQL + table identity + table
//! data version). The fingerprint keys make staleness structurally
//! impossible rather than policed: any table mutation re-stamps
//! [`Table::version`](dbwipes_storage::Table::version), so a stale cache
//! is simply never *found* — it ages out of the LRU instead. Explicit
//! [`CacheRegistry::invalidate_table`] additionally drops every entry of a
//! named table eagerly (used when a table is re-registered, where waiting
//! for LRU eviction would pin dead snapshots in memory).
//!
//! Builds are coordinated per fingerprint: when several sessions race to
//! the same missing entry, one builds while the others wait on it and then
//! share the result, so a statement is never executed twice concurrently
//! and the hit/miss counters stay deterministic. Builds of *different*
//! fingerprints never wait on each other (the registry lock is not held
//! while building).
//!
//! ## The explanation tier
//!
//! Profiling the service showed the aggregate-cache build is only a small
//! slice of a `debug!` — the ranked-provenance pipeline (influence,
//! subgroup discovery, tree training, candidate scoring) dominates. So the
//! registry keeps a second, request-level tier: finished
//! [`Explanation`]s keyed by [`ExplainKey`] — the statement fingerprint
//! *plus* the user's exact S, D′ and ε. A repeated `debug!` with an
//! unchanged request replays the memoized answer without running the
//! pipeline at all; a changed brush misses this tier but still reuses the
//! statement-level aggregate cache below it. Like the cache tier, the
//! fingerprint inside every key pins the table data version, so no
//! mutation can ever replay a stale answer.
//!
//! ## The partition tier
//!
//! Sharded explains (`shards >= 2`) need a [`ShardedTable`] — a full
//! row-copied hash partition of the input. Rebuilding it per explain is
//! pure waste: the partition depends only on the exact table data and the
//! partition parameters, both of which repeat across brushes. The registry
//! therefore implements [`ShardPartitioner`] with a third tier keyed by
//! table identity/version + (column, shard count); the explain pipeline
//! asks the registry instead of hashing every row again. Like the other
//! tiers, version-stamped keys make staleness unfindable by construction.
//!
//! The registry is shared by every session of a
//! [`SessionManager`](crate::SessionManager): two analysts debugging the
//! same dashboard pay for one cache build — and one pipeline run, if they
//! brushed the same selection — between them.

use dbwipes_core::{CoreError, Explanation, ExplanationRequest, ShardPartitioner};
use dbwipes_engine::{CacheFingerprint, EngineError, GroupedAggregateCache};
use dbwipes_storage::{RowId, ShardedTable, Table, TableEpoch};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Recovers the registry guard even when a previous holder panicked mid-
/// operation. Every mutation under this lock is a single-step map insert,
/// remove, or counter bump — there is no multi-step invariant a panic can
/// leave half-applied (builds run *outside* the lock behind
/// [`ReservationGuard`]), so recovering serves where poisoning would take
/// down every cache-backed command with it.
fn lock_recover<'a, T>(lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
    lock.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Identifies one exact `debug!` request: the statement over the exact
/// table data ([`CacheFingerprint`]) plus everything else an
/// [`ExplanationRequest`] carries — the user's selections, ε, *and* the
/// pipeline configuration. Two equal keys ask the backend the identical
/// question, so the answer can be replayed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ExplainKey {
    fingerprint: CacheFingerprint,
    suspicious_outputs: Vec<usize>,
    suspicious_inputs: Vec<RowId>,
    /// Debug rendering of ε (f64s render with round-trip precision, so
    /// distinct thresholds never collide).
    metric: String,
    /// Debug rendering of the pipeline configuration, so an explain run
    /// under custom ranker weights or exclusions never answers for the
    /// standard configuration (or vice versa).
    config: String,
}

impl ExplainKey {
    /// Builds the key of a request over the fingerprinted statement.
    pub fn new(fingerprint: CacheFingerprint, request: &ExplanationRequest) -> Self {
        ExplainKey {
            fingerprint,
            suspicious_outputs: request.suspicious_outputs.clone(),
            suspicious_inputs: request.suspicious_inputs.clone(),
            metric: format!("{:?}", request.metric),
            config: format!("{:?}", request.config),
        }
    }
}

/// A shared, thread-safe, LRU-evicting map from statement fingerprints to
/// live aggregate caches. See the module docs for the design.
#[derive(Debug)]
pub struct CacheRegistry {
    capacity: usize,
    inner: Mutex<Inner>,
    /// Signalled whenever an in-flight build resolves (successfully or not).
    build_done: Condvar,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<CacheFingerprint, Slot>,
    explanations: HashMap<ExplainKey, ExplanationEntry>,
    partitions: HashMap<PartitionKey, PartitionEntry>,
    /// Monotonic access clock backing the tiers' LRU order.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    append_absorbs: u64,
    explanation_hits: u64,
    explanation_misses: u64,
    explanation_evictions: u64,
    partition_hits: u64,
    partition_misses: u64,
    partition_evictions: u64,
    partition_absorbs: u64,
}

/// Identifies one retained [`ShardedTable`]: the exact table data (id +
/// full epoch, so a mutated table can never be served a stale partition)
/// plus the partition parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PartitionKey {
    /// Lowercased, for [`CacheRegistry::invalidate_table`].
    table_name: String,
    table_id: u64,
    epoch: TableEpoch,
    /// Lowercased, like the schema's column resolution.
    column: String,
    shards: usize,
}

impl PartitionKey {
    /// True when `self` keys the same partition parameters as `other` over
    /// an append-related state of the same table — the tier-3 analogue of
    /// [`CacheFingerprint::append_variant_of`].
    fn append_variant_of(&self, other: &PartitionKey) -> bool {
        self.table_id == other.table_id
            && self.epoch.structural == other.epoch.structural
            && self.table_name == other.table_name
            && self.column == other.column
            && self.shards == other.shards
    }
}

#[derive(Debug)]
struct PartitionEntry {
    partition: Arc<ShardedTable>,
    last_used: u64,
}

#[derive(Debug)]
struct ExplanationEntry {
    explanation: Arc<Explanation>,
    last_used: u64,
}

/// A registry slot: a finished cache, or a reservation by the thread
/// currently building one for this fingerprint.
#[derive(Debug)]
enum Slot {
    Building,
    Ready { cache: Arc<GroupedAggregateCache<'static>>, last_used: u64 },
}

impl Inner {
    fn ready_len(&self) -> usize {
        self.entries.values().filter(|s| matches!(s, Slot::Ready { .. })).count()
    }
}

/// A snapshot of the registry's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Aggregate-cache lookups answered from a live cache (including
    /// lookups that waited for another session's in-flight build and then
    /// shared it).
    pub hits: u64,
    /// Aggregate-cache lookups that had to build (one per actual statement
    /// execution).
    pub misses: u64,
    /// Aggregate-cache entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries (either tier) dropped by
    /// [`CacheRegistry::invalidate_table`] or [`CacheRegistry::clear`].
    pub invalidations: u64,
    /// Aggregate-cache lookups served by fast-forwarding an append-variant
    /// sibling through [`GroupedAggregateCache::absorb_append`] instead of
    /// rebuilding — neither a hit nor a miss: no statement was executed,
    /// but the answer was not served verbatim either. Streamed appends
    /// should move *this* counter, never `misses`.
    pub append_absorbs: u64,
    /// Live aggregate-cache entries right now.
    pub entries: usize,
    /// Explanation-tier lookups replayed from a memoized answer.
    pub explanation_hits: u64,
    /// Explanation-tier lookups that had to run the pipeline.
    pub explanation_misses: u64,
    /// Memoized explanations dropped to respect the capacity bound.
    pub explanation_evictions: u64,
    /// Live memoized explanations right now.
    pub explanation_entries: usize,
    /// Partition-tier lookups served from a retained [`ShardedTable`].
    pub partition_hits: u64,
    /// Partition-tier lookups that had to hash-partition the table.
    pub partition_misses: u64,
    /// Retained partitions dropped to respect the capacity bound.
    pub partition_evictions: u64,
    /// Partition-tier lookups served by growing an append-variant
    /// partition in place ([`ShardedTable::absorb_append`]) instead of
    /// re-hashing every row — the tier-3 analogue of `append_absorbs`.
    pub partition_absorbs: u64,
    /// Live retained partitions right now.
    pub partition_entries: usize,
}

impl CacheStats {
    /// Fraction of aggregate-cache lookups served from cache (0 when none
    /// were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of explanation lookups replayed from the memo (0 when none
    /// were made).
    pub fn explanation_hit_rate(&self) -> f64 {
        let total = self.explanation_hits + self.explanation_misses;
        if total == 0 {
            0.0
        } else {
            self.explanation_hits as f64 / total as f64
        }
    }
}

impl Default for CacheRegistry {
    fn default() -> Self {
        CacheRegistry::new(CacheRegistry::DEFAULT_CAPACITY)
    }
}

impl CacheRegistry {
    /// Default number of retained caches. Each entry holds per-group
    /// aggregate state plus a row index over one statement's filtered
    /// input — typically a few MB on the demo workloads — so a few dozen
    /// covers many concurrent dashboards without unbounded growth.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// Creates a registry retaining at most `capacity` caches (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CacheRegistry {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            build_done: Condvar::new(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a live cache for `fingerprint`, counting a hit or miss.
    /// Waits for an in-flight build of the same fingerprint to resolve
    /// rather than reporting a spurious miss.
    pub fn get(
        &self,
        fingerprint: &CacheFingerprint,
    ) -> Option<Arc<GroupedAggregateCache<'static>>> {
        let mut inner = lock_recover(&self.inner);
        loop {
            inner.tick += 1;
            let tick = inner.tick;
            match inner.entries.get_mut(fingerprint) {
                Some(Slot::Ready { cache, last_used }) => {
                    *last_used = tick;
                    let cache = Arc::clone(cache);
                    inner.hits += 1;
                    return Some(cache);
                }
                Some(Slot::Building) => {
                    inner =
                        self.build_done.wait(inner).unwrap_or_else(|poison| poison.into_inner());
                }
                None => {
                    inner.misses += 1;
                    return None;
                }
            }
        }
    }

    /// Returns the cache for `fingerprint`, building (and retaining) it
    /// with `build` on a miss. The build runs *outside* the registry lock,
    /// so a slow build never delays lookups of other fingerprints; racing
    /// requests for the *same* fingerprint wait for the single in-flight
    /// build and share its result (counted as hits — they did not execute
    /// the statement).
    ///
    /// The boolean is `true` when the lookup was served from a live or
    /// in-flight cache rather than built by this call.
    pub fn get_or_build<F>(
        &self,
        fingerprint: CacheFingerprint,
        build: F,
    ) -> Result<(Arc<GroupedAggregateCache<'static>>, bool), EngineError>
    where
        F: FnOnce() -> Result<GroupedAggregateCache<'static>, EngineError>,
    {
        self.lookup_or_build(fingerprint, None, build)
    }

    /// [`CacheRegistry::get_or_build`] with append awareness: on a miss,
    /// before falling back to `build`, the registry looks for a retained
    /// cache of the *same statement over the same structural epoch* with an
    /// older appended stamp (see [`CacheFingerprint::append_variant_of`])
    /// and fast-forwards it through
    /// [`GroupedAggregateCache::absorb_append`] — O(appended rows) instead
    /// of a full statement execution. `table` must be the table the
    /// fingerprint was taken of. Absorbs are counted under
    /// [`CacheStats::append_absorbs`], not as hits or misses, so streamed
    /// appends are observable as "zero rebuilds" in the stats.
    pub fn get_or_absorb_or_build<F>(
        &self,
        fingerprint: CacheFingerprint,
        table: &Arc<Table>,
        build: F,
    ) -> Result<(Arc<GroupedAggregateCache<'static>>, bool), EngineError>
    where
        F: FnOnce() -> Result<GroupedAggregateCache<'static>, EngineError>,
    {
        self.lookup_or_build(fingerprint, Some(table), build)
    }

    fn lookup_or_build<F>(
        &self,
        fingerprint: CacheFingerprint,
        table: Option<&Arc<Table>>,
        build: F,
    ) -> Result<(Arc<GroupedAggregateCache<'static>>, bool), EngineError>
    where
        F: FnOnce() -> Result<GroupedAggregateCache<'static>, EngineError>,
    {
        // Phase 1: hit, wait, or reserve the build — possibly withdrawing
        // an absorbable append-variant sibling while the lock is held (so
        // no other lookup can race us to it).
        let mut absorb_source: Option<Arc<GroupedAggregateCache<'static>>> = None;
        {
            let mut inner = lock_recover(&self.inner);
            loop {
                inner.tick += 1;
                let tick = inner.tick;
                match inner.entries.get_mut(&fingerprint) {
                    Some(Slot::Ready { cache, last_used }) => {
                        *last_used = tick;
                        let cache = Arc::clone(cache);
                        inner.hits += 1;
                        return Ok((cache, true));
                    }
                    Some(Slot::Building) => {
                        inner = self
                            .build_done
                            .wait(inner)
                            .unwrap_or_else(|poison| poison.into_inner());
                    }
                    None => {
                        if table.is_some() {
                            // Only strictly older siblings qualify: absorb
                            // is forward-only, and a *newer* sibling means
                            // the caller asked about data that no longer
                            // exists anywhere (plain miss).
                            let sibling = inner
                                .entries
                                .iter()
                                .filter_map(|(k, s)| match s {
                                    Slot::Ready { .. }
                                        if fingerprint.append_variant_of(k)
                                            && k.epoch.appended < fingerprint.epoch.appended =>
                                    {
                                        Some(k.clone())
                                    }
                                    _ => None,
                                })
                                .next();
                            if let Some(old_key) = sibling {
                                let Some(Slot::Ready { cache, .. }) =
                                    inner.entries.remove(&old_key)
                                else {
                                    unreachable!("sibling selected among Ready slots");
                                };
                                absorb_source = Some(cache);
                                inner.append_absorbs += 1;
                                inner.entries.insert(fingerprint.clone(), Slot::Building);
                                break;
                            }
                        }
                        inner.misses += 1;
                        inner.entries.insert(fingerprint.clone(), Slot::Building);
                        break;
                    }
                }
            }
        }

        // Phase 2: build without holding the lock. The guard withdraws the
        // reservation and wakes waiters if `build` unwinds — otherwise a
        // panicking build would leave a permanent `Building` slot that
        // parks every later request for this fingerprint forever.
        struct ReservationGuard<'a> {
            registry: &'a CacheRegistry,
            fingerprint: Option<CacheFingerprint>,
        }
        impl Drop for ReservationGuard<'_> {
            fn drop(&mut self) {
                if let Some(fingerprint) = self.fingerprint.take() {
                    let mut inner = lock_recover(&self.registry.inner);
                    inner.entries.remove(&fingerprint);
                    drop(inner);
                    self.registry.build_done.notify_all();
                }
            }
        }
        let mut guard = ReservationGuard { registry: self, fingerprint: Some(fingerprint.clone()) };
        let built = match absorb_source.take() {
            Some(old) => {
                let table = table.expect("absorb source only selected when a table was given");
                // Fast-forward in place when this registry held the only
                // reference; otherwise clone-and-absorb (sessions may still
                // hold the old cache for a pre-append snapshot).
                let mut cache = Arc::try_unwrap(old).unwrap_or_else(|shared| (*shared).clone());
                cache.absorb_append_shared(Arc::clone(table)).map(|_| cache)
            }
            None => build(),
        };
        guard.fingerprint = None; // build returned; phases below settle the slot.

        // Phase 3: publish (or withdraw the reservation on failure).
        let mut inner = lock_recover(&self.inner);
        let outcome = match built {
            Err(e) => {
                inner.entries.remove(&fingerprint);
                Err(e)
            }
            Ok(cache) => {
                let cache = Arc::new(cache);
                inner.tick += 1;
                let tick = inner.tick;
                inner.entries.insert(
                    fingerprint,
                    Slot::Ready { cache: Arc::clone(&cache), last_used: tick },
                );
                while inner.ready_len() > self.capacity {
                    let oldest = inner
                        .entries
                        .iter()
                        .filter_map(|(k, s)| match s {
                            Slot::Ready { last_used, .. } => Some((*last_used, k.clone())),
                            Slot::Building => None,
                        })
                        .min_by_key(|(last_used, _)| *last_used)
                        .map(|(_, k)| k)
                        .expect("ready_len > capacity >= 1");
                    inner.entries.remove(&oldest);
                    inner.evictions += 1;
                }
                Ok((cache, false))
            }
        };
        drop(inner);
        self.build_done.notify_all();
        outcome
    }

    /// Publishes a cache that was restored from a durable snapshot rather
    /// than built by a lookup, so a restarted server's first request hits.
    /// Unlike [`Self::get_or_build`] this counts neither a hit nor a miss
    /// — nobody asked yet. Respects the capacity bound (LRU eviction) and
    /// refuses to displace an existing entry or in-flight build for the
    /// same fingerprint (the live state is at least as fresh). Returns
    /// whether the cache was inserted.
    pub fn insert_prebuilt(
        &self,
        fingerprint: CacheFingerprint,
        cache: Arc<GroupedAggregateCache<'static>>,
    ) -> bool {
        let mut inner = lock_recover(&self.inner);
        if inner.entries.contains_key(&fingerprint) {
            return false;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(fingerprint, Slot::Ready { cache, last_used: tick });
        while inner.ready_len() > self.capacity {
            let oldest = inner
                .entries
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { last_used, .. } => Some((*last_used, k.clone())),
                    Slot::Building => None,
                })
                .min_by_key(|(last_used, _)| *last_used)
                .map(|(_, k)| k)
                .expect("ready_len > capacity >= 1");
            inner.entries.remove(&oldest);
            inner.evictions += 1;
        }
        true
    }

    /// Every finished cache currently retained, most recently used last —
    /// the working set a durable snapshot should persist. In-flight builds
    /// are not included (they have nothing to persist yet).
    pub fn export_ready(&self) -> Vec<(CacheFingerprint, Arc<GroupedAggregateCache<'static>>)> {
        let inner = lock_recover(&self.inner);
        let mut ready: Vec<(u64, CacheFingerprint, Arc<GroupedAggregateCache<'static>>)> = inner
            .entries
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready { cache, last_used } => {
                    Some((*last_used, k.clone(), Arc::clone(cache)))
                }
                Slot::Building => None,
            })
            .collect();
        ready.sort_by_key(|(last_used, _, _)| *last_used);
        ready.into_iter().map(|(_, k, c)| (k, c)).collect()
    }

    /// Looks up a memoized explanation for exactly this request, counting
    /// an explanation-tier hit or miss.
    pub fn get_explanation(&self, key: &ExplainKey) -> Option<Arc<Explanation>> {
        let mut inner = lock_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.explanations.get_mut(key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.explanation)
        });
        if found.is_some() {
            inner.explanation_hits += 1;
        } else {
            inner.explanation_misses += 1;
        }
        found
    }

    /// Memoizes a freshly computed explanation under its request key,
    /// evicting the least recently replayed answers beyond the capacity
    /// bound. Racing stores of the same key are harmless (the requests
    /// were identical, so the answers are too; last write wins).
    pub fn store_explanation(&self, key: ExplainKey, explanation: Arc<Explanation>) {
        let mut inner = lock_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.explanations.insert(key, ExplanationEntry { explanation, last_used: tick });
        while inner.explanations.len() > self.capacity {
            let oldest = inner
                .explanations
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            inner.explanations.remove(&oldest);
            inner.explanation_evictions += 1;
        }
    }

    /// Returns the retained partition of exactly this table data under
    /// exactly these parameters, hash-partitioning (and retaining) on a
    /// miss. Counting is per lookup: a hit means the explain skipped the
    /// full row-copying rebuild.
    ///
    /// Unlike the aggregate-cache tier there is no build coordination:
    /// partitioning is pure CPU over immutable data, so a rare racing
    /// duplicate build is cheaper than parking threads (last write wins,
    /// the results are identical).
    pub fn get_or_partition(
        &self,
        table: &Table,
        column: &str,
        shards: usize,
    ) -> Result<Arc<ShardedTable>, CoreError> {
        let key = PartitionKey {
            table_name: table.name().to_ascii_lowercase(),
            table_id: table.id(),
            epoch: table.epoch(),
            column: column.to_ascii_lowercase(),
            shards,
        };
        let mut absorb_source: Option<Arc<ShardedTable>> = None;
        {
            let mut inner = lock_recover(&self.inner);
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.partitions.get_mut(&key) {
                entry.last_used = tick;
                let partition = Arc::clone(&entry.partition);
                inner.partition_hits += 1;
                return Ok(partition);
            }
            // An append-variant sibling with an older appended stamp can be
            // grown in place (new rows land in their shard) instead of
            // re-hashing every row. Withdraw it under the lock so no other
            // lookup serves the stale partition meanwhile.
            let sibling = inner
                .partitions
                .keys()
                .find(|k| key.append_variant_of(k) && k.epoch.appended < key.epoch.appended)
                .cloned();
            if let Some(old_key) = sibling {
                let entry = inner.partitions.remove(&old_key).expect("key taken from map");
                absorb_source = Some(entry.partition);
                inner.partition_absorbs += 1;
            } else {
                inner.partition_misses += 1;
            }
        }
        // Build (or absorb) outside the lock; partitioning a large table
        // must not stall unrelated lookups.
        let partition = match absorb_source.take() {
            Some(old) => {
                let mut grown = Arc::try_unwrap(old).unwrap_or_else(|shared| (*shared).clone());
                grown.absorb_append(table)?;
                Arc::new(grown)
            }
            None => Arc::new(ShardedTable::hash(table, column, shards)?),
        };
        let mut inner = lock_recover(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner
            .partitions
            .insert(key, PartitionEntry { partition: Arc::clone(&partition), last_used: tick });
        while inner.partitions.len() > self.capacity {
            let oldest = inner
                .partitions
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over capacity");
            inner.partitions.remove(&oldest);
            inner.partition_evictions += 1;
        }
        Ok(partition)
    }

    /// Eagerly drops every finished cache of the named table
    /// (case-insensitive), returning how many entries were removed. Used
    /// when a table is re-registered: version-keyed lookups would already
    /// miss, but the dead snapshots should release their memory immediately
    /// instead of waiting to age out of the LRU. In-flight builds are left
    /// alone (their reservation is re-published by the builder; the entry
    /// is unreachable for new data anyway, so it simply ages out).
    pub fn invalidate_table(&self, table_name: &str) -> usize {
        let key = table_name.to_ascii_lowercase();
        let mut inner = lock_recover(&self.inner);
        let before = inner.entries.len() + inner.explanations.len() + inner.partitions.len();
        inner.entries.retain(|fp, slot| matches!(slot, Slot::Building) || fp.table_name != key);
        inner.explanations.retain(|k, _| k.fingerprint.table_name != key);
        inner.partitions.retain(|k, _| k.table_name != key);
        let removed =
            before - inner.entries.len() - inner.explanations.len() - inner.partitions.len();
        inner.invalidations += removed as u64;
        removed
    }

    /// Drops every finished cache, memoized explanation and retained
    /// partition.
    pub fn clear(&self) {
        let mut inner = lock_recover(&self.inner);
        let before = inner.entries.len() + inner.explanations.len();
        inner.entries.retain(|_, slot| matches!(slot, Slot::Building));
        inner.explanations.clear();
        inner.partitions.clear();
        let removed = before - inner.entries.len();
        inner.invalidations += removed as u64;
    }

    /// Number of live (finished) entries.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).ready_len()
    }

    /// True when no finished caches are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_recover(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            append_absorbs: inner.append_absorbs,
            entries: inner.ready_len(),
            explanation_hits: inner.explanation_hits,
            explanation_misses: inner.explanation_misses,
            explanation_evictions: inner.explanation_evictions,
            explanation_entries: inner.explanations.len(),
            partition_hits: inner.partition_hits,
            partition_misses: inner.partition_misses,
            partition_evictions: inner.partition_evictions,
            partition_absorbs: inner.partition_absorbs,
            partition_entries: inner.partitions.len(),
        }
    }
}

/// Lets the explain pipeline draw its [`ShardedTable`]s from the
/// registry's partition tier instead of rebuilding one per explain.
impl ShardPartitioner for CacheRegistry {
    fn partition(
        &self,
        table: &Table,
        column: &str,
        shards: usize,
    ) -> Result<Arc<ShardedTable>, CoreError> {
        self.get_or_partition(table, column, shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_engine::parse_select;
    use dbwipes_storage::{DataType, Schema, Table, Value};

    fn table(name: &str, rows: i64) -> Arc<Table> {
        let mut t =
            Table::new(name, Schema::of(&[("g", DataType::Int), ("v", DataType::Float)])).unwrap();
        for i in 0..rows {
            t.push_row(vec![Value::Int(i % 3), Value::Float(i as f64)]).unwrap();
        }
        Arc::new(t)
    }

    fn build_for(t: &Arc<Table>, sql: &str) -> (CacheFingerprint, GroupedAggregateCache<'static>) {
        let stmt = parse_select(sql).unwrap();
        let fp = CacheFingerprint::of(t, &stmt);
        let cache = GroupedAggregateCache::build_shared(Arc::clone(t), &stmt).unwrap();
        (fp, cache)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_same_cache() {
        let registry = CacheRegistry::new(4);
        let t = table("r", 30);
        let (fp, cache) = build_for(&t, "SELECT g, avg(v) FROM r GROUP BY g");
        let (first, hit1) = registry.get_or_build(fp.clone(), || Ok(cache)).unwrap();
        assert!(!hit1);
        let (second, hit2) =
            registry.get_or_build(fp, || panic!("must not rebuild on a hit")).unwrap();
        assert!(hit2);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failed_builds_release_the_reservation() {
        let registry = CacheRegistry::new(4);
        let t = table("r", 6);
        let (fp, cache) = build_for(&t, "SELECT g, avg(v) FROM r GROUP BY g");
        let err = registry
            .get_or_build(fp.clone(), || Err(dbwipes_engine::EngineError::plan("boom")))
            .unwrap_err();
        assert!(err.to_string().contains("boom"));
        assert!(registry.is_empty());
        // A later build of the same fingerprint succeeds normally.
        let (_, hit) = registry.get_or_build(fp, || Ok(cache)).unwrap();
        assert!(!hit);
        assert_eq!(registry.stats().misses, 2);
    }

    #[test]
    fn concurrent_requests_for_one_fingerprint_build_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let registry = Arc::new(CacheRegistry::new(4));
        let t = table("r", 600);
        let stmt = parse_select("SELECT g, avg(v) FROM r GROUP BY g").unwrap();
        let fp = CacheFingerprint::of(&t, &stmt);
        let builds = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for _ in 0..8 {
                let registry = Arc::clone(&registry);
                let t = Arc::clone(&t);
                let stmt = stmt.clone();
                let fp = fp.clone();
                let builds = &builds;
                scope.spawn(move || {
                    registry
                        .get_or_build(fp, || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window so waiters actually wait.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            GroupedAggregateCache::build_shared(t, &stmt)
                        })
                        .unwrap();
                });
            }
        });

        assert_eq!(builds.load(Ordering::Relaxed), 1, "racing threads must share one build");
        let stats = registry.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn table_mutation_changes_the_fingerprint_so_stale_caches_are_unreachable() {
        let registry = CacheRegistry::new(4);
        let t = table("r", 30);
        let (fp, cache) = build_for(&t, "SELECT g, avg(v) FROM r GROUP BY g");
        registry.get_or_build(fp, || Ok(cache)).unwrap();

        // Mutate a copy of the table (as a session's COW catalog would).
        let mut mutated = (*t).clone();
        mutated.delete_row(dbwipes_storage::RowId(0)).unwrap();
        let (fp2, cache2) = build_for(&Arc::new(mutated), "SELECT g, avg(v) FROM r GROUP BY g");
        assert!(registry.get(&fp2).is_none(), "stale cache must not be found");
        registry.get_or_build(fp2, || Ok(cache2)).unwrap();
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let registry = CacheRegistry::new(2);
        let t = table("r", 12);
        let (fp_a, a) = build_for(&t, "SELECT g, avg(v) FROM r GROUP BY g");
        let (fp_b, b) = build_for(&t, "SELECT g, sum(v) FROM r GROUP BY g");
        let (fp_c, c) = build_for(&t, "SELECT g, count(v) FROM r GROUP BY g");
        registry.get_or_build(fp_a.clone(), || Ok(a)).unwrap();
        registry.get_or_build(fp_b.clone(), || Ok(b)).unwrap();
        // Touch A so B becomes the LRU victim.
        assert!(registry.get(&fp_a).is_some());
        registry.get_or_build(fp_c.clone(), || Ok(c)).unwrap();
        assert_eq!(registry.len(), 2);
        assert!(registry.get(&fp_b).is_none(), "B was least recently used");
        assert!(registry.get(&fp_a).is_some());
        assert!(registry.get(&fp_c).is_some());
        assert_eq!(registry.stats().evictions, 1);
    }

    #[test]
    fn invalidate_table_drops_only_that_table() {
        let registry = CacheRegistry::new(8);
        let r = table("Readings", 12);
        let d = table("donations", 12);
        let (fp_r, cr) = build_for(&r, "SELECT g, avg(v) FROM Readings GROUP BY g");
        let (fp_d, cd) = build_for(&d, "SELECT g, avg(v) FROM donations GROUP BY g");
        registry.get_or_build(fp_r.clone(), || Ok(cr)).unwrap();
        registry.get_or_build(fp_d.clone(), || Ok(cd)).unwrap();
        // Case-insensitive, like the catalog.
        assert_eq!(registry.invalidate_table("READINGS"), 1);
        assert!(registry.get(&fp_r).is_none());
        assert!(registry.get(&fp_d).is_some());
        assert_eq!(registry.stats().invalidations, 1);
        registry.clear();
        assert!(registry.is_empty());
    }

    #[test]
    fn partition_tier_retains_by_data_version_and_parameters() {
        let registry = CacheRegistry::new(2);
        let t = table("r", 40);

        // Same table + parameters: one build, then hits sharing the Arc.
        let first = registry.get_or_partition(&t, "g", 4).unwrap();
        let again = registry.get_or_partition(&t, "g", 4).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        // Column resolution is case-insensitive, so the key must be too.
        let upper = registry.get_or_partition(&t, "G", 4).unwrap();
        assert!(Arc::ptr_eq(&first, &upper));
        let stats = registry.stats();
        assert_eq!((stats.partition_hits, stats.partition_misses), (2, 1));
        assert_eq!(stats.partition_entries, 1);

        // Different parameters are different partitions.
        let other = registry.get_or_partition(&t, "g", 2).unwrap();
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(registry.stats().partition_entries, 2);

        // Mutated data gets a fresh partition (version-keyed): the stale
        // one is unfindable, and capacity 2 evicts the LRU entry.
        let mut mutated = (*t).clone();
        mutated.delete_row(dbwipes_storage::RowId(0)).unwrap();
        let fresh = registry.get_or_partition(&mutated, "g", 4).unwrap();
        assert!(!Arc::ptr_eq(&first, &fresh));
        assert!(fresh.covers(&mutated));
        let stats = registry.stats();
        assert_eq!(stats.partition_entries, 2);
        assert_eq!(stats.partition_evictions, 1);

        // Unknown columns surface the storage error instead of caching it.
        assert!(registry.get_or_partition(&t, "missing", 4).is_err());
    }

    #[test]
    fn invalidate_table_drops_retained_partitions() {
        let registry = CacheRegistry::new(8);
        let r = table("Readings", 12);
        let d = table("donations", 12);
        registry.get_or_partition(&r, "g", 2).unwrap();
        registry.get_or_partition(&d, "g", 2).unwrap();
        assert_eq!(registry.invalidate_table("readings"), 1);
        let stats = registry.stats();
        assert_eq!(stats.partition_entries, 1);
        // The survivor still hits; the dropped table rebuilds.
        registry.get_or_partition(&d, "g", 2).unwrap();
        registry.get_or_partition(&r, "g", 2).unwrap();
        let stats = registry.stats();
        assert_eq!((stats.partition_hits, stats.partition_misses), (1, 3));
        registry.clear();
        assert_eq!(registry.stats().partition_entries, 0);
    }

    #[test]
    fn prebuilt_caches_hit_without_counting_and_export_in_lru_order() {
        let registry = CacheRegistry::new(2);
        let t = table("r", 30);
        let (fp_a, a) = build_for(&t, "SELECT g, avg(v) FROM r GROUP BY g");
        let (fp_b, b) = build_for(&t, "SELECT g, sum(v) FROM r GROUP BY g");
        assert!(registry.insert_prebuilt(fp_a.clone(), Arc::new(a)));
        assert!(registry.insert_prebuilt(fp_b.clone(), Arc::new(b)));

        // Rehydration counts neither hits nor misses; the first real
        // lookup is a pure hit — the restart invariant the stats assert.
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 2));
        assert!(registry.get(&fp_a).is_some());
        assert_eq!(registry.stats().hits, 1);

        // A second insert for the same fingerprint is refused.
        let (_, again) = build_for(&t, "SELECT g, sum(v) FROM r GROUP BY g");
        assert!(!registry.insert_prebuilt(fp_b.clone(), Arc::new(again)));

        // Export walks LRU → MRU: A was just touched, so B comes first.
        let exported = registry.export_ready();
        assert_eq!(
            exported.iter().map(|(fp, _)| fp.clone()).collect::<Vec<_>>(),
            vec![fp_b.clone(), fp_a.clone()]
        );

        // Inserting beyond capacity evicts the least recently used entry.
        let (fp_c, c) = build_for(&t, "SELECT g, count(v) FROM r GROUP BY g");
        assert!(registry.insert_prebuilt(fp_c, Arc::new(c)));
        assert_eq!(registry.len(), 2);
        assert!(registry.get(&fp_b).is_none(), "B was the LRU victim");
        assert_eq!(registry.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_clamped_to_at_least_one() {
        let registry = CacheRegistry::new(0);
        assert_eq!(registry.capacity(), 1);
        assert_eq!(CacheRegistry::default().capacity(), CacheRegistry::DEFAULT_CAPACITY);
    }

    #[test]
    fn appends_fast_forward_the_retained_cache_instead_of_rebuilding() {
        let registry = CacheRegistry::new(4);
        let t = table("r", 30);
        let (fp, cache) = build_for(&t, "SELECT g, avg(v) FROM r GROUP BY g");
        registry.get_or_absorb_or_build(fp, &t, || Ok(cache)).unwrap();
        assert_eq!(registry.stats().misses, 1);

        // Stream a batch of appended rows (as the manager's COW catalog
        // would: clone, push, re-share).
        let mut grown = (*t).clone();
        grown.push_row(vec![Value::Int(1), Value::Float(500.0)]).unwrap();
        let grown = Arc::new(grown);
        let stmt = parse_select("SELECT g, avg(v) FROM r GROUP BY g").unwrap();
        let fp2 = CacheFingerprint::of(&grown, &stmt);
        let (absorbed, served) = registry
            .get_or_absorb_or_build(fp2.clone(), &grown, || panic!("append must not rebuild"))
            .unwrap();
        assert!(!served, "an absorb is not a verbatim hit");
        let stats = registry.stats();
        assert_eq!(
            (stats.misses, stats.append_absorbs, stats.entries),
            (1, 1, 1),
            "the old entry is re-keyed, not duplicated"
        );

        // The absorbed cache answers exactly like a fresh build.
        let fresh = GroupedAggregateCache::build_shared(Arc::clone(&grown), &stmt).unwrap();
        assert_eq!(absorbed.full_result().rows, fresh.full_result().rows);
        // And the new fingerprint now hits verbatim.
        assert!(registry.get(&fp2).is_some());

        // A second appended batch fast-forwards again.
        let mut grown2 = (*grown).clone();
        grown2.push_row(vec![Value::Int(7), Value::Float(-2.0)]).unwrap();
        let grown2 = Arc::new(grown2);
        let fp3 = CacheFingerprint::of(&grown2, &stmt);
        registry
            .get_or_absorb_or_build(fp3, &grown2, || panic!("append must not rebuild"))
            .unwrap();
        assert_eq!(registry.stats().append_absorbs, 2);
        assert_eq!(registry.stats().misses, 1);
    }

    #[test]
    fn structural_mutations_still_miss_and_rebuild() {
        let registry = CacheRegistry::new(4);
        let t = table("r", 30);
        let (fp, cache) = build_for(&t, "SELECT g, avg(v) FROM r GROUP BY g");
        registry.get_or_absorb_or_build(fp, &t, || Ok(cache)).unwrap();

        // A deletion is structural: no absorb, a plain miss + rebuild.
        let mut mutated = (*t).clone();
        mutated.delete_row(dbwipes_storage::RowId(0)).unwrap();
        let mutated = Arc::new(mutated);
        let (fp2, cache2) = build_for(&mutated, "SELECT g, avg(v) FROM r GROUP BY g");
        registry.get_or_absorb_or_build(fp2, &mutated, || Ok(cache2)).unwrap();
        let stats = registry.stats();
        assert_eq!((stats.misses, stats.append_absorbs), (2, 0));
    }

    #[test]
    fn partition_tier_absorbs_appends_in_place() {
        let registry = CacheRegistry::new(4);
        let t = table("r", 40);
        let first = registry.get_or_partition(&t, "g", 4).unwrap();

        let mut grown = (*t).clone();
        grown.push_row(vec![Value::Int(2), Value::Float(123.0)]).unwrap();
        grown.push_row(vec![Value::Int(0), Value::Float(-9.0)]).unwrap();
        let absorbed = registry.get_or_partition(&grown, "g", 4).unwrap();
        assert!(absorbed.covers(&grown));
        assert_eq!(absorbed.shards().iter().map(|s| s.num_rows()).sum::<usize>(), 42);
        let stats = registry.stats();
        assert_eq!(
            (stats.partition_misses, stats.partition_absorbs, stats.partition_entries),
            (1, 1, 1),
            "append growth must not re-hash the table"
        );
        // Grown placement equals a fresh hash partition of the grown table.
        let fresh = ShardedTable::hash(&grown, "g", 4).unwrap();
        for (a, b) in absorbed.shards().iter().zip(fresh.shards()) {
            assert_eq!(a.num_rows(), b.num_rows());
        }
        drop(first);

        // Structural mutations still re-partition from scratch.
        let mut mutated = grown.clone();
        mutated.delete_row(dbwipes_storage::RowId(0)).unwrap();
        registry.get_or_partition(&mutated, "g", 4).unwrap();
        let stats = registry.stats();
        assert_eq!((stats.partition_misses, stats.partition_absorbs), (2, 1));
    }
}

//! Concurrent session hosting.
//!
//! A [`SessionManager`] turns the single-user
//! [`DashboardSession`] into a
//! multi-tenant service:
//!
//! * **Shared data, private state.** All sessions open over one base
//!   [`Catalog`] whose tables live behind `Arc` snapshots — opening a
//!   session clones the catalog in O(tables) reference bumps, not O(data).
//!   A session that physically mutates a table copies-on-write, so one
//!   analyst's cleaning never leaks into another's dashboard.
//! * **Per-session locking.** Each session sits behind its own `Mutex`;
//!   the manager's session map is only read-locked to route a command, so
//!   concurrent clients working in different sessions never serialize on
//!   each other's brush→debug loops.
//! * **Cross-brush cache reuse.** All sessions share one
//!   [`CacheRegistry`]: a repeated `debug` on an unchanged statement —
//!   within one session or across sessions brushing the same dashboard —
//!   skips the full statement execution that dominates explain latency.

use crate::durability::StorageRuntime;
use crate::executor::PoolStats;
use crate::registry::{CacheRegistry, ExplainKey};
use dbwipes_core::{ComponentTimings, CoreError, DbWipes, ExplainConfig, Explanation};
use dbwipes_dashboard::DashboardSession;
use dbwipes_engine::{CacheFingerprint, GroupedAggregateCache};
use dbwipes_storage::{Catalog, Table, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks recovering from poison. The catalog and session-map locks
/// guard data that every writer leaves consistent at each step (handler
/// panics are caught *outside* these critical sections), so a poisoned
/// flag here only records that some thread died elsewhere while holding
/// the guard — recovering serves every healthy session instead of
/// cascading the panic across the whole service.
fn read_recover<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poison| poison.into_inner())
}

/// Write-locking twin of [`read_recover`].
fn write_recover<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|poison| poison.into_inner())
}

/// Mutex twin of [`read_recover`], for service-internal mutexes whose
/// critical sections never run user command code.
fn lock_recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Identifies one open session within a [`SessionManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One client's dashboard plus its service-side counters.
#[derive(Debug)]
pub struct ServerSession {
    dashboard: DashboardSession,
    commands: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl ServerSession {
    fn new(catalog: Catalog, shards: usize) -> Self {
        let mut dashboard = DashboardSession::new(DbWipes::with_catalog(catalog));
        if shards > 1 {
            let mut config = ExplainConfig::standard();
            config.shards = shards;
            dashboard.set_explain_config(config);
        }
        ServerSession { dashboard, commands: 0, cache_hits: 0, cache_misses: 0 }
    }

    /// The wrapped dashboard session.
    pub fn dashboard(&self) -> &DashboardSession {
        &self.dashboard
    }

    /// Mutable access to the wrapped dashboard session.
    pub fn dashboard_mut(&mut self) -> &mut DashboardSession {
        &mut self.dashboard
    }

    /// Number of commands this session has served.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// How many of this session's `debug` calls reused a registry cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// How many of this session's `debug` calls had to build a cache.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Counts one served command (called by the protocol layer).
    pub(crate) fn record_command(&mut self) {
        self.commands += 1;
    }

    /// Runs `debug!` through the registry, keeping only the boolean
    /// "any shared tier hit" flag. Convenience over [`debug_cached`]
    /// (the protocol layer additionally surfaces the memo flag).
    ///
    /// [`debug_cached`]: ServerSession::debug_cached
    pub fn debug_cached_hit(
        &mut self,
        registry: &CacheRegistry,
    ) -> Result<(&Explanation, bool), CoreError> {
        let (explanation, report) = self.debug_cached(registry)?;
        Ok((explanation, report.cache_hit))
    }

    /// Runs `debug!` through the shared two-tier registry: an unchanged
    /// request (same statement, same table data, same S/D′/ε) replays the
    /// memoized explanation outright; a changed request still reuses the
    /// statement-level [`GroupedAggregateCache`] when one is alive,
    /// building and retaining both tiers otherwise.
    ///
    /// Returns the explanation and a [`DebugCacheReport`] saying which
    /// tier served it. A memo-served explanation reports *near-zero*
    /// component timings — no pipeline ran, so replaying the original
    /// run's wall-clock numbers would misreport the service's latency —
    /// and the protocol layer surfaces `report.memo_hit` as the reply's
    /// `cached` marker.
    pub fn debug_cached(
        &mut self,
        registry: &CacheRegistry,
    ) -> Result<(&Explanation, DebugCacheReport), CoreError> {
        let result = self
            .dashboard
            .result()
            .ok_or_else(|| CoreError::invalid("no query has been executed"))?;
        let stmt = result.statement.clone();
        let table =
            self.dashboard.backend().catalog().table_arc(&stmt.table).map_err(CoreError::from)?;
        let fingerprint = CacheFingerprint::of(&table, &stmt);

        // The memo key is derived from the *same* request `debug` would
        // run (the dashboard's single source of truth, including the
        // pipeline config), so key and computation cannot drift apart;
        // this also performs `debug`'s own state validation.
        let request = self.dashboard.explain_request()?;
        let key = ExplainKey::new(fingerprint.clone(), &request);

        // Tier 2: the identical question was already answered. The replay
        // reports zeroed timings: nothing was computed now, and replaying
        // the original run's elapsed times would be a lie about *this*
        // call's latency.
        if let Some(memoized) = registry.get_explanation(&key) {
            self.cache_hits += 1;
            let mut replay = (*memoized).clone();
            replay.timings = ComponentTimings::default();
            let explanation = self.dashboard.install_explanation(replay)?;
            return Ok((explanation, DebugCacheReport { cache_hit: true, memo_hit: true }));
        }

        // Tier 1: reuse the statement-level aggregate cache — fast-
        // forwarding a retained sibling through `absorb_append` when the
        // only difference is streamed appends — and build it cold only
        // when neither exists. Then run the pipeline and memoize.
        let (cache, cache_hit) = registry
            .get_or_absorb_or_build(fingerprint, &table, || {
                GroupedAggregateCache::build_shared(Arc::clone(&table), &stmt)
            })
            .map_err(CoreError::from)?;
        if cache_hit {
            self.cache_hits += 1;
        } else {
            self.cache_misses += 1;
        }
        // The registry doubles as the pipeline's shard partitioner, so a
        // sharded explain of an unchanged table reuses one retained
        // partition instead of re-hashing every row per explain.
        let explanation = self.dashboard.debug_with_cache_and_partitioner(&cache, registry)?;
        registry.store_explanation(key, Arc::new(explanation.clone()));
        Ok((explanation, DebugCacheReport { cache_hit, memo_hit: false }))
    }

    /// Adopts a freshly appended snapshot of `table` (streaming
    /// ingestion). The adoption is deliberately conservative — the
    /// session only follows an append that is a pure fast-forward of what
    /// it is currently reading:
    ///
    /// * a different table id means the session reads an older
    ///   incarnation of the name (the table was re-registered) — skip;
    /// * a non-append-descendant epoch means the session privately
    ///   copied-on-write (cleaning, deletes) — skip, exactly like
    ///   in-flight transactions keep their snapshot;
    /// * an equal epoch means the session already reads this data — skip.
    ///
    /// When the session displays a result over the appended table, the
    /// result is recomputed through `registry` — absorbing the retained
    /// aggregate cache instead of re-executing the statement — and
    /// installed via [`DashboardSession::refresh_after_append`], so the
    /// analyst's brushes survive. Otherwise only the catalog snapshot is
    /// swapped. Returns true when the session adopted the snapshot.
    pub fn adopt_append(
        &mut self,
        table: &Arc<Table>,
        registry: &CacheRegistry,
    ) -> Result<bool, CoreError> {
        let Ok(current) = self.dashboard.backend().catalog().table_arc(table.name()) else {
            return Ok(false);
        };
        if current.id() != table.id()
            || current.epoch() == table.epoch()
            || !table.epoch().is_append_descendant_of(current.epoch())
        {
            return Ok(false);
        }
        let displayed = self
            .dashboard
            .result()
            .map(|r| r.statement.clone())
            .filter(|stmt| stmt.table.eq_ignore_ascii_case(table.name()));
        let Some(stmt) = displayed else {
            self.dashboard.backend_mut().catalog_mut().install_snapshot(Arc::clone(table));
            return Ok(true);
        };
        let fingerprint = CacheFingerprint::of(table, &stmt);
        let (cache, _) = registry
            .get_or_absorb_or_build(fingerprint, table, || {
                GroupedAggregateCache::build_shared(Arc::clone(table), &stmt)
            })
            .map_err(CoreError::from)?;
        let refreshed = cache.full_result_with_lineage();
        self.dashboard.refresh_after_append(Arc::clone(table), refreshed)?;
        Ok(true)
    }
}

/// Which shared registry tier served a [`ServerSession::debug_cached`]
/// call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DebugCacheReport {
    /// Any shared tier hit — the protocol's `cache_hit` flag. True both
    /// for a memo replay and for a pipeline run over a retained
    /// aggregate cache.
    pub cache_hit: bool,
    /// The explanation tier replayed a memoized answer outright (no
    /// pipeline ran) — the protocol's `cached` marker.
    pub memo_hit: bool,
}

/// What one [`SessionManager::stream_append`] call did — the payload of
/// the `stream_append` wire reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamAppendReport {
    /// Rows appended to the base table. All-or-nothing: on any validation
    /// error the command appends zero rows.
    pub appended: usize,
    /// Number of [`Table::push_rows`] batches the rows were applied in;
    /// each batch advances the appended epoch component once (see
    /// [`SessionManager::append_batch_size`]).
    pub batches: usize,
    /// Total rows in the base table after the append.
    pub total_rows: usize,
    /// Open sessions that adopted the new snapshot. Sessions reading a
    /// private copy-on-write snapshot or an older incarnation of the
    /// table keep what they were reading (see
    /// [`ServerSession::adopt_append`]).
    pub sessions_refreshed: usize,
    /// True when the appended snapshot reached durable storage before the
    /// reply. False without attached storage, and false in degraded mode
    /// — the append is fully absorbed in memory either way, so a client
    /// seeing `durable:false` knows exactly what a crash would lose.
    pub durable: bool,
}

/// Hosts many concurrent [`ServerSession`]s over one shared catalog and
/// one shared [`CacheRegistry`]. See the module docs for the concurrency
/// story.
#[derive(Debug)]
pub struct SessionManager {
    base: RwLock<Catalog>,
    registry: Arc<CacheRegistry>,
    sessions: RwLock<HashMap<SessionId, Arc<Mutex<ServerSession>>>>,
    next_id: AtomicU64,
    /// Set by the `shutdown` ctrl-line (or the front-end directly); every
    /// serving loop polls it and drains.
    shutdown: AtomicBool,
    /// Executor counters, attached by the pooled TCP front-end so the
    /// `stats` command can report them. Never set in stdio mode.
    pool: OnceLock<Arc<PoolStats>>,
    /// Durable storage, attached when the server runs with a data
    /// directory. Unset managers (embedded use, most tests) behave
    /// exactly as before: nothing is persisted.
    storage: OnceLock<Arc<StorageRuntime>>,
    /// Sessions poisoned by a caught handler panic, with the reason. A
    /// quarantined session answers every further command with a
    /// structured `quarantined` error while its siblings keep serving;
    /// closing it removes the entry.
    quarantined: Mutex<HashMap<SessionId, String>>,
    /// Monotonic count of handler panics the isolation layer caught.
    panics_caught: AtomicU64,
    /// Monotonic count of sessions ever quarantined (does not shrink when
    /// a quarantined session is closed — it is a damage counter).
    quarantined_total: AtomicU64,
}

impl SessionManager {
    /// Creates a manager serving `catalog` with the default cache capacity.
    pub fn new(catalog: Catalog) -> Self {
        SessionManager::with_cache_capacity(catalog, CacheRegistry::DEFAULT_CAPACITY)
    }

    /// Creates a manager retaining at most `cache_capacity` aggregate
    /// caches.
    pub fn with_cache_capacity(catalog: Catalog, cache_capacity: usize) -> Self {
        SessionManager {
            base: RwLock::new(catalog),
            registry: Arc::new(CacheRegistry::new(cache_capacity)),
            sessions: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            pool: OnceLock::new(),
            storage: OnceLock::new(),
            quarantined: Mutex::new(HashMap::new()),
            panics_caught: AtomicU64::new(0),
            quarantined_total: AtomicU64::new(0),
        }
    }

    /// Marks `id` as quarantined with `reason`: every further command
    /// addressed to it answers a structured `quarantined` error until the
    /// session is closed. Idempotent per session for the damage counter —
    /// re-quarantining updates the reason without double-counting.
    pub fn quarantine_session(&self, id: SessionId, reason: impl Into<String>) {
        let mut quarantined = lock_recover(&self.quarantined);
        if quarantined.insert(id, reason.into()).is_none() {
            self.quarantined_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The quarantine reason of `id`, when it is quarantined.
    pub fn quarantine_reason(&self, id: SessionId) -> Option<String> {
        lock_recover(&self.quarantined).get(&id).cloned()
    }

    /// Monotonic count of sessions ever quarantined.
    pub fn quarantined_sessions(&self) -> u64 {
        self.quarantined_total.load(Ordering::Relaxed)
    }

    /// Counts one caught handler panic (called by the isolation layer).
    pub(crate) fn record_panic(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Monotonic count of handler panics the isolation layer caught.
    pub fn panics_caught(&self) -> u64 {
        self.panics_caught.load(Ordering::Relaxed)
    }

    /// The shared cache registry.
    pub fn registry(&self) -> &CacheRegistry {
        &self.registry
    }

    /// Flags the service for graceful shutdown: front-ends stop accepting
    /// work, drain what is in flight, flush replies, and exit. Idempotent.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once [`SessionManager::request_shutdown`] has been called.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Attaches the pooled executor's counters so the `stats` command can
    /// report them. The first attach wins (a manager is served by one
    /// front-end); returns false when stats were already attached.
    pub fn attach_pool_stats(&self, stats: Arc<PoolStats>) -> bool {
        self.pool.set(stats).is_ok()
    }

    /// The attached executor counters, if this manager is served by the
    /// pooled TCP front-end.
    pub fn pool_stats(&self) -> Option<&Arc<PoolStats>> {
        self.pool.get()
    }

    /// Attaches durable storage: from now on `register_table` snapshots
    /// eagerly and [`SessionManager::flush_storage`] persists warm state.
    /// Also enables the process-wide warm bitmap store so dropped
    /// [`ConditionBitmapCache`](dbwipes_storage::ConditionBitmapCache)s
    /// donate their bitmaps for the next flush. The first attach wins;
    /// returns false when storage was already attached.
    pub fn attach_storage(&self, runtime: Arc<StorageRuntime>) -> bool {
        let attached = self.storage.set(runtime).is_ok();
        if attached {
            dbwipes_storage::enable_warm_bitmap_store();
        }
        attached
    }

    /// The attached storage runtime, if this manager persists to a data
    /// directory.
    pub fn storage(&self) -> Option<&Arc<StorageRuntime>> {
        self.storage.get()
    }

    /// Reseeds the shared registry and the warm bitmap store from the
    /// attached storage's sidecars, one table at a time. Returns
    /// `(aggregate caches, bitmap entries)` rehydrated; `(0, 0)` without
    /// attached storage. Best-effort by construction — see
    /// [`StorageRuntime::load_warm_state`].
    pub fn rehydrate_warm_state(&self) -> (usize, usize) {
        let Some(runtime) = self.storage.get() else { return (0, 0) };
        let catalog = read_recover(&self.base).clone();
        let (mut caches, mut bitmaps) = (0, 0);
        for name in catalog.table_names() {
            if let Ok(table) = catalog.table_arc(&name) {
                let (c, b) = runtime.load_warm_state(&table, &self.registry);
                caches += c;
                bitmaps += b;
            }
        }
        (caches, bitmaps)
    }

    /// Flushes every base-catalog table (version-gated, so unchanged
    /// tables cost one manifest lookup) and each table's warm state to the
    /// attached storage. A no-op without attached storage. Returns the
    /// number of table snapshots actually written.
    ///
    /// Errors are reported per table on stderr rather than propagated: a
    /// flush runs during shutdown, where aborting half-way would lose
    /// *more* state than skipping one failed table.
    pub fn flush_storage(&self) -> usize {
        let Some(runtime) = self.storage.get() else { return 0 };
        let catalog = read_recover(&self.base).clone();
        let ready = self.registry.export_ready();
        let caches: Vec<_> = ready.into_iter().map(|(_, cache)| cache).collect();
        let mut saved = 0;
        for name in catalog.table_names() {
            let Ok(table) = catalog.table_arc(&name) else { continue };
            match runtime.save_table(&table) {
                Ok(true) => saved += 1,
                Ok(false) => {}
                Err(e) => {
                    eprintln!("dbwipes-server: flushing table {name}: {e}");
                    continue;
                }
            }
            if let Err(e) = runtime.save_warm_state(&table, &caches) {
                eprintln!("dbwipes-server: flushing warm state of {name}: {e}");
            }
        }
        saved
    }

    /// The shard count newly opened sessions run their explain pipeline
    /// with: `DBWIPES_SHARDS` when set to a positive integer, 1 (the
    /// single-table path) otherwise. Read per call, like
    /// `DBWIPES_THREADS`, so operators can retune a running service; open
    /// sessions keep the configuration they were opened with.
    pub fn default_shards() -> usize {
        std::env::var("DBWIPES_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    }

    /// Opens a new session over the current base catalog. Opening takes
    /// the catalog's read lock only — concurrent opens (and routing) never
    /// serialize on each other, only on a concurrent `register_table`.
    pub fn open_session(&self) -> SessionId {
        let catalog = read_recover(&self.base).clone();
        let id = SessionId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let session = Arc::new(Mutex::new(ServerSession::new(catalog, Self::default_shards())));
        write_recover(&self.sessions).insert(id, session);
        id
    }

    /// Closes a session; returns false when the id was unknown. Closing
    /// a quarantined session also clears its quarantine record, so the id
    /// space stays clean for long-running servers.
    pub fn close_session(&self, id: SessionId) -> bool {
        lock_recover(&self.quarantined).remove(&id);
        write_recover(&self.sessions).remove(&id).is_some()
    }

    /// The handle of an open session. Callers lock the returned session
    /// for as long as their command runs; other sessions stay available.
    pub fn session(&self, id: SessionId) -> Option<Arc<Mutex<ServerSession>>> {
        read_recover(&self.sessions).get(&id).cloned()
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        read_recover(&self.sessions).len()
    }

    /// Ids of all open sessions, sorted.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = read_recover(&self.sessions).keys().copied().collect();
        ids.sort();
        ids
    }

    /// Registers `table` in the base catalog (replacing any table of the
    /// same name) and eagerly invalidates the registry's caches for it.
    /// Sessions already open keep their current snapshot — like a database,
    /// in-flight transactions finish on the data they started with — while
    /// sessions opened afterwards see the new table.
    pub fn register_table(&self, table: Table) {
        let name = table.name().to_string();
        write_recover(&self.base).register_or_replace(table);
        self.registry.invalidate_table(&name);
        // With storage attached, the registration is durable before the
        // reply goes out: a kill right after this call recovers the table.
        if let Some(runtime) = self.storage.get() {
            let arc = read_recover(&self.base).table_arc(&name).ok();
            if let Some(arc) = arc {
                if let Err(e) = runtime.save_table(&arc) {
                    eprintln!("dbwipes-server: persisting table {name}: {e}");
                }
            }
        }
    }

    /// Names of the tables in the base catalog.
    pub fn table_names(&self) -> Vec<String> {
        read_recover(&self.base).table_names()
    }

    /// How many rows one [`Table::push_rows`] batch of a streamed append
    /// carries: `DBWIPES_APPEND_BATCH` when set to a positive integer,
    /// 1024 otherwise. Each batch advances the table's appended epoch
    /// once, so larger batches amortize per-stamp bookkeeping while
    /// smaller ones bound how much data a partially-delivered stream can
    /// sit on. Read per call, like `DBWIPES_SHARDS`, so operators can
    /// retune a running service.
    pub fn append_batch_size() -> usize {
        std::env::var("DBWIPES_APPEND_BATCH")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1024)
    }

    /// Streams `rows` into the base table `name` — the service side of the
    /// `stream_append` wire command.
    ///
    /// The append is **command-level all-or-nothing**: every row is
    /// validated against the schema up front, so a malformed row anywhere
    /// in the payload rejects the whole command without mutating anything.
    /// Valid rows are applied in [`SessionManager::append_batch_size`]-row
    /// batches under one catalog write lock (each batch advances the
    /// appended epoch once, never the structural epoch), persisted to the
    /// attached storage, and then fanned out to every open session via
    /// [`ServerSession::adopt_append`] — sessions brushing the appended
    /// table see their result refresh through the absorbed cache instead
    /// of a cold re-execution. Fan-out and persistence are best-effort:
    /// a session that cannot refresh keeps its old snapshot.
    pub fn stream_append(
        &self,
        name: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<StreamAppendReport, CoreError> {
        let batch_size = Self::append_batch_size();
        let appended = rows.len();
        let mut batches = 0usize;
        let table = {
            let mut base = write_recover(&self.base);
            let current = base.table(name).map_err(CoreError::from)?;
            for row in &rows {
                current.validate_row(row).map_err(CoreError::from)?;
            }
            if appended > 0 {
                let table = base.table_mut(name).map_err(CoreError::from)?;
                let mut pending = rows;
                while !pending.is_empty() {
                    let rest = pending.split_off(pending.len().min(batch_size));
                    let chunk = std::mem::replace(&mut pending, rest);
                    table.push_rows(chunk).map_err(CoreError::from)?;
                    batches += 1;
                }
            }
            base.table_arc(name).map_err(CoreError::from)?
        };
        if appended == 0 {
            return Ok(StreamAppendReport {
                appended,
                batches,
                total_rows: table.num_rows(),
                sessions_refreshed: 0,
                // Nothing needed persisting; report the runtime's standing.
                durable: self.storage.get().map(|runtime| !runtime.is_degraded()).unwrap_or(false),
            });
        }
        // Durable before the reply goes out, like `register_table`. When
        // the write fails past its retry budget the append still succeeds
        // in memory — the runtime flips to degraded mode and the reply
        // carries `durable:false` so the producer knows its rows survive
        // a restart only once a later flush heals the backlog.
        let mut durable = false;
        if let Some(runtime) = self.storage.get() {
            match runtime.save_table(&table) {
                Ok(_) => durable = true,
                Err(e) => {
                    eprintln!("dbwipes-server: persisting appended table {name}: {e}");
                }
            }
        }
        let sessions: Vec<Arc<Mutex<ServerSession>>> =
            read_recover(&self.sessions).values().cloned().collect();
        let mut sessions_refreshed = 0usize;
        for session in sessions {
            // A session whose holder panicked mid-command leaves a
            // poisoned mutex behind; it is quarantined, so skip it
            // instead of taking the whole append down with it.
            let mut s = match session.lock() {
                Ok(guard) => guard,
                Err(_) => continue,
            };
            match s.adopt_append(&table, &self.registry) {
                Ok(true) => sessions_refreshed += 1,
                Ok(false) => {}
                Err(e) => eprintln!("dbwipes-server: refreshing session after append: {e}"),
            }
        }
        Ok(StreamAppendReport {
            appended,
            batches,
            total_rows: table.num_rows(),
            sessions_refreshed,
            durable,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbwipes_data::{generate_sensor, SensorConfig};

    fn manager() -> (SessionManager, String) {
        let ds = generate_sensor(&SensorConfig {
            num_readings: 2_700,
            failing_sensors: vec![15],
            ..SensorConfig::small()
        });
        let mut catalog = Catalog::new();
        catalog.register(ds.table.clone()).unwrap();
        (SessionManager::new(catalog), ds.window_query())
    }

    #[test]
    fn sessions_are_independent_views_over_shared_tables() {
        let (m, query) = manager();
        let a = m.open_session();
        let b = m.open_session();
        assert_ne!(a, b);
        assert_eq!(m.session_count(), 2);
        assert_eq!(m.session_ids(), vec![a, b]);

        let sa = m.session(a).unwrap();
        let sb = m.session(b).unwrap();
        // Both sessions see the same snapshot (no data copied).
        {
            let sa = sa.lock().unwrap();
            let sb = sb.lock().unwrap();
            let ta = sa.dashboard().backend().catalog().table_arc("readings").unwrap();
            let tb = sb.dashboard().backend().catalog().table_arc("readings").unwrap();
            assert!(Arc::ptr_eq(&ta, &tb));
        }
        // Session A runs a query; session B's state is untouched.
        sa.lock().unwrap().dashboard_mut().run_query(&query).unwrap();
        assert!(sa.lock().unwrap().dashboard().result().is_some());
        assert!(sb.lock().unwrap().dashboard().result().is_none());

        assert!(m.close_session(a));
        assert!(!m.close_session(a));
        assert!(m.session(a).is_none());
        assert_eq!(m.session_count(), 1);
    }

    #[test]
    fn repeated_debug_hits_the_shared_registry_within_and_across_sessions() {
        let (m, query) = manager();
        let run_debug = |id: SessionId| {
            let s = m.session(id).unwrap();
            let mut s = s.lock().unwrap();
            s.dashboard_mut().run_query(&query).unwrap();
            let outputs: Vec<usize> = (0..s.dashboard().result().unwrap().len()).collect();
            s.dashboard_mut().select_outputs(outputs);
            s.dashboard_mut().set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 4.0));
            let (_, hit) = s.debug_cached_hit(m.registry()).unwrap();
            hit
        };
        let a = m.open_session();
        assert!(!run_debug(a), "first explain ever must build");
        assert!(run_debug(a), "second explain in the same session must hit");
        let b = m.open_session();
        assert!(run_debug(b), "another session asking the same question must hit");

        // One aggregate-cache build total; the two repeats carried the
        // identical request (same S, same ε over the same snapshot), so
        // they replayed the memoized explanation without touching tier 1.
        let stats = m.registry().stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.explanation_misses, 1);
        assert_eq!(stats.explanation_hits, 2);
        assert!(stats.explanation_hit_rate() > 0.6);
        assert_eq!(stats.explanation_entries, 1);
        let sa = m.session(a).unwrap();
        let sa = sa.lock().unwrap();
        assert_eq!((sa.cache_hits(), sa.cache_misses()), (1, 1));
    }

    #[test]
    fn changed_brushes_miss_the_memo_but_reuse_the_aggregate_cache() {
        let (m, query) = manager();
        let a = m.open_session();
        let sa = m.session(a).unwrap();
        let mut s = sa.lock().unwrap();
        s.dashboard_mut().run_query(&query).unwrap();
        s.dashboard_mut().set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 4.0));

        s.dashboard_mut().select_outputs(vec![0]);
        let (_, hit) = s.debug_cached_hit(m.registry()).unwrap();
        assert!(!hit, "first ever debug builds everything");

        // A different ε on the same statement: the pipeline must rerun
        // (different request), but over the retained aggregate cache.
        s.dashboard_mut().select_outputs(vec![0]);
        s.dashboard_mut().set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 5.0));
        let (_, hit) = s.debug_cached_hit(m.registry()).unwrap();
        assert!(hit, "the statement-level cache must be reused");
        let stats = m.registry().stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!((stats.explanation_misses, stats.explanation_hits), (2, 0));
        assert_eq!(stats.explanation_entries, 2);
    }

    #[test]
    fn repeated_sharded_debugs_reuse_one_retained_partition() {
        let (m, query) = manager();
        let a = m.open_session();
        let sa = m.session(a).unwrap();
        let mut s = sa.lock().unwrap();
        let mut config = dbwipes_core::ExplainConfig::standard();
        config.shards = 4;
        s.dashboard_mut().set_explain_config(config);
        s.dashboard_mut().run_query(&query).unwrap();
        let outputs: Vec<usize> = (0..s.dashboard().result().unwrap().len()).collect();

        // First sharded explain: the partition tier misses and builds.
        s.dashboard_mut().select_outputs(outputs.clone());
        s.dashboard_mut().set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 4.0));
        s.debug_cached(m.registry()).unwrap();
        let stats = m.registry().stats();
        assert_eq!((stats.partition_hits, stats.partition_misses), (0, 1));

        // A different ε is a different request (the explanation memo
        // misses, the pipeline reruns) over the same table data — the
        // sharded ranking must reuse the retained partition, not rebuild.
        s.dashboard_mut().select_outputs(outputs);
        s.dashboard_mut().set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 5.0));
        s.debug_cached(m.registry()).unwrap();
        let stats = m.registry().stats();
        assert_eq!((stats.partition_hits, stats.partition_misses), (1, 1));
        assert_eq!(stats.partition_entries, 1);
        assert_eq!((stats.explanation_hits, stats.explanation_misses), (0, 2));
    }

    fn reading(sensor: i64, temp: f64) -> Vec<Value> {
        // Schema: sensorid, epoch, hour, window, temp, humidity, light,
        // voltage. Everything lands in window 0.
        vec![
            Value::Int(sensor),
            Value::Int(0),
            Value::Int(0),
            Value::Int(0),
            Value::Float(temp),
            Value::Float(40.0),
            Value::Float(300.0),
            Value::Float(2.5),
        ]
    }

    #[test]
    fn stream_append_is_all_or_nothing_and_advances_only_the_appended_epoch() {
        let (m, _) = manager();
        let before = {
            let base = m.session(m.open_session()).unwrap();
            let s = base.lock().unwrap();
            let t = s.dashboard().backend().catalog().table_arc("readings").unwrap();
            (t.num_rows(), t.epoch())
        };

        // A malformed row anywhere in the payload rejects the whole command.
        let mut bad = reading(1, 50.0);
        bad.truncate(3);
        assert!(m.stream_append("readings", vec![reading(1, 50.0), bad]).is_err());
        assert!(m.stream_append("missing", vec![reading(1, 50.0)]).is_err());
        let t = {
            let base = m.session(m.open_session()).unwrap();
            let s = base.lock().unwrap();
            s.dashboard().backend().catalog().table_arc("readings").unwrap()
        };
        assert_eq!((t.num_rows(), t.epoch()), before, "failed appends must not mutate");

        // A valid stream lands in batch-size chunks, appended-epoch only.
        std::env::set_var("DBWIPES_APPEND_BATCH", "2");
        let rows: Vec<Vec<Value>> = (0..5).map(|i| reading(i, 50.0)).collect();
        let report = m.stream_append("readings", rows).unwrap();
        std::env::remove_var("DBWIPES_APPEND_BATCH");
        assert_eq!(report.appended, 5);
        assert_eq!(report.batches, 3);
        assert_eq!(report.total_rows, before.0 + 5);
        let base = m.base.read().unwrap().table_arc("readings").unwrap();
        assert_eq!(base.epoch().structural, before.1.structural);
        assert!(base.epoch().appended > before.1.appended);
        assert!(base.epoch().is_append_descendant_of(before.1));

        // The empty stream is a validated no-op.
        let report = m.stream_append("readings", Vec::new()).unwrap();
        assert_eq!((report.appended, report.batches, report.sessions_refreshed), (0, 0, 0));
    }

    #[test]
    fn stream_append_refreshes_brushing_sessions_through_absorbed_caches() {
        let (m, query) = manager();
        // Session A is mid-investigation: brushed outputs, picked ε,
        // explained once. Session B is idle (no query).
        let a = m.open_session();
        let b = m.open_session();
        let sa = m.session(a).unwrap();
        {
            let mut s = sa.lock().unwrap();
            s.dashboard_mut().run_query(&query).unwrap();
            let outputs: Vec<usize> = (0..s.dashboard().result().unwrap().len()).collect();
            s.dashboard_mut().select_outputs(outputs);
            s.dashboard_mut().set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 4.0));
            s.debug_cached(m.registry()).unwrap();
        }
        let stats = m.registry().stats();
        assert_eq!((stats.misses, stats.append_absorbs), (1, 0));

        let rows: Vec<Vec<Value>> = (0..64).map(|i| reading(i % 20, 60.0)).collect();
        let report = m.stream_append("readings", rows).unwrap();
        assert_eq!(report.appended, 64);
        assert_eq!(report.sessions_refreshed, 2, "both open sessions adopt the snapshot");

        // The retained tier-1 cache was fast-forwarded, not rebuilt: the
        // refresh accounts as an absorb, never as a miss.
        let stats = m.registry().stats();
        assert_eq!((stats.misses, stats.append_absorbs), (1, 1));
        assert_eq!(stats.entries, 1);

        // Session A's displayed result is bit-identical to a cold
        // execution over the grown table, selections intact.
        let grown = m.base.read().unwrap().table_arc("readings").unwrap();
        {
            let s = sa.lock().unwrap();
            let shown = s.dashboard().result().unwrap();
            assert_eq!(
                s.dashboard().backend().catalog().table("readings").unwrap().epoch(),
                grown.epoch()
            );
            let mut fresh_catalog = Catalog::new();
            fresh_catalog.register((*grown).clone()).unwrap();
            let fresh = dbwipes_core::DbWipes::with_catalog(fresh_catalog).query(&query).unwrap();
            assert_eq!(shown.rows, fresh.rows);
            assert_eq!(shown.group_keys, fresh.group_keys);
            assert!(!s.dashboard().selected_outputs().is_empty());
            assert_eq!(s.dashboard().state(), dbwipes_dashboard::SessionState::OutputsSelected);
        }
        // Session B silently follows the snapshot.
        let sb = m.session(b).unwrap();
        let s = sb.lock().unwrap();
        let tb = s.dashboard().backend().catalog().table_arc("readings").unwrap();
        assert!(Arc::ptr_eq(&tb, &grown));

        // A follow-up debug in session A runs over the absorbed cache: no
        // new tier-1 miss appears.
        drop(s);
        {
            let mut s = sa.lock().unwrap();
            s.dashboard_mut().set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 4.5));
            s.debug_cached(m.registry()).unwrap();
        }
        let stats = m.registry().stats();
        assert_eq!(stats.misses, 1, "appends must not cause tier-1 rebuilds");
    }

    #[test]
    fn sessions_on_private_copies_keep_their_snapshot_across_appends() {
        let (m, query) = manager();
        let a = m.open_session();
        let sa = m.session(a).unwrap();
        {
            let mut s = sa.lock().unwrap();
            s.dashboard_mut().run_query(&query).unwrap();
            // The session privately soft-deletes a row: its snapshot is no
            // longer an append-ancestor of anything the base produces.
            s.dashboard_mut()
                .backend_mut()
                .catalog_mut()
                .table_mut("readings")
                .unwrap()
                .delete_row(dbwipes_storage::RowId(0))
                .unwrap();
        }
        let report = m.stream_append("readings", vec![reading(1, 50.0)]).unwrap();
        assert_eq!(report.appended, 1);
        assert_eq!(report.sessions_refreshed, 0, "a diverged session keeps its private copy");
        let s = sa.lock().unwrap();
        let t = s.dashboard().backend().catalog().table_arc("readings").unwrap();
        assert_eq!(t.visible_rows(), t.num_rows() - 1, "private delete still in effect");
    }

    #[test]
    fn reregistering_a_table_invalidates_and_leaves_open_sessions_on_their_snapshot() {
        let (m, query) = manager();
        let a = m.open_session();
        let sa = m.session(a).unwrap();
        {
            let mut s = sa.lock().unwrap();
            s.dashboard_mut().run_query(&query).unwrap();
            s.dashboard_mut().select_outputs(vec![0]);
            s.dashboard_mut().set_metric(dbwipes_core::ErrorMetric::too_high("std_temp", 0.0));
            s.debug_cached(m.registry()).unwrap();
        }
        assert_eq!(m.registry().len(), 1);

        // Replace the table with a fresh (different) dataset.
        let ds2 = generate_sensor(&SensorConfig { num_readings: 1_350, ..SensorConfig::small() });
        m.register_table(ds2.table.clone());
        assert_eq!(m.registry().len(), 0, "re-registration evicts the table's caches");
        assert_eq!(m.table_names(), vec!["readings".to_string()]);

        // The open session still works over its original snapshot...
        let rows_a = {
            let mut s = sa.lock().unwrap();
            s.dashboard_mut().run_query(&query).unwrap().len()
        };
        // ...while a new session sees the replacement table.
        let b = m.open_session();
        let sb = m.session(b).unwrap();
        let rows_b = {
            let mut s = sb.lock().unwrap();
            s.dashboard_mut().run_query(&query).unwrap().len()
        };
        assert!(rows_a >= rows_b, "old snapshot has more readings ({rows_a} vs {rows_b})");
    }
}

//! A minimal, dependency-free JSON value type with a parser and writer.
//!
//! The container this workspace builds in has no network access, so
//! `serde`/`serde_json` are unavailable; the protocol only needs the small
//! subset implemented here (RFC 8259 values, UTF-8 input, `\uXXXX` escapes
//! including surrogate pairs). Numbers are kept as `f64`, which is exact
//! for every integer the protocol carries (row ids, session ids, counts
//! are all far below 2⁵³).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Ordered map, so serialization is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// A member of an object (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions
    /// and negatives — the shape of every id in the protocol).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity; null is the conventional stand-in.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain characters at once.
                    // The input is a &str, so the bytes are valid UTF-8 by
                    // construction, and the run delimiters (`"`, `\`,
                    // control bytes) are all < 0x80 — they can never be a
                    // byte *inside* a multi-byte sequence, so stopping on
                    // them cannot split a character. (Per-character
                    // consumption here used to re-validate the entire
                    // remaining input each step: O(n²) on the large
                    // documents the `batch` command carries.)
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        if b < 0x20 {
                            return Err(format!("raw control character at byte {}", self.pos));
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(run);
                }
            }
        }
    }

    /// Reads exactly four hex digits starting at the current position (the
    /// caller has already consumed the `\u` marker).
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos;
        let slice =
            self.bytes.get(start..start + 4).ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(slice).map_err(|_| "invalid \\u escape".to_string())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = start + 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) -> String {
        Json::parse(text).unwrap().to_string()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("  \"hi\"  ").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(
            round_trip(r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#),
            r#"{"a":[1,2,{"b":null}],"c":{"d":true}}"#
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""line\nquote\"slash\\tab\tunicode\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "line\nquote\"slash\\tab\tunicodeé😀");
        let rendered = v.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\ud800\"",
            "nan",
            "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn number_rendering_is_integer_exact() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.25).to_string(), "3.25");
        assert_eq!(Json::Num(-0.0).to_string(), "0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(1e18).to_string(), "1000000000000000000");
    }

    #[test]
    fn typed_accessors() {
        let v = Json::parse(r#"{"n":7,"frac":7.5,"neg":-1,"s":"x","b":false,"a":[]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("frac").unwrap().as_u64(), None);
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
        assert_eq!(v.get("frac").unwrap().as_f64(), Some(7.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("a").unwrap().as_array().unwrap().is_empty());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}

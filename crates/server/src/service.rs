//! Command dispatch: one request line in, one response line out.
//!
//! [`SessionManager::handle_line`] is the whole server loop's body; the
//! stdio and TCP front-ends in the `dbwipes-server` binary (and the tests)
//! just shuttle lines to it. Keeping the transport out of the dispatch
//! means every protocol behaviour is testable without sockets.

use crate::json::Json;
use crate::manager::{ServerSession, SessionId, SessionManager};
use crate::protocol::{error_response, ok_response, parse_request, Command, Request};
use dbwipes_core::{ComponentTimings, CoreError, Explanation, MetricKind};
use dbwipes_dashboard::{PointRef, ScatterSeries};
use dbwipes_engine::QueryResult;
use dbwipes_storage::Value;

impl SessionManager {
    /// Parses and executes one request line, returning the response line
    /// (without a trailing newline). Never panics on malformed input —
    /// every failure becomes an `ok:false` reply.
    pub fn handle_line(&self, line: &str) -> String {
        let request = match parse_request(line) {
            Ok(request) => request,
            Err(e) => return error_response(None, &e),
        };
        let id = request.id.clone();
        match self.dispatch(request) {
            Ok(fields) => ok_response(id.as_ref(), fields),
            Err(message) => error_response(id.as_ref(), &message),
        }
    }

    fn dispatch(&self, request: Request) -> Result<Vec<(&'static str, Json)>, String> {
        match request.command {
            Command::Ping => Ok(vec![("pong", Json::Bool(true))]),
            Command::Tables => Ok(vec![(
                "tables",
                Json::Arr(self.table_names().into_iter().map(Json::Str).collect()),
            )]),
            Command::Sessions => Ok(vec![(
                "sessions",
                Json::Arr(self.session_ids().iter().map(|s| Json::num(s.0 as f64)).collect()),
            )]),
            Command::Stats => {
                let stats = self.registry().stats();
                Ok(vec![
                    ("sessions", Json::num(self.session_count() as f64)),
                    (
                        "cache",
                        Json::obj(vec![
                            ("hits", Json::num(stats.hits as f64)),
                            ("misses", Json::num(stats.misses as f64)),
                            ("evictions", Json::num(stats.evictions as f64)),
                            ("invalidations", Json::num(stats.invalidations as f64)),
                            ("entries", Json::num(stats.entries as f64)),
                            ("hit_rate", Json::num(stats.hit_rate())),
                            ("explanation_hits", Json::num(stats.explanation_hits as f64)),
                            ("explanation_misses", Json::num(stats.explanation_misses as f64)),
                            (
                                "explanation_evictions",
                                Json::num(stats.explanation_evictions as f64),
                            ),
                            ("explanation_entries", Json::num(stats.explanation_entries as f64)),
                            ("explanation_hit_rate", Json::num(stats.explanation_hit_rate())),
                        ]),
                    ),
                ])
            }
            Command::OpenSession => {
                let id = self.open_session();
                Ok(vec![("session", Json::num(id.0 as f64))])
            }
            Command::CloseSession(s) => {
                if self.close_session(SessionId(s)) {
                    Ok(vec![("closed", Json::num(s as f64))])
                } else {
                    Err(format!("no such session {s}"))
                }
            }
            command => {
                let s = command.session().expect("all remaining commands address a session");
                let handle =
                    self.session(SessionId(s)).ok_or_else(|| format!("no such session {s}"))?;
                let mut session = handle.lock().expect("session lock poisoned");
                session.record_command();
                self.session_command(&mut session, command)
            }
        }
    }

    fn session_command(
        &self,
        session: &mut ServerSession,
        command: Command,
    ) -> Result<Vec<(&'static str, Json)>, String> {
        let core = |e: CoreError| e.to_string();
        match command {
            Command::RunQuery { sql, .. } => {
                let result = session.dashboard_mut().run_query(&sql).map_err(core)?;
                Ok(result_fields(result))
            }
            Command::Plot { x, y, .. } => {
                let series = session
                    .dashboard()
                    .plot(&x, &y)
                    .ok_or("nothing to plot (no result, or unknown columns)")?;
                Ok(vec![("series", series_json(&series))])
            }
            Command::Zoom { x, y, .. } => {
                let series = session
                    .dashboard()
                    .zoom(&x, &y)
                    .ok_or("nothing to zoom into (no selected outputs, or unknown columns)")?;
                Ok(vec![("series", series_json(&series))])
            }
            Command::BrushOutputs { x, y, brush, .. } => {
                let selected = session.dashboard_mut().brush_outputs(&x, &y, brush);
                Ok(vec![(
                    "selected",
                    Json::Arr(selected.into_iter().map(|i| Json::num(i as f64)).collect()),
                )])
            }
            Command::BrushInputs { x, y, brush, .. } => {
                let selected = session.dashboard_mut().brush_inputs(&x, &y, brush);
                Ok(vec![(
                    "selected",
                    Json::Arr(selected.into_iter().map(|r| Json::num(r.0 as f64)).collect()),
                )])
            }
            Command::MetricChoices { column, .. } => {
                let choices = session.dashboard().metric_choices(&column);
                Ok(vec![(
                    "choices",
                    Json::Arr(
                        choices
                            .iter()
                            .map(|c| {
                                // kind/value mirror `set_metric`'s request
                                // fields, so a client can echo a choice
                                // straight back without parsing the label.
                                let (kind, value) = match c.metric.kind {
                                    MetricKind::TooHigh { threshold } => ("too_high", threshold),
                                    MetricKind::TooLow { threshold } => ("too_low", threshold),
                                    MetricKind::NotEqualTo { expected } => {
                                        ("not_equal_to", expected)
                                    }
                                };
                                Json::obj(vec![
                                    ("label", Json::str(&c.label)),
                                    ("column", Json::str(&c.metric.column)),
                                    ("kind", Json::str(kind)),
                                    ("value", Json::num(value)),
                                ])
                            })
                            .collect(),
                    ),
                )])
            }
            Command::SetMetric { metric, .. } => {
                let label = metric.to_string();
                session.dashboard_mut().set_metric(metric);
                Ok(vec![("metric", Json::str(label))])
            }
            Command::Debug(_) => {
                let (explanation, cache_hit) =
                    session.debug_cached(self.registry()).map_err(core)?;
                let mut fields = explanation_fields(explanation);
                fields.push(("cache_hit", Json::Bool(cache_hit)));
                Ok(fields)
            }
            Command::ClickPredicate { index, .. } => {
                let result = session.dashboard_mut().click_predicate(index).map_err(core)?;
                let mut fields = result_fields(result);
                fields.push(applied_field(session));
                Ok(fields)
            }
            Command::Undo(_) => {
                let result = session.dashboard_mut().undo_clean().map_err(core)?;
                let mut fields = result_fields(result);
                fields.push(applied_field(session));
                Ok(fields)
            }
            Command::State(_) => {
                let d = session.dashboard();
                let mut fields = vec![
                    ("state", Json::str(format!("{:?}", d.state()))),
                    ("sql", Json::str(d.current_sql())),
                    ("selected_outputs", Json::num(d.selected_outputs().len() as f64)),
                    ("selected_inputs", Json::num(d.selected_inputs().len() as f64)),
                    ("commands", Json::num(session.commands() as f64)),
                    ("cache_hits", Json::num(session.cache_hits() as f64)),
                    ("cache_misses", Json::num(session.cache_misses() as f64)),
                ];
                fields.push(applied_field(session));
                Ok(fields)
            }
            Command::Ping
            | Command::Tables
            | Command::Stats
            | Command::Sessions
            | Command::OpenSession
            | Command::CloseSession(_) => unreachable!("handled by dispatch"),
        }
    }
}

fn applied_field(session: &ServerSession) -> (&'static str, Json) {
    (
        "applied_predicates",
        Json::Arr(
            session
                .dashboard()
                .applied_predicates()
                .iter()
                .map(|p| Json::str(p.to_string()))
                .collect(),
        ),
    )
}

fn value_json(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::num(*i as f64),
        Value::Float(f) => Json::num(*f),
        Value::Timestamp(t) => Json::num(*t as f64),
        Value::Str(s) => Json::str(s.clone()),
    }
}

fn result_fields(result: &QueryResult) -> Vec<(&'static str, Json)> {
    vec![
        ("sql", Json::str(result.statement.to_sql())),
        ("columns", Json::Arr(result.column_names().into_iter().map(Json::Str).collect())),
        (
            "rows",
            Json::Arr(
                result
                    .rows
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(value_json).collect()))
                    .collect(),
            ),
        ),
        ("row_count", Json::num(result.len() as f64)),
    ]
}

fn series_json(series: &ScatterSeries) -> Json {
    Json::obj(vec![
        ("x", Json::str(series.x_label.clone())),
        ("y", Json::str(series.y_label.clone())),
        (
            "points",
            Json::Arr(
                series
                    .points
                    .iter()
                    .map(|p| {
                        let (kind, reference) = match p.reference {
                            PointRef::Output(i) => ("output", i),
                            PointRef::Input(r) => ("input", r.0),
                        };
                        Json::obj(vec![
                            ("x", Json::num(p.x)),
                            ("y", Json::num(p.y)),
                            ("kind", Json::str(kind)),
                            ("ref", Json::num(reference as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn timings_json(timings: &ComponentTimings) -> Json {
    Json::obj(vec![
        ("preprocess_ms", Json::num(timings.preprocess_ms)),
        ("enumerate_ms", Json::num(timings.enumerate_ms)),
        ("predicates_ms", Json::num(timings.predicates_ms)),
        ("rank_ms", Json::num(timings.rank_ms)),
        ("total_ms", Json::num(timings.total_ms())),
    ])
}

fn explanation_fields(explanation: &Explanation) -> Vec<(&'static str, Json)> {
    vec![
        (
            "predicates",
            Json::Arr(
                explanation
                    .predicates
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        Json::obj(vec![
                            ("index", Json::num(i as f64)),
                            ("predicate", Json::str(p.predicate.to_string())),
                            ("score", Json::num(p.score)),
                            ("improvement", Json::num(p.improvement)),
                            ("f1", Json::num(p.example_f1)),
                            ("removes", Json::num(p.matched_rows as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("base_error", Json::num(explanation.base_error)),
        ("timings", timings_json(&explanation.timings)),
    ]
}

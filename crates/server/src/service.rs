//! Command dispatch: one request line in, one response line out.
//!
//! [`SessionManager::handle_line`] is the whole server loop's body; the
//! stdio and TCP front-ends in the `dbwipes-server` binary (and the tests)
//! just shuttle lines to it. Keeping the transport out of the dispatch
//! means every protocol behaviour is testable without sockets.

use crate::executor::PoolStats;
use crate::json::Json;
use crate::manager::{ServerSession, SessionId, SessionManager};
use crate::protocol::{ok_response_value, parse_request, wire_error_response_value};
use crate::protocol::{Command, Request, WireError, PROTOCOL_VERSION};
use dbwipes_core::{ComponentTimings, CoreError, Explanation, MetricKind};
use dbwipes_dashboard::{PointRef, ScatterSeries};
use dbwipes_engine::QueryResult;
use dbwipes_storage::{ConditionBitmapCache, Value};

impl SessionManager {
    /// Parses and executes one request line, returning the response line
    /// (without a trailing newline). Never panics on malformed input —
    /// every failure becomes an `ok:false` reply.
    pub fn handle_line(&self, line: &str) -> String {
        let request = match parse_request(line) {
            Ok(request) => request,
            Err(e) => return wire_error_response_value(None, &WireError::from(e)).to_string(),
        };
        self.handle_request(request).to_string()
    }

    /// Executes one parsed request, returning the response object. This is
    /// [`SessionManager::handle_line`] minus the wire codec — `batch`
    /// execution reuses it per element, collecting the objects into one
    /// `results` array.
    pub fn handle_request(&self, request: Request) -> Json {
        let id = request.id.clone();
        match self.dispatch(request) {
            Ok(fields) => ok_response_value(id.as_ref(), fields),
            Err(error) => wire_error_response_value(id.as_ref(), &error),
        }
    }

    fn dispatch(&self, request: Request) -> Result<Vec<(&'static str, Json)>, WireError> {
        match request.command {
            Command::Ping => Ok(vec![
                ("pong", Json::Bool(true)),
                ("protocol_version", Json::num(PROTOCOL_VERSION as f64)),
            ]),
            Command::Tables => Ok(vec![(
                "tables",
                Json::Arr(self.table_names().into_iter().map(Json::Str).collect()),
            )]),
            Command::Sessions => Ok(vec![(
                "sessions",
                Json::Arr(self.session_ids().iter().map(|s| Json::num(s.0 as f64)).collect()),
            )]),
            Command::Stats => {
                let stats = self.registry().stats();
                let mut fields = vec![
                    ("protocol_version", Json::num(PROTOCOL_VERSION as f64)),
                    ("sessions", Json::num(self.session_count() as f64)),
                    // The shard count sessions opened now would run their
                    // explain pipeline with (the `DBWIPES_SHARDS` knob).
                    ("shards", Json::num(SessionManager::default_shards() as f64)),
                    (
                        "cache",
                        Json::obj(vec![
                            ("hits", Json::num(stats.hits as f64)),
                            ("misses", Json::num(stats.misses as f64)),
                            ("append_absorbs", Json::num(stats.append_absorbs as f64)),
                            ("evictions", Json::num(stats.evictions as f64)),
                            ("invalidations", Json::num(stats.invalidations as f64)),
                            ("entries", Json::num(stats.entries as f64)),
                            ("hit_rate", Json::num(stats.hit_rate())),
                            ("explanation_hits", Json::num(stats.explanation_hits as f64)),
                            ("explanation_misses", Json::num(stats.explanation_misses as f64)),
                            (
                                "explanation_evictions",
                                Json::num(stats.explanation_evictions as f64),
                            ),
                            ("explanation_entries", Json::num(stats.explanation_entries as f64)),
                            ("explanation_hit_rate", Json::num(stats.explanation_hit_rate())),
                            ("partition_hits", Json::num(stats.partition_hits as f64)),
                            ("partition_misses", Json::num(stats.partition_misses as f64)),
                            ("partition_absorbs", Json::num(stats.partition_absorbs as f64)),
                            ("partition_evictions", Json::num(stats.partition_evictions as f64)),
                            ("partition_entries", Json::num(stats.partition_entries as f64)),
                        ]),
                    ),
                    // Process-wide counters of the storage layer's
                    // condition-bitmap caches (the vectorized ranker warms
                    // one per ranking; conditions shared across candidate
                    // conjunctions hit).
                    ("condition_bitmaps", condition_bitmaps_json()),
                    // Process-wide counters of the vectorized boolean
                    // predicate algebra: filters/WHERE clauses evaluated
                    // through compiled bitmap DAGs vs. the scalar
                    // row-walk fallback.
                    ("bool_algebra", bool_algebra_json()),
                ];
                // Durable-storage counters. Always present so dashboards
                // can probe durability uniformly: an unattached manager
                // (no --data-dir) reports all-zero counters.
                let storage = self.storage().map(|r| r.counters()).unwrap_or_default();
                fields.push((
                    "storage",
                    Json::obj(vec![
                        ("attached", Json::Bool(self.storage().is_some())),
                        ("snapshot_saves", Json::num(storage.snapshot_saves as f64)),
                        ("snapshot_loads", Json::num(storage.snapshot_loads as f64)),
                        ("bytes_on_disk", Json::num(storage.bytes_on_disk as f64)),
                        ("rehydrated_caches", Json::num(storage.rehydrated_caches as f64)),
                    ]),
                ));
                // Fault-tolerance vitals. Always present: a manager with no
                // storage attached reports a permanently healthy block, so
                // monitoring probes one shape everywhere.
                let health = self.storage().map(|r| r.health()).unwrap_or_default();
                fields.push((
                    "health",
                    Json::obj(vec![
                        ("degraded", Json::Bool(health.degraded)),
                        (
                            "last_persist_error",
                            health.last_persist_error.map(Json::Str).unwrap_or(Json::Null),
                        ),
                        ("retries", Json::num(health.retries as f64)),
                        ("consecutive_failures", Json::num(health.consecutive_failures as f64)),
                        ("degraded_entries", Json::num(health.degraded_entries as f64)),
                        ("panics_caught", Json::num(self.panics_caught() as f64)),
                        ("quarantined_sessions", Json::num(self.quarantined_sessions() as f64)),
                    ]),
                ));
                // Executor counters, when a pooled TCP front-end serves
                // this manager (stdio mode has no pool to report).
                if let Some(pool) = self.pool_stats() {
                    fields.push(("pool", pool_json(pool)));
                }
                Ok(fields)
            }
            Command::OpenSession => {
                let id = self.open_session();
                Ok(vec![("session", Json::num(id.0 as f64))])
            }
            Command::CloseSession(s) => {
                if self.close_session(SessionId(s)) {
                    Ok(vec![("closed", Json::num(s as f64))])
                } else {
                    Err(format!("no such session {s}").into())
                }
            }
            Command::Shutdown => {
                self.request_shutdown();
                Ok(vec![("shutting_down", Json::Bool(true))])
            }
            Command::Batch(commands) => {
                if let Some(pool) = self.pool_stats() {
                    pool.record_batch();
                }
                Ok(self.run_batch(commands))
            }
            Command::StreamAppend { table, rows } => {
                let report = self.stream_append(&table, rows).map_err(|e| e.to_string())?;
                Ok(vec![
                    ("table", Json::str(table)),
                    ("appended", Json::num(report.appended as f64)),
                    ("batches", Json::num(report.batches as f64)),
                    ("total_rows", Json::num(report.total_rows as f64)),
                    ("sessions_refreshed", Json::num(report.sessions_refreshed as f64)),
                    ("durable", Json::Bool(report.durable)),
                ])
            }
            command => {
                let s = command.session().expect("all remaining commands address a session");
                let sid = SessionId(s);
                self.check_quarantine(sid)?;
                let handle = self
                    .session(sid)
                    .ok_or_else(|| WireError::from(format!("no such session {s}")))?;
                // The guard lives *outside* the panic boundary: quarantine,
                // not mutex poisoning, is how a broken session is fenced
                // off, so siblings (and this very map entry) stay lockable.
                let mut session = match handle.lock() {
                    Ok(guard) => guard,
                    Err(_) => return Err(self.quarantine_poisoned(sid)),
                };
                session.record_command();
                self.isolated_session_command(sid, &mut session, command)
            }
        }
    }

    /// Rejects commands addressed to a quarantined session with a
    /// structured `quarantined` error carrying the original reason.
    fn check_quarantine(&self, sid: SessionId) -> Result<(), WireError> {
        match self.quarantine_reason(sid) {
            Some(reason) => Err(WireError::quarantined(format!(
                "session {} is quarantined: {reason}; close it and open a new one",
                sid.0
            ))),
            None => Ok(()),
        }
    }

    /// Quarantines a session whose mutex was poisoned (its holder panicked
    /// while unwinding elsewhere) and builds the reply for this command.
    fn quarantine_poisoned(&self, sid: SessionId) -> WireError {
        self.quarantine_session(sid, "session mutex poisoned");
        WireError::quarantined(format!(
            "session {} is quarantined: session mutex poisoned; close it and open a new one",
            sid.0
        ))
    }

    /// Runs one session command behind a panic boundary. A panicking
    /// handler costs nothing but this one command: the panic is caught,
    /// counted, the session quarantined (its state may be torn mid-write),
    /// and the caller gets a structured `internal` error to forward. The
    /// worker thread, its connection, and every sibling session survive.
    fn isolated_session_command(
        &self,
        sid: SessionId,
        session: &mut ServerSession,
        command: Command,
    ) -> Result<Vec<(&'static str, Json)>, WireError> {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.session_command(session, command)
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => {
                self.record_panic();
                let reason = panic_message(payload.as_ref());
                self.quarantine_session(sid, &reason);
                Err(WireError::internal(format!("handler panicked: {reason}")))
            }
        }
    }

    /// Executes a batch back to back, one response object per command.
    ///
    /// A run of *consecutive* commands addressing the same session is
    /// served under a single session-lock acquisition — the point of
    /// `batch`: a 50-command dashboard replay pays for one route + lock
    /// instead of fifty. A failing command answers `ok:false` like its
    /// top-level form would and the batch continues; the caller correlates
    /// by position (or per-command ids).
    fn run_batch(&self, commands: Vec<Request>) -> Vec<(&'static str, Json)> {
        let total = commands.len();
        let mut results = Vec::with_capacity(total);
        let mut queue = commands.into_iter().peekable();
        while let Some(request) = queue.next() {
            // Commands the top-level dispatcher must handle (service-level
            // commands and close_session) go through it one at a time.
            let Some(target) = session_command_target(&request.command) else {
                results.push(self.handle_request(request));
                continue;
            };
            let sid = SessionId(target);
            if let Err(error) = self.check_quarantine(sid) {
                results.push(wire_error_response_value(request.id.as_ref(), &error));
                continue;
            }
            let Some(handle) = self.session(sid) else {
                results.push(wire_error_response_value(
                    request.id.as_ref(),
                    &WireError::from(format!("no such session {target}")),
                ));
                continue;
            };
            let mut session = match handle.lock() {
                Ok(guard) => guard,
                Err(_) => {
                    let error = self.quarantine_poisoned(sid);
                    results.push(wire_error_response_value(request.id.as_ref(), &error));
                    continue;
                }
            };
            let mut run = Some(request);
            while let Some(request) = run.take() {
                session.record_command();
                let reply = match self.isolated_session_command(sid, &mut session, request.command)
                {
                    Ok(fields) => ok_response_value(request.id.as_ref(), fields),
                    Err(error) => wire_error_response_value(request.id.as_ref(), &error),
                };
                results.push(reply);
                // Pull the next command into the same lock acquisition
                // while it keeps addressing this session — unless this
                // command quarantined the session (a caught panic), in
                // which case the run breaks and the remaining commands
                // answer `quarantined` through the outer routing.
                if self.quarantine_reason(sid).is_none()
                    && queue.peek().map(|next| session_command_target(&next.command))
                        == Some(Some(target))
                {
                    run = queue.next();
                }
            }
        }
        vec![("count", Json::num(total as f64)), ("results", Json::Arr(results))]
    }

    fn session_command(
        &self,
        session: &mut ServerSession,
        command: Command,
    ) -> Result<Vec<(&'static str, Json)>, WireError> {
        let core = |e: CoreError| WireError::from(e.to_string());
        match command {
            Command::RunQuery { sql, .. } => {
                let result = session.dashboard_mut().run_query(&sql).map_err(core)?;
                Ok(result_fields(result))
            }
            Command::Plot { x, y, .. } => {
                let series = session
                    .dashboard()
                    .plot(&x, &y)
                    .ok_or("nothing to plot (no result, or unknown columns)")?;
                Ok(vec![("series", series_json(&series))])
            }
            Command::Zoom { x, y, .. } => {
                let series = session
                    .dashboard()
                    .zoom(&x, &y)
                    .ok_or("nothing to zoom into (no selected outputs, or unknown columns)")?;
                Ok(vec![("series", series_json(&series))])
            }
            Command::BrushOutputs { x, y, brush, .. } => {
                let selected = session.dashboard_mut().brush_outputs(&x, &y, brush);
                Ok(vec![(
                    "selected",
                    Json::Arr(selected.into_iter().map(|i| Json::num(i as f64)).collect()),
                )])
            }
            Command::BrushInputs { x, y, brush, .. } => {
                let selected = session.dashboard_mut().brush_inputs(&x, &y, brush);
                Ok(vec![(
                    "selected",
                    Json::Arr(selected.into_iter().map(|r| Json::num(r.0 as f64)).collect()),
                )])
            }
            Command::MetricChoices { column, .. } => {
                let choices = session.dashboard().metric_choices(&column);
                Ok(vec![(
                    "choices",
                    Json::Arr(
                        choices
                            .iter()
                            .map(|c| {
                                // kind/value mirror `set_metric`'s request
                                // fields, so a client can echo a choice
                                // straight back without parsing the label.
                                let (kind, value) = match c.metric.kind {
                                    MetricKind::TooHigh { threshold } => ("too_high", threshold),
                                    MetricKind::TooLow { threshold } => ("too_low", threshold),
                                    MetricKind::NotEqualTo { expected } => {
                                        ("not_equal_to", expected)
                                    }
                                };
                                Json::obj(vec![
                                    ("label", Json::str(&c.label)),
                                    ("column", Json::str(&c.metric.column)),
                                    ("kind", Json::str(kind)),
                                    ("value", Json::num(value)),
                                ])
                            })
                            .collect(),
                    ),
                )])
            }
            Command::SetMetric { metric, .. } => {
                let label = metric.to_string();
                session.dashboard_mut().set_metric(metric);
                Ok(vec![("metric", Json::str(label))])
            }
            Command::Debug(_) => {
                let (explanation, report) = session.debug_cached(self.registry()).map_err(core)?;
                let mut fields = explanation_fields(explanation);
                fields.push(("cache_hit", Json::Bool(report.cache_hit)));
                // Memo-served replies carry `cached:true` and (by way of
                // `debug_cached`) near-zero timings — nothing ran now.
                fields.push(("cached", Json::Bool(report.memo_hit)));
                Ok(fields)
            }
            Command::ClickPredicate { index, .. } => {
                let result = session.dashboard_mut().click_predicate(index).map_err(core)?;
                let mut fields = result_fields(result);
                fields.push(applied_field(session));
                Ok(fields)
            }
            Command::Undo(_) => {
                let result = session.dashboard_mut().undo_clean().map_err(core)?;
                let mut fields = result_fields(result);
                fields.push(applied_field(session));
                Ok(fields)
            }
            Command::State(_) => {
                let d = session.dashboard();
                let mut fields = vec![
                    ("state", Json::str(format!("{:?}", d.state()))),
                    ("sql", Json::str(d.current_sql())),
                    ("selected_outputs", Json::num(d.selected_outputs().len() as f64)),
                    ("selected_inputs", Json::num(d.selected_inputs().len() as f64)),
                    ("commands", Json::num(session.commands() as f64)),
                    ("cache_hits", Json::num(session.cache_hits() as f64)),
                    ("cache_misses", Json::num(session.cache_misses() as f64)),
                ];
                fields.push(applied_field(session));
                Ok(fields)
            }
            Command::Crash(_) => {
                // Test-only hook for the panic-isolation machinery: gated
                // at execution time so production servers treat it as a
                // plain user error while chaos tests (which set
                // `DBWIPES_ENABLE_CRASH=1`) get a real panic to catch.
                if crash_enabled() {
                    panic!("deliberate crash requested by the crash command");
                }
                Err("crash is disabled; set DBWIPES_ENABLE_CRASH=1 to enable this test hook".into())
            }
            Command::Ping
            | Command::Tables
            | Command::Stats
            | Command::Sessions
            | Command::OpenSession
            | Command::CloseSession(_)
            | Command::Shutdown
            | Command::Batch(_)
            | Command::StreamAppend { .. } => unreachable!("handled by dispatch"),
        }
    }
}

/// Whether the `crash` test hook is armed (`DBWIPES_ENABLE_CRASH=1`).
/// Read per call, like every other knob, so a test can arm and disarm it.
fn crash_enabled() -> bool {
    std::env::var("DBWIPES_ENABLE_CRASH").map(|v| v.trim() == "1").unwrap_or(false)
}

/// Best-effort rendering of a caught panic payload: `panic!` with a string
/// literal or a formatted message covers practically every real panic; the
/// fallback keeps the reply structured even for exotic payloads.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The session a command addresses *through the session-command path*:
/// `Some` only for commands `session_command` serves under the session
/// lock. `close_session` addresses a session but must go through the
/// top-level dispatcher (it removes the session from the map), so it — and
/// every service-level command — answers `None`.
fn session_command_target(command: &Command) -> Option<u64> {
    match command {
        Command::CloseSession(_) => None,
        other => other.session(),
    }
}

/// Renders the storage layer's process-wide condition-bitmap cache
/// counters for the `stats` reply.
fn condition_bitmaps_json() -> Json {
    let (hits, misses) = ConditionBitmapCache::global_stats();
    let total = hits + misses;
    let hit_rate = if total == 0 { 0.0 } else { hits as f64 / total as f64 };
    Json::obj(vec![
        ("hits", Json::num(hits as f64)),
        ("misses", Json::num(misses as f64)),
        ("hit_rate", Json::num(hit_rate)),
    ])
}

/// Renders the storage layer's process-wide boolean-algebra vectorization
/// counters for the `stats` reply.
fn bool_algebra_json() -> Json {
    let (vectorized, fallbacks) = dbwipes_storage::bool_vectorization_stats();
    Json::obj(vec![
        ("vectorized", Json::num(vectorized as f64)),
        ("fallbacks", Json::num(fallbacks as f64)),
    ])
}

/// Renders the pooled executor's counters for the `stats` reply.
fn pool_json(stats: &PoolStats) -> Json {
    let snapshot = stats.snapshot();
    Json::obj(vec![
        ("workers", Json::num(snapshot.workers as f64)),
        ("queue_depth", Json::num(snapshot.queue_depth as f64)),
        ("max_connections", Json::num(snapshot.max_connections as f64)),
        ("queued", Json::num(snapshot.queued as f64)),
        ("rejected", Json::num(snapshot.rejected as f64)),
        ("active_connections", Json::num(snapshot.active_connections as f64)),
        ("peak_connections", Json::num(snapshot.peak_connections as f64)),
        ("served_connections", Json::num(snapshot.served_connections as f64)),
        ("commands", Json::num(snapshot.commands as f64)),
        ("batches", Json::num(snapshot.batches as f64)),
        ("workers_resurrected", Json::num(snapshot.workers_resurrected as f64)),
    ])
}

fn applied_field(session: &ServerSession) -> (&'static str, Json) {
    (
        "applied_predicates",
        Json::Arr(
            session
                .dashboard()
                .applied_predicates()
                .iter()
                .map(|p| Json::str(p.to_string()))
                .collect(),
        ),
    )
}

fn value_json(value: &Value) -> Json {
    match value {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::num(*i as f64),
        Value::Float(f) => Json::num(*f),
        Value::Timestamp(t) => Json::num(*t as f64),
        Value::Str(s) => Json::str(s.clone()),
    }
}

fn result_fields(result: &QueryResult) -> Vec<(&'static str, Json)> {
    vec![
        ("sql", Json::str(result.statement.to_sql())),
        ("columns", Json::Arr(result.column_names().into_iter().map(Json::Str).collect())),
        (
            "rows",
            Json::Arr(
                result
                    .rows
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(value_json).collect()))
                    .collect(),
            ),
        ),
        ("row_count", Json::num(result.len() as f64)),
    ]
}

fn series_json(series: &ScatterSeries) -> Json {
    Json::obj(vec![
        ("x", Json::str(series.x_label.clone())),
        ("y", Json::str(series.y_label.clone())),
        (
            "points",
            Json::Arr(
                series
                    .points
                    .iter()
                    .map(|p| {
                        let (kind, reference) = match p.reference {
                            PointRef::Output(i) => ("output", i),
                            PointRef::Input(r) => ("input", r.0),
                        };
                        Json::obj(vec![
                            ("x", Json::num(p.x)),
                            ("y", Json::num(p.y)),
                            ("kind", Json::str(kind)),
                            ("ref", Json::num(reference as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn timings_json(timings: &ComponentTimings) -> Json {
    Json::obj(vec![
        ("preprocess_ms", Json::num(timings.preprocess_ms)),
        ("enumerate_ms", Json::num(timings.enumerate_ms)),
        ("predicates_ms", Json::num(timings.predicates_ms)),
        ("rank_ms", Json::num(timings.rank_ms)),
        ("total_ms", Json::num(timings.total_ms())),
    ])
}

fn explanation_fields(explanation: &Explanation) -> Vec<(&'static str, Json)> {
    vec![
        (
            "predicates",
            Json::Arr(
                explanation
                    .predicates
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        Json::obj(vec![
                            ("index", Json::num(i as f64)),
                            ("predicate", Json::str(p.predicate.to_string())),
                            ("score", Json::num(p.score)),
                            ("improvement", Json::num(p.improvement)),
                            ("f1", Json::num(p.example_f1)),
                            ("removes", Json::num(p.matched_rows as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("base_error", Json::num(explanation.base_error)),
        ("timings", timings_json(&explanation.timings)),
    ]
}

//! The bounded worker-pool TCP executor.
//!
//! PR 3's TCP front-end spawned one OS thread per accepted connection: no
//! cap on threads, no cap on memory, and a traffic spike degrades every
//! session at once. This module replaces it with the classic bounded
//! executor shape — built by hand on `Mutex` + `Condvar` because the
//! container is offline (same constraint that produced the [`crate::json`]
//! module):
//!
//! * a **fixed worker pool** ([`PoolConfig::workers`], default
//!   `DBWIPES_SERVER_WORKERS` or the effective parallelism) pulls accepted
//!   connections from a **bounded MPMC queue** ([`BoundedQueue`]) and
//!   serves each one to completion;
//! * **explicit backpressure**: when the queue is full — or the hard
//!   [`PoolConfig::max_connections`] cap is reached — the acceptor answers
//!   a structured `busy` reply (`{"ok":false,"error":…,"busy":true}`) and
//!   closes, instead of growing without bound. Clients treat `busy` as
//!   "retry with backoff";
//! * **idle timeouts**: a connection that stays silent for
//!   [`PoolConfig::idle_timeout`] gets a structured timeout notice and is
//!   closed, so abandoned sockets cannot pin pool slots;
//! * **graceful shutdown**: the `shutdown` ctrl-line (or
//!   [`SessionManager::request_shutdown`]) stops the acceptor, lets every
//!   admitted connection finish the commands it already sent, flushes the
//!   replies, and returns — the binary then exits 0. (A raw `SIGTERM`
//!   handler would need `unsafe` FFI, which this workspace denies; ops
//!   wrappers send the ctrl-line instead.)
//!
//! Counters ([`PoolStats`]) are shared with the [`SessionManager`] so the
//! protocol's `stats` command reports `workers` / `queued` / `rejected` /
//! `peak_connections` alongside the cache registry's numbers.
//!
//! [`serve_thread_per_connection`] keeps the old accept loop alive as the
//! measured baseline (`bench_server_pool` races the two at 1/4/16
//! concurrent clients).

use crate::json::Json;
use crate::manager::SessionManager;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recovers a mutex guard even when a previous holder panicked: the
/// executor's locks guard plain bookkeeping (queue contents, join
/// handles), which stays structurally valid across an unwind, so serving
/// beats dying. The fault-tolerance sweep (PR 10) replaced every
/// `expect("… lock poisoned")` in this module with this.
fn lock_recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// How often blocking reads and the acceptor wake up to poll the shutdown
/// flag. Short enough that a ctrl-line drains promptly, long enough to
/// cost nothing.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Hard cap on one request line's byte length. Generous for the protocol
/// (a maximal 256-command batch is well under 100 KiB) while keeping the
/// per-connection read buffer bounded — without it, a client streaming
/// newline-free bytes would grow server memory without limit, defeating
/// the executor's bounded-resources premise.
const MAX_LINE_BYTES: usize = 1 << 20;

/// Tuning knobs of the pooled executor. `Default` reads the environment
/// (`DBWIPES_SERVER_WORKERS`); the binary's flags override it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads serving connections. Defaults to
    /// `DBWIPES_SERVER_WORKERS` when set, else the effective parallelism
    /// (`DBWIPES_THREADS` / available cores).
    pub workers: usize,
    /// Connections that may wait for a worker. Queue-full admissions are
    /// answered `busy` and closed.
    pub queue_depth: usize,
    /// Hard cap on admitted (queued + in-service) connections. Admissions
    /// beyond it are answered `busy` and closed.
    pub max_connections: usize,
    /// A connection silent this long is sent a timeout notice and closed.
    pub idle_timeout: Duration,
    /// A *started but unfinished* request line older than this is sent a
    /// structured `read_timeout` notice and closed — the slow-loris
    /// defense: a client trickling a line one byte at a time cannot pin a
    /// pool slot past this deadline, no matter how regularly its bytes
    /// arrive. Defaults to `DBWIPES_READ_TIMEOUT_MS` (10s unset).
    pub read_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        let workers = std::env::var("DBWIPES_SERVER_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(dbwipes_core::effective_parallelism);
        let read_timeout_ms = std::env::var("DBWIPES_READ_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(10_000);
        PoolConfig {
            workers,
            queue_depth: 64,
            max_connections: 256,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_millis(read_timeout_ms),
        }
    }
}

impl PoolConfig {
    /// Clamps every knob to its working minimum (≥1 worker, ≥1 queue slot,
    /// cap ≥ workers so admitted work can actually be served, timeouts ≥
    /// one poll tick).
    pub fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self.max_connections = self.max_connections.max(self.workers);
        self.idle_timeout = self.idle_timeout.max(POLL_TICK);
        self.read_timeout = self.read_timeout.max(POLL_TICK);
        self
    }
}

/// Executor counters, shared between the accept loop, the workers, and the
/// [`SessionManager`]'s `stats` reply. Gauges (`queued`,
/// `active_connections`) track the current value; everything else is
/// monotonic.
#[derive(Debug)]
pub struct PoolStats {
    workers: u64,
    queue_depth: u64,
    max_connections: u64,
    queued: AtomicU64,
    rejected: AtomicU64,
    active_connections: AtomicU64,
    peak_connections: AtomicU64,
    served_connections: AtomicU64,
    commands: AtomicU64,
    batches: AtomicU64,
    workers_resurrected: AtomicU64,
}

/// A point-in-time copy of [`PoolStats`] (the `stats` reply's `pool`
/// object).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Worker threads in the pool.
    pub workers: u64,
    /// Capacity of the connection queue.
    pub queue_depth: u64,
    /// Hard connection cap.
    pub max_connections: u64,
    /// Connections currently waiting for a worker.
    pub queued: u64,
    /// Admissions answered `busy` (queue full or cap reached).
    pub rejected: u64,
    /// Admitted connections right now (queued + in service).
    pub active_connections: u64,
    /// High-water mark of `active_connections`.
    pub peak_connections: u64,
    /// Connections served to completion.
    pub served_connections: u64,
    /// Request lines executed by the pool's workers.
    pub commands: u64,
    /// `batch` requests among them (counted by the dispatch layer).
    pub batches: u64,
    /// Worker threads the supervisor respawned after finding them dead.
    /// Stays 0 in healthy operation — the in-worker panic shield already
    /// absorbs panicking connections without losing the thread.
    pub workers_resurrected: u64,
}

impl PoolStats {
    fn new(config: &PoolConfig) -> Self {
        PoolStats {
            workers: config.workers as u64,
            queue_depth: config.queue_depth as u64,
            max_connections: config.max_connections as u64,
            queued: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            active_connections: AtomicU64::new(0),
            peak_connections: AtomicU64::new(0),
            served_connections: AtomicU64::new(0),
            commands: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            workers_resurrected: AtomicU64::new(0),
        }
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            workers: self.workers,
            queue_depth: self.queue_depth,
            max_connections: self.max_connections,
            queued: self.queued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            peak_connections: self.peak_connections.load(Ordering::Relaxed),
            served_connections: self.served_connections.load(Ordering::Relaxed),
            commands: self.commands.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            workers_resurrected: self.workers_resurrected.load(Ordering::Relaxed),
        }
    }

    /// Counts one `batch` request (called by the dispatch layer, which is
    /// the only place that knows a line was a batch).
    pub(crate) fn record_batch(&self) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }

    fn connection_admitted(&self) {
        let now = self.active_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_connections.fetch_max(now, Ordering::Relaxed);
    }

    fn connection_closed(&self) {
        self.active_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A bounded multi-producer multi-consumer queue on `Mutex` + `Condvar`.
///
/// `try_push` never blocks — a full (or closed) queue hands the item back,
/// which is what turns into the protocol's `busy` reply. `pop` blocks
/// until an item arrives or the queue is closed *and* drained, so closing
/// is the worker-pool's shutdown broadcast.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues without blocking. A full or closed queue returns the item
    /// to the caller — that is the backpressure edge.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed || inner.items.len() >= inner.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed and drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap_or_else(|poison| poison.into_inner());
        }
    }

    /// Closes the queue: pushes start failing, and once the remaining
    /// items are drained every blocked `pop` returns `None`.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Serves `listener` with the bounded worker pool until graceful shutdown
/// is requested (the `shutdown` ctrl-line or
/// [`SessionManager::request_shutdown`]). Returns the pool's counters
/// after every worker has drained and joined.
pub fn serve_pooled(
    manager: Arc<SessionManager>,
    listener: TcpListener,
    config: PoolConfig,
) -> std::io::Result<Arc<PoolStats>> {
    let config = config.normalized();
    let stats = Arc::new(PoolStats::new(&config));
    // First front-end wins; a second serve over the same manager (benches
    // do this) keeps reporting the first pool's counters.
    let _ = manager.attach_pool_stats(Arc::clone(&stats));
    let queue: Arc<BoundedQueue<TcpStream>> = Arc::new(BoundedQueue::new(config.queue_depth));

    let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(
        (0..config.workers).map(|i| spawn_worker(i, &manager, &queue, &stats, &config)).collect(),
    ));

    // Worker-loss watchdog: each worker already shields itself with a
    // per-connection panic boundary, so losing a thread takes something
    // beyond a panicking handler — but if it ever happens, the supervisor
    // notices the dead slot within a few poll ticks, reaps it, and spawns
    // a replacement so pool capacity never silently decays.
    let supervisor = {
        let manager = Arc::clone(&manager);
        let queue = Arc::clone(&queue);
        let stats = Arc::clone(&stats);
        let config = config.clone();
        let workers = Arc::clone(&workers);
        std::thread::Builder::new()
            .name("dbwipes-worker-supervisor".to_string())
            .spawn(move || {
                while !manager.shutdown_requested() {
                    std::thread::sleep(4 * POLL_TICK);
                    let mut slots = lock_recover(&workers);
                    for (i, slot) in slots.iter_mut().enumerate() {
                        // During drain, workers exit on purpose; the
                        // re-check keeps the supervisor from resurrecting
                        // them into a closed queue.
                        if slot.is_finished() && !manager.shutdown_requested() {
                            let replacement = spawn_worker(i, &manager, &queue, &stats, &config);
                            let dead = std::mem::replace(slot, replacement);
                            let _ = dead.join();
                            stats.workers_resurrected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
            .expect("spawn supervisor thread")
    };

    let accept_result =
        accept_loop(&manager, &listener, |stream| admit(stream, &queue, &config, &stats));

    // Drain: stop taking work, let the workers finish what was admitted
    // (serve_connection switches to drain mode via the shutdown flag),
    // then join them. Closing the queue wakes idle workers; queued
    // connections are still popped and served before `pop` returns None.
    // `accept_loop` re-asserted the shutdown flag, so the supervisor is
    // joinable and spawns no further replacements.
    let _ = supervisor.join();
    queue.close();
    for worker in std::mem::take(&mut *lock_recover(&workers)) {
        let _ = worker.join();
    }
    // All in-flight commands have finished, so the catalog and warm state
    // are final: flush them before exiting 0. A no-op without attached
    // storage; a kill that skips this still recovers to the last durable
    // snapshot (tables are persisted eagerly at registration).
    manager.flush_storage();
    accept_result.map(|()| stats)
}

/// Spawns one pool worker: pops admitted connections and serves each to
/// completion behind a panic boundary. The session dispatcher already
/// catches handler panics, so anything that unwinds to here escaped the
/// inner boundary — the shield turns it into one lost connection (counted
/// via [`SessionManager`]'s panic counter) instead of a lost worker.
fn spawn_worker(
    i: usize,
    manager: &Arc<SessionManager>,
    queue: &Arc<BoundedQueue<TcpStream>>,
    stats: &Arc<PoolStats>,
    config: &PoolConfig,
) -> std::thread::JoinHandle<()> {
    let manager = Arc::clone(manager);
    let queue = Arc::clone(queue);
    let stats = Arc::clone(stats);
    let config = config.clone();
    std::thread::Builder::new()
        .name(format!("dbwipes-worker-{i}"))
        .spawn(move || {
            while let Some(stream) = queue.pop() {
                stats.queued.store(queue.len() as u64, Ordering::Relaxed);
                let shielded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_connection(&manager, stream, &config, &stats);
                }));
                if shielded.is_err() {
                    manager.record_panic();
                }
                stats.connection_closed();
                stats.served_connections.fetch_add(1, Ordering::Relaxed);
            }
        })
        .expect("spawn worker thread")
}

/// Runs a *blocking* accept loop until graceful shutdown, handing each
/// connection to `on_connection`. Blocking accept keeps admission latency
/// at zero (a polling acceptor adds up to a poll tick to every fresh
/// connection); a watchdog thread observes the shutdown flag and unblocks
/// the acceptor with a loopback self-connection. Always re-asserts the
/// shutdown flag before returning, so the watchdog is joinable even on an
/// accept error.
fn accept_loop(
    manager: &Arc<SessionManager>,
    listener: &TcpListener,
    mut on_connection: impl FnMut(TcpStream),
) -> std::io::Result<()> {
    let wake_addr = wake_address(listener)?;
    let watchdog = {
        let manager = Arc::clone(manager);
        std::thread::Builder::new()
            .name("dbwipes-shutdown-watchdog".to_string())
            .spawn(move || {
                while !manager.shutdown_requested() {
                    std::thread::sleep(POLL_TICK);
                }
                // Wake the blocking accept; any error just means the
                // acceptor is already gone.
                let _ = TcpStream::connect(wake_addr);
            })
            .expect("spawn watchdog thread")
    };
    let result = loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if manager.shutdown_requested() {
                    // Either the watchdog's wake-up connection or a client
                    // racing the shutdown edge; both are past admission.
                    drop(stream);
                    break Ok(());
                }
                on_connection(stream);
            }
            // A client aborting its connect while queued in the listen
            // backlog surfaces here (ECONNABORTED/ECONNRESET on Linux);
            // that is the client's failure, not the listener's — only a
            // real listener error may take the whole service down.
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::Interrupted
                        | ErrorKind::ConnectionAborted
                        | ErrorKind::ConnectionReset
                ) =>
            {
                continue
            }
            Err(e) => break Err(e),
        }
    };
    manager.request_shutdown();
    let _ = watchdog.join();
    result
}

/// A connectable form of the listener's own address (`0.0.0.0`/`::` map
/// to loopback), used by the shutdown watchdog to unblock `accept`.
fn wake_address(listener: &TcpListener) -> std::io::Result<SocketAddr> {
    let mut addr = listener.local_addr()?;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    Ok(addr)
}

/// Admission control: the hard connection cap, then the bounded queue.
/// Both rejection edges answer a structured `busy` line so the client can
/// back off and retry, and are counted in `rejected`.
fn admit(
    stream: TcpStream,
    queue: &BoundedQueue<TcpStream>,
    config: &PoolConfig,
    stats: &PoolStats,
) {
    if stats.active_connections.load(Ordering::Relaxed) >= config.max_connections as u64 {
        stats.rejected.fetch_add(1, Ordering::Relaxed);
        reject(
            stream,
            &format!("connection limit reached ({})", config.max_connections),
            retry_after_ms(queue.len(), config.workers),
        );
        return;
    }
    match queue.try_push(stream) {
        Ok(()) => {
            // Count the admission only once it actually holds a queue
            // slot, so a queue-full bounce never ratchets the
            // peak_connections high-water mark.
            stats.connection_admitted();
            stats.queued.store(queue.len() as u64, Ordering::Relaxed);
        }
        Err(stream) => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            reject(
                stream,
                &format!("command queue full ({} waiting)", config.queue_depth),
                retry_after_ms(queue.len(), config.workers),
            );
        }
    }
}

/// Backoff hint for a `busy` rejection, derived from the load the server
/// actually sees: 10ms per connection already waiting *per worker*, so
/// the hint grows with the expected time until a slot frees, bounded at
/// one second so a deep queue never tells clients to go away for good.
fn retry_after_ms(queued: usize, workers: usize) -> u64 {
    let per_worker = (queued / workers.max(1)) as u64;
    (10 * (1 + per_worker)).min(1_000)
}

/// Writes a `busy` reply — including the backoff hint — and closes the
/// socket.
fn reject(mut stream: TcpStream, reason: &str, retry_after_ms: u64) {
    let line = Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(format!("busy: {reason}"))),
        ("busy", Json::Bool(true)),
        ("retry_after_ms", Json::num(retry_after_ms as f64)),
    ])
    .to_string();
    let _ = writeln!(stream, "{line}");
    let _ = stream.shutdown(Shutdown::Both);
}

/// Serves one admitted connection to completion: reads lines, dispatches,
/// writes one reply per line. Returns on client EOF, socket error, idle
/// timeout, or graceful drain (shutdown flag observed — already-received
/// commands are still answered and flushed first).
fn serve_connection(
    manager: &SessionManager,
    stream: TcpStream,
    config: &PoolConfig,
    stats: &PoolStats,
) {
    // One-line request/response traffic is exactly the shape Nagle's
    // algorithm + delayed ACKs stall (~40ms per round trip), so replies
    // must leave the moment they are written.
    let _ = stream.set_nodelay(true);
    // Short read ticks keep the worker responsive to shutdown and idle
    // accounting without busy-waiting.
    if stream.set_read_timeout(Some(POLL_TICK)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();
    // When the client has sent part of a line but not its newline: the
    // instant the partial line started. `idle_timeout` cannot catch a
    // slow-loris client (every trickled byte resets activity); this
    // deadline runs from the line's first byte and only a completed line
    // resets it.
    let mut line_started: Option<Instant> = None;
    // Set once shutdown is observed: the moment after which the
    // connection closes even if the client keeps sending. The grace
    // window scoops up commands already in flight, but bounds the drain —
    // without it, a client issuing commands faster than the poll tick
    // would block shutdown indefinitely.
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // Serve every complete line already received. This also runs in
        // drain mode, which is what "flush in-flight replies" means.
        while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=newline).collect();
            let line = String::from_utf8_lossy(&line);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            last_activity = Instant::now();
            stats.commands.fetch_add(1, Ordering::Relaxed);
            let reply = manager.handle_line(line);
            // TcpStream writes are unbuffered, so a successful writeln IS
            // the flush.
            if writeln!(writer, "{reply}").is_err() {
                return;
            }
        }
        if pending.is_empty() {
            line_started = None;
        } else if line_started.is_none() {
            line_started = Some(Instant::now());
        }
        // Enforced on every iteration — not just on read timeouts —
        // because a client trickling bytes keeps the read loop in its
        // `Ok(n)` arm, where `WouldBlock` never fires.
        if let Some(started) = line_started {
            if started.elapsed() >= config.read_timeout {
                let notice = Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::str(format!(
                            "read timeout: request line incomplete after {}ms",
                            config.read_timeout.as_millis()
                        )),
                    ),
                    ("read_timeout", Json::Bool(true)),
                ])
                .to_string();
                let _ = writeln!(writer, "{notice}");
                return;
            }
        }

        if manager.shutdown_requested() {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + 2 * POLL_TICK);
            if Instant::now() >= deadline {
                shutdown_notice(&mut writer);
                return;
            }
        }

        match reader.read(&mut chunk) {
            Ok(0) => return, // client EOF
            Ok(n) => {
                // Bytes count as activity even before a newline lands, so
                // a slow upload of a long `batch` line is never "idle".
                last_activity = Instant::now();
                pending.extend_from_slice(&chunk[..n]);
                if pending.len() > MAX_LINE_BYTES && !pending.contains(&b'\n') {
                    let notice = Json::obj(vec![
                        ("ok", Json::Bool(false)),
                        (
                            "error",
                            Json::str(format!("request line exceeds {MAX_LINE_BYTES} bytes")),
                        ),
                    ])
                    .to_string();
                    let _ = writeln!(writer, "{notice}");
                    return;
                }
                continue; // serve the new bytes before polling flags
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if manager.shutdown_requested() {
                    // Drained: nothing buffered, nothing readable. Notify
                    // and close.
                    shutdown_notice(&mut writer);
                    return;
                }
                if last_activity.elapsed() >= config.idle_timeout {
                    let notice = Json::obj(vec![
                        ("ok", Json::Bool(false)),
                        (
                            "error",
                            Json::str(format!(
                                "idle timeout after {}ms",
                                config.idle_timeout.as_millis()
                            )),
                        ),
                        ("idle_timeout", Json::Bool(true)),
                    ])
                    .to_string();
                    let _ = writeln!(writer, "{notice}");
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Writes the graceful-shutdown notice line (best effort — the client may
/// already be gone).
fn shutdown_notice(writer: &mut TcpStream) {
    let notice = Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str("server shutting down")),
        ("shutdown", Json::Bool(true)),
    ])
    .to_string();
    let _ = writeln!(writer, "{notice}");
}

/// The pre-pool accept loop, kept as the measured baseline: every accepted
/// connection gets its own OS thread — no worker cap, no queue, no `busy`
/// backpressure. Connections are served by the same per-connection loop as
/// the pool (honoring `config.idle_timeout` and graceful drain), so
/// `bench_server_pool`'s comparison isolates exactly the accept/pooling
/// strategy. `config.workers`/`queue_depth`/`max_connections` are unused
/// here — this loop is unbounded by design.
pub fn serve_thread_per_connection(
    manager: Arc<SessionManager>,
    listener: TcpListener,
    config: PoolConfig,
) -> std::io::Result<()> {
    let config = config.normalized();
    // Throwaway counters: the baseline reports nothing.
    let stats = Arc::new(PoolStats::new(&config));
    let mut threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let result = accept_loop(&manager, &listener, |stream| {
        // Reap finished connection threads as we go, so bookkeeping stays
        // O(live connections) over the server's lifetime.
        threads.retain(|thread| !thread.is_finished());
        let manager = Arc::clone(&manager);
        let config = config.clone();
        let stats = Arc::clone(&stats);
        threads.push(std::thread::spawn(move || {
            serve_connection(&manager, stream, &config, &stats);
        }));
    });
    for thread in threads {
        let _ = thread.join();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_round_trips_in_order() {
        let queue = BoundedQueue::new(3);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        assert!(queue.is_empty());
    }

    #[test]
    fn full_queue_hands_the_item_back() {
        let queue = BoundedQueue::new(2);
        queue.try_push("a").unwrap();
        queue.try_push("b").unwrap();
        assert_eq!(queue.try_push("c"), Err("c"));
        assert_eq!(queue.pop(), Some("a"));
        queue.try_push("c").unwrap();
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn close_rejects_pushes_and_drains_pops() {
        let queue = BoundedQueue::new(4);
        queue.try_push(10).unwrap();
        queue.close();
        assert_eq!(queue.try_push(11), Err(11));
        assert_eq!(queue.pop(), Some(10), "closing still drains queued items");
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let queue = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        std::thread::sleep(Duration::from_millis(30));
        queue.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn racing_producers_and_consumers_lose_nothing() {
        let queue = Arc::new(BoundedQueue::new(8));
        let total = 4 * 200;
        let consumed = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for producer in 0..4u32 {
                let queue = Arc::clone(&queue);
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let mut item = producer * 1000 + i;
                        // Spin on backpressure like the acceptor's retry
                        // guidance tells clients to.
                        while let Err(back) = queue.try_push(item) {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let queue = Arc::clone(&queue);
                let consumed = Arc::clone(&consumed);
                scope.spawn(move || {
                    while let Some(item) = queue.pop() {
                        consumed.lock().unwrap().push(item);
                    }
                });
            }
            // Producers finish first (scope joins unstarted threads in
            // drop order), so close after everything is pushed.
            scope.spawn({
                let queue = Arc::clone(&queue);
                let consumed = Arc::clone(&consumed);
                move || {
                    while consumed.lock().unwrap().len() < total {
                        std::thread::yield_now();
                    }
                    queue.close();
                }
            });
        });
        let mut consumed = consumed.lock().unwrap().clone();
        consumed.sort_unstable();
        consumed.dedup();
        assert_eq!(consumed.len(), total, "every pushed item must be popped exactly once");
    }

    #[test]
    fn retry_hint_scales_with_queue_pressure_and_saturates() {
        assert_eq!(retry_after_ms(0, 4), 10, "empty queue: minimal backoff");
        assert_eq!(retry_after_ms(8, 4), 30, "two waiting per worker");
        assert_eq!(retry_after_ms(64, 1), 650);
        assert_eq!(retry_after_ms(10_000, 1), 1_000, "hint is capped");
        assert_eq!(retry_after_ms(5, 0), 60, "zero workers must not divide by zero");
    }

    #[test]
    fn pool_config_normalizes_to_working_minimums() {
        let config = PoolConfig {
            workers: 0,
            queue_depth: 0,
            max_connections: 0,
            idle_timeout: Duration::ZERO,
            read_timeout: Duration::ZERO,
        }
        .normalized();
        assert_eq!(config.workers, 1);
        assert_eq!(config.queue_depth, 1);
        assert_eq!(config.max_connections, 1);
        assert!(config.idle_timeout >= POLL_TICK);
        assert!(config.read_timeout >= POLL_TICK);

        let wide = PoolConfig { workers: 8, max_connections: 2, ..config.clone() }.normalized();
        assert_eq!(wide.max_connections, 8, "cap must cover the pool");
    }

    #[test]
    fn pool_stats_track_admissions_and_peaks() {
        let stats = PoolStats::new(&PoolConfig::default().normalized());
        stats.connection_admitted();
        stats.connection_admitted();
        stats.connection_closed();
        stats.connection_admitted();
        let snapshot = stats.snapshot();
        assert_eq!(snapshot.active_connections, 2);
        assert_eq!(snapshot.peak_connections, 2);
        assert_eq!(snapshot.rejected, 0);
    }
}

//! The line-delimited JSON request/response protocol.
//!
//! One request per line, one response per line, in order. This is the
//! wire format the paper's web frontend would speak to this backend; it
//! maps one-to-one onto the Figure-1 interaction loop.
//!
//! ## Grammar
//!
//! ```text
//! request  := { "cmd": <command>, "id"?: <any>, "session"?: <int>, ...arguments }
//! response := { "ok": true,  "id"?: <echoed>, ...payload }
//!           | { "ok": false, "id"?: <echoed>, "error": <string> }
//!           | { "ok": false, "id"?: <echoed>,
//!               "error": { "kind": <string>, "retryable": <bool>, "message": <string> } }
//!
//! command  := "ping" | "tables" | "stats" | "sessions"
//!           | "open_session" | "close_session"
//!           | "shutdown"
//!           | "batch"           (commands: [<request>...])
//!           | "run_query"       (session, sql)
//!           | "plot"            (session, x, y)
//!           | "zoom"            (session, x, y)
//!           | "brush_outputs"   (session, x, y, brush)
//!           | "brush_inputs"    (session, x, y, brush)
//!           | "metric_choices"  (session, column)
//!           | "set_metric"      (session, kind, column, value)
//!           | "debug"           (session)
//!           | "click_predicate" (session, index)
//!           | "undo"            (session)
//!           | "state"           (session)
//!           | "stream_append"   (table, rows: [[<scalar>...]...])
//!           | "crash"           (session)   [test-only; gated by DBWIPES_ENABLE_CRASH]
//!
//! brush    := { "x_min"?: <num>, "x_max"?: <num>, "y_min"?: <num>, "y_max"?: <num> }
//!             (omitted edges are unbounded)
//! kind     := "too_high" | "too_low" | "not_equal_to"
//! ```
//!
//! The optional `id` is echoed verbatim on the response, so a pipelining
//! client can correlate answers; everything after a parse failure of the
//! *request line itself* is answered with `ok:false` and no echo.
//!
//! `batch` carries an array of request objects (each shaped exactly like a
//! top-level request, nesting excluded) and answers with one `results`
//! array holding each command's individual response object in order. A
//! scripted replay submitted as one batch is executed back to back —
//! consecutive commands addressing the same session run under a single
//! session-lock acquisition, which is what makes batched dashboard replays
//! cheap. `shutdown` is the ctrl-line: it flips the manager's shutdown
//! flag so the serving front-end (stdio loop or the pooled TCP executor)
//! drains in-flight connections, flushes replies, and exits cleanly.

use crate::json::Json;
use dbwipes_core::ErrorMetric;
use dbwipes_dashboard::Brush;
use dbwipes_storage::Value;

/// The protocol revision this server speaks, reported in every `ping` and
/// `stats` reply as `protocol_version`.
///
/// Compatibility rule: the protocol only ever changes **additively** —
/// new commands, new optional request fields, new reply fields — and every
/// such addition bumps this number. A client therefore (a) ignores reply
/// fields it does not know, and (b) gates use of newer commands on the
/// `protocol_version` it read from `ping`; a server never changes the
/// meaning or shape of an existing field under the same version.
///
/// History: 1 = the Figure-1 command set through durable storage;
/// 2 = streaming ingestion (`stream_append`, `protocol_version` markers);
/// 3 = fault tolerance (structured error objects with `kind`/`retryable`,
/// the `stats` `health` block, `stream_append`'s `durable` marker, the
/// gated `crash` test hook).
pub const PROTOCOL_VERSION: u64 = 3;

/// A parsed protocol command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// Names of the served tables.
    Tables,
    /// Registry and session counters.
    Stats,
    /// Ids of the open sessions.
    Sessions,
    /// Opens a fresh session; answers with its id.
    OpenSession,
    /// Closes the addressed session.
    CloseSession(u64),
    /// Requests graceful shutdown of the serving process (the ctrl-line):
    /// in-flight connections drain, replies flush, the process exits 0.
    Shutdown,
    /// Executes a sequence of commands back to back, answering with one
    /// `results` array. Consecutive commands addressing the same session
    /// share a single session-lock acquisition.
    Batch(Vec<Request>),
    /// Executes a new base query (resets selections and cleaning).
    RunQuery {
        /// Target session.
        session: u64,
        /// The SQL text.
        sql: String,
    },
    /// The group-level scatter series.
    Plot {
        /// Target session.
        session: u64,
        /// X-axis column.
        x: String,
        /// Y-axis column.
        y: String,
    },
    /// The zoomed-in tuple series for the selected outputs.
    Zoom {
        /// Target session.
        session: u64,
        /// X-axis column.
        x: String,
        /// Y-axis column.
        y: String,
    },
    /// Brushes the group plot to select suspicious outputs S.
    BrushOutputs {
        /// Target session.
        session: u64,
        /// X-axis column.
        x: String,
        /// Y-axis column.
        y: String,
        /// The brushed rectangle.
        brush: Brush,
    },
    /// Brushes the tuple plot to select suspicious inputs D′.
    BrushInputs {
        /// Target session.
        session: u64,
        /// X-axis column.
        x: String,
        /// Y-axis column.
        y: String,
        /// The brushed rectangle.
        brush: Brush,
    },
    /// The error-metric choices the form would offer.
    MetricChoices {
        /// Target session.
        session: u64,
        /// The aggregate output column.
        column: String,
    },
    /// Picks the error metric ε.
    SetMetric {
        /// Target session.
        session: u64,
        /// The chosen metric.
        metric: ErrorMetric,
    },
    /// Runs the backend pipeline ("debug!").
    Debug(u64),
    /// Clicks the i-th ranked predicate.
    ClickPredicate {
        /// Target session.
        session: u64,
        /// Zero-based rank of the predicate to apply.
        index: usize,
    },
    /// Un-applies the most recent predicate.
    Undo(u64),
    /// The session's interaction state and counters.
    State(u64),
    /// Streams rows into a base table. Service-level (no session): the
    /// append is validated all-or-nothing, applied in batches, and fanned
    /// out to every open session whose snapshot it fast-forwards.
    StreamAppend {
        /// The (case-insensitive) table name.
        table: String,
        /// The rows, one array of scalar cells per row, in schema order.
        rows: Vec<Vec<Value>>,
    },
    /// Deliberately panics inside the addressed session's handler — the
    /// test hook behind the panic-isolation machinery. Disabled unless the
    /// serving process runs with `DBWIPES_ENABLE_CRASH=1` (a plain error
    /// otherwise); when enabled, the reply is the structured `internal`
    /// error and the session is quarantined, with every worker surviving.
    Crash(u64),
}

impl Command {
    /// The session a command addresses, when it addresses one.
    pub fn session(&self) -> Option<u64> {
        match self {
            Command::Ping
            | Command::Tables
            | Command::Stats
            | Command::Sessions
            | Command::OpenSession
            | Command::Shutdown
            | Command::Batch(_)
            | Command::StreamAppend { .. } => None,
            Command::CloseSession(s)
            | Command::Debug(s)
            | Command::Undo(s)
            | Command::State(s)
            | Command::Crash(s) => Some(*s),
            Command::RunQuery { session, .. }
            | Command::Plot { session, .. }
            | Command::Zoom { session, .. }
            | Command::BrushOutputs { session, .. }
            | Command::BrushInputs { session, .. }
            | Command::MetricChoices { session, .. }
            | Command::SetMetric { session, .. }
            | Command::ClickPredicate { session, .. } => Some(*session),
        }
    }
}

/// A parsed request line: the command plus the client's correlation id.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Echoed verbatim on the response when present.
    pub id: Option<Json>,
    /// The command to execute.
    pub command: Command,
}

/// The most commands one `batch` request may carry. Bounds the work a
/// single line can enqueue (the transport already reads one line at a
/// time, so this is the per-request unit of admission control).
pub const MAX_BATCH_COMMANDS: usize = 256;

/// The most rows one `stream_append` request may carry — the same
/// admission-control role [`MAX_BATCH_COMMANDS`] plays for `batch`. A
/// producer with more rows sends several commands; the appended epoch
/// makes each one a cheap fast-forward for the caches either way.
pub const MAX_STREAM_APPEND_ROWS: usize = 65_536;

/// Every wire command the parser accepts, in the order the grammar lists
/// them. This is the protocol's table of contents: `docs/PROTOCOL.md`
/// documents each entry (enforced by a test), and adding a command
/// without extending this list fails the parser's coverage test.
pub const WIRE_COMMANDS: &[&str] = &[
    "ping",
    "tables",
    "stats",
    "sessions",
    "open_session",
    "close_session",
    "shutdown",
    "batch",
    "run_query",
    "plot",
    "zoom",
    "brush_outputs",
    "brush_inputs",
    "metric_choices",
    "set_metric",
    "debug",
    "click_predicate",
    "undo",
    "state",
    "stream_append",
    "crash",
];

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    parse_request_value(&value)
}

/// Parses one already-decoded request object (a top-level line or a
/// `batch` element — the shapes are identical, except that `batch` may
/// not nest).
pub fn parse_request_value(value: &Json) -> Result<Request, String> {
    if !matches!(value, Json::Obj(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let id = value.get("id").cloned();
    let cmd = value
        .get("cmd")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field `cmd`".to_string())?;

    let session = || -> Result<u64, String> {
        value
            .get("session")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("`{cmd}` requires an integer `session`"))
    };
    let string_field = |name: &str| -> Result<String, String> {
        value
            .get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("`{cmd}` requires a string `{name}`"))
    };

    let command = match cmd {
        "ping" => Command::Ping,
        "tables" => Command::Tables,
        "stats" => Command::Stats,
        "sessions" => Command::Sessions,
        "open_session" => Command::OpenSession,
        "close_session" => Command::CloseSession(session()?),
        "shutdown" => Command::Shutdown,
        "batch" => {
            let Some(Json::Arr(items)) = value.get("commands") else {
                return Err("`batch` requires an array `commands`".to_string());
            };
            if items.len() > MAX_BATCH_COMMANDS {
                return Err(format!(
                    "`batch` carries {} commands (max {MAX_BATCH_COMMANDS})",
                    items.len()
                ));
            }
            let mut commands = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                if item.get("cmd").and_then(Json::as_str) == Some("batch") {
                    return Err(format!("`batch` command {i} nests a batch (not allowed)"));
                }
                let request =
                    parse_request_value(item).map_err(|e| format!("`batch` command {i}: {e}"))?;
                commands.push(request);
            }
            Command::Batch(commands)
        }
        "run_query" => Command::RunQuery { session: session()?, sql: string_field("sql")? },
        "plot" | "zoom" | "brush_outputs" | "brush_inputs" => {
            let (s, x, y) = (session()?, string_field("x")?, string_field("y")?);
            match cmd {
                "plot" => Command::Plot { session: s, x, y },
                "zoom" => Command::Zoom { session: s, x, y },
                "brush_outputs" => {
                    Command::BrushOutputs { session: s, x, y, brush: parse_brush(value)? }
                }
                _ => Command::BrushInputs { session: s, x, y, brush: parse_brush(value)? },
            }
        }
        "metric_choices" => {
            Command::MetricChoices { session: session()?, column: string_field("column")? }
        }
        "set_metric" => {
            let s = session()?;
            let column = string_field("column")?;
            let kind = string_field("kind")?;
            let v = value
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| "`set_metric` requires a numeric `value`".to_string())?;
            let metric = match kind.as_str() {
                "too_high" => ErrorMetric::too_high(column, v),
                "too_low" => ErrorMetric::too_low(column, v),
                "not_equal_to" => ErrorMetric::not_equal_to(column, v),
                other => {
                    return Err(format!(
                        "unknown metric kind `{other}` (expected too_high | too_low | not_equal_to)"
                    ))
                }
            };
            Command::SetMetric { session: s, metric }
        }
        "debug" => Command::Debug(session()?),
        "click_predicate" => {
            let s = session()?;
            let index = value
                .get("index")
                .and_then(Json::as_u64)
                .ok_or_else(|| "`click_predicate` requires an integer `index`".to_string())?;
            Command::ClickPredicate { session: s, index: index as usize }
        }
        "undo" => Command::Undo(session()?),
        "state" => Command::State(session()?),
        "crash" => Command::Crash(session()?),
        "stream_append" => {
            let table = string_field("table")?;
            let Some(Json::Arr(items)) = value.get("rows") else {
                return Err("`stream_append` requires an array `rows`".to_string());
            };
            if items.len() > MAX_STREAM_APPEND_ROWS {
                return Err(format!(
                    "`stream_append` carries {} rows (max {MAX_STREAM_APPEND_ROWS})",
                    items.len()
                ));
            }
            let mut rows = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let Json::Arr(cells) = item else {
                    return Err(format!("`stream_append` row {i} must be an array of cells"));
                };
                let row: Result<Vec<Value>, String> = cells
                    .iter()
                    .map(|c| {
                        parse_cell(c).ok_or_else(|| {
                            format!("`stream_append` row {i}: cells must be scalars")
                        })
                    })
                    .collect();
                rows.push(row?);
            }
            Command::StreamAppend { table, rows }
        }
        other => return Err(format!("unknown command `{other}`")),
    };
    Ok(Request { id, command })
}

/// Decodes one `stream_append` cell. Integral numbers become [`Value::Int`]
/// (the column layer coerces them into float and timestamp columns as
/// needed — the inverse of how replies render values); non-scalars are
/// rejected.
fn parse_cell(cell: &Json) -> Option<Value> {
    Some(match cell {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Num(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Value::Int(*n as i64),
        Json::Num(n) => Value::Float(*n),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Arr(_) | Json::Obj(_) => return None,
    })
}

fn parse_brush(value: &Json) -> Result<Brush, String> {
    let edge = |name: &str, default: f64| -> Result<f64, String> {
        match value.get("brush").and_then(|b| b.get(name)) {
            None => Ok(default),
            Some(v) => v.as_f64().ok_or_else(|| format!("brush edge `{name}` must be a number")),
        }
    };
    if value.get("brush").is_some() && !matches!(value.get("brush"), Some(Json::Obj(_))) {
        return Err("`brush` must be an object".to_string());
    }
    Ok(Brush {
        x_min: edge("x_min", f64::NEG_INFINITY)?,
        x_max: edge("x_max", f64::INFINITY)?,
        y_min: edge("y_min", f64::NEG_INFINITY)?,
        y_max: edge("y_max", f64::INFINITY)?,
    })
}

/// A dispatch failure, carrying how it should render on the wire.
///
/// Ordinary request failures (bad SQL, unknown session, invalid state)
/// render exactly as they always have — `"error": "<message>"` — so no
/// existing client breaks. *Infrastructure* failures render the error as
/// an object, `{"kind", "retryable", "message"}`, because the client's
/// correct reaction depends on the kind:
///
/// * `kind:"internal"` — a handler panicked. The worker survived, the
///   session was quarantined; `retryable:false` (the same request will
///   panic again).
/// * `kind:"quarantined"` — the addressed session was poisoned by an
///   earlier panic and refuses further commands; siblings keep serving.
///   `retryable:false`: open a fresh session instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A plain request failure; renders as the classic string `error`.
    User(String),
    /// An infrastructure failure; renders as the structured error object.
    Structured {
        /// Machine-readable failure class (`internal`, `quarantined`).
        kind: &'static str,
        /// Whether retrying the identical request could succeed.
        retryable: bool,
        /// Human-readable diagnostics.
        message: String,
    },
}

impl WireError {
    /// A handler panic caught by the isolation layer.
    pub fn internal(message: impl Into<String>) -> Self {
        WireError::Structured { kind: "internal", retryable: false, message: message.into() }
    }

    /// A command addressed to a quarantined (panic-poisoned) session.
    pub fn quarantined(message: impl Into<String>) -> Self {
        WireError::Structured { kind: "quarantined", retryable: false, message: message.into() }
    }
}

impl From<String> for WireError {
    fn from(message: String) -> Self {
        WireError::User(message)
    }
}

impl From<&str> for WireError {
    fn from(message: &str) -> Self {
        WireError::User(message.to_string())
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::User(message) => write!(f, "{message}"),
            WireError::Structured { kind, message, .. } => write!(f, "{kind}: {message}"),
        }
    }
}

/// Builds the error response object for a [`WireError`]: the classic
/// string form for user errors, the structured object for infrastructure
/// errors.
pub fn wire_error_response_value(id: Option<&Json>, error: &WireError) -> Json {
    match error {
        WireError::User(message) => error_response_value(id, message),
        WireError::Structured { kind, retryable, message } => {
            let error = Json::obj(vec![
                ("kind", Json::str(*kind)),
                ("retryable", Json::Bool(*retryable)),
                ("message", Json::str(message.clone())),
            ]);
            let mut obj = Json::obj(vec![("error", error)]);
            if let Json::Obj(map) = &mut obj {
                map.insert("ok".to_string(), Json::Bool(false));
                if let Some(id) = id {
                    map.insert("id".to_string(), id.clone());
                }
            }
            obj
        }
    }
}

/// Builds a success response object: `{"ok": true, ...fields}` plus the
/// echoed id. The value form feeds `batch`'s `results` array; the line
/// protocol serializes it via [`ok_response`].
pub fn ok_response_value(id: Option<&Json>, fields: Vec<(&str, Json)>) -> Json {
    let mut obj = Json::obj(fields);
    if let Json::Obj(map) = &mut obj {
        map.insert("ok".to_string(), Json::Bool(true));
        if let Some(id) = id {
            map.insert("id".to_string(), id.clone());
        }
    }
    obj
}

/// Builds an error response object: `{"ok": false, "error": message}` plus
/// the echoed id.
pub fn error_response_value(id: Option<&Json>, message: &str) -> Json {
    let mut obj = Json::obj(vec![("error", Json::str(message))]);
    if let Json::Obj(map) = &mut obj {
        map.insert("ok".to_string(), Json::Bool(false));
        if let Some(id) = id {
            map.insert("id".to_string(), id.clone());
        }
    }
    obj
}

/// Builds a success response: `{"ok": true, ...fields}` plus the echoed id.
pub fn ok_response(id: Option<&Json>, fields: Vec<(&str, Json)>) -> String {
    ok_response_value(id, fields).to_string()
}

/// Builds an error response: `{"ok": false, "error": message}` plus the
/// echoed id.
pub fn error_response(id: Option<&Json>, message: &str) -> String {
    error_response_value(id, message).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let cases = [
            (r#"{"cmd":"ping"}"#, Command::Ping),
            (r#"{"cmd":"tables"}"#, Command::Tables),
            (r#"{"cmd":"stats"}"#, Command::Stats),
            (r#"{"cmd":"sessions"}"#, Command::Sessions),
            (r#"{"cmd":"open_session"}"#, Command::OpenSession),
            (r#"{"cmd":"close_session","session":3}"#, Command::CloseSession(3)),
            (
                r#"{"cmd":"run_query","session":1,"sql":"SELECT avg(x) FROM t"}"#,
                Command::RunQuery { session: 1, sql: "SELECT avg(x) FROM t".into() },
            ),
            (
                r#"{"cmd":"plot","session":1,"x":"w","y":"a"}"#,
                Command::Plot { session: 1, x: "w".into(), y: "a".into() },
            ),
            (
                r#"{"cmd":"zoom","session":1,"x":"w","y":"a"}"#,
                Command::Zoom { session: 1, x: "w".into(), y: "a".into() },
            ),
            (
                r#"{"cmd":"brush_outputs","session":1,"x":"w","y":"a","brush":{"y_min":8}}"#,
                Command::BrushOutputs {
                    session: 1,
                    x: "w".into(),
                    y: "a".into(),
                    brush: Brush::above(8.0),
                },
            ),
            (
                r#"{"cmd":"brush_inputs","session":1,"x":"s","y":"t","brush":{"y_max":2}}"#,
                Command::BrushInputs {
                    session: 1,
                    x: "s".into(),
                    y: "t".into(),
                    brush: Brush::below(2.0),
                },
            ),
            (
                r#"{"cmd":"metric_choices","session":1,"column":"a"}"#,
                Command::MetricChoices { session: 1, column: "a".into() },
            ),
            (
                r#"{"cmd":"set_metric","session":1,"kind":"too_high","column":"a","value":4}"#,
                Command::SetMetric { session: 1, metric: ErrorMetric::too_high("a", 4.0) },
            ),
            (r#"{"cmd":"debug","session":2}"#, Command::Debug(2)),
            (
                r#"{"cmd":"click_predicate","session":1,"index":0}"#,
                Command::ClickPredicate { session: 1, index: 0 },
            ),
            (r#"{"cmd":"undo","session":1}"#, Command::Undo(1)),
            (r#"{"cmd":"state","session":1}"#, Command::State(1)),
            (r#"{"cmd":"crash","session":1}"#, Command::Crash(1)),
            (r#"{"cmd":"shutdown"}"#, Command::Shutdown),
            (
                r#"{"cmd":"stream_append","table":"t","rows":[[1,2.5,"x",true,null]]}"#,
                Command::StreamAppend {
                    table: "t".into(),
                    rows: vec![vec![
                        Value::Int(1),
                        Value::Float(2.5),
                        Value::Str("x".into()),
                        Value::Bool(true),
                        Value::Null,
                    ]],
                },
            ),
        ];
        for (line, expected) in cases {
            let request = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(request.command, expected, "{line}");
            assert!(request.id.is_none());
        }
    }

    #[test]
    fn ids_are_parsed_and_echoed() {
        let request = parse_request(r#"{"cmd":"ping","id":17}"#).unwrap();
        assert_eq!(request.id, Some(Json::Num(17.0)));
        assert_eq!(
            ok_response(request.id.as_ref(), vec![("pong", Json::Bool(true))]),
            r#"{"id":17,"ok":true,"pong":true}"#
        );
        assert_eq!(
            error_response(request.id.as_ref(), "boom"),
            r#"{"error":"boom","id":17,"ok":false}"#
        );
        assert_eq!(error_response(None, "boom"), r#"{"error":"boom","ok":false}"#);
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"session":1}"#, "missing string field `cmd`"),
            (r#"{"cmd":"warp"}"#, "unknown command"),
            (r#"{"cmd":"debug"}"#, "requires an integer `session`"),
            (r#"{"cmd":"debug","session":-1}"#, "requires an integer `session`"),
            (r#"{"cmd":"run_query","session":1}"#, "requires a string `sql`"),
            (
                r#"{"cmd":"brush_outputs","session":1,"x":"a","y":"b","brush":3}"#,
                "must be an object",
            ),
            (
                r#"{"cmd":"brush_outputs","session":1,"x":"a","y":"b","brush":{"y_min":"hi"}}"#,
                "must be a number",
            ),
            (
                r#"{"cmd":"set_metric","session":1,"kind":"odd","column":"a","value":1}"#,
                "unknown metric kind",
            ),
            (
                r#"{"cmd":"set_metric","session":1,"kind":"too_high","column":"a"}"#,
                "numeric `value`",
            ),
            (r#"{"cmd":"click_predicate","session":1}"#, "integer `index`"),
            (r#"{"cmd":"stream_append","rows":[]}"#, "requires a string `table`"),
            (r#"{"cmd":"stream_append","table":"t"}"#, "requires an array `rows`"),
            (r#"{"cmd":"stream_append","table":"t","rows":[3]}"#, "must be an array of cells"),
            (r#"{"cmd":"stream_append","table":"t","rows":[[[1]]]}"#, "cells must be scalars"),
            (r#"{"cmd":"stream_append","table":"t","rows":[[{"a":1}]]}"#, "cells must be scalars"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn batch_requests_parse_elementwise_with_ids() {
        let request = parse_request(
            r#"{"cmd":"batch","id":7,"commands":[{"cmd":"ping","id":0},{"cmd":"state","session":2}]}"#,
        )
        .unwrap();
        assert_eq!(request.id, Some(Json::Num(7.0)));
        let Command::Batch(commands) = request.command else { panic!("expected a batch") };
        assert_eq!(commands.len(), 2);
        assert_eq!(commands[0].command, Command::Ping);
        assert_eq!(commands[0].id, Some(Json::Num(0.0)));
        assert_eq!(commands[1].command, Command::State(2));
        assert_eq!(commands[1].id, None);
    }

    #[test]
    fn malformed_batches_are_rejected_with_reasons() {
        for (line, needle) in [
            (r#"{"cmd":"batch"}"#, "requires an array `commands`"),
            (r#"{"cmd":"batch","commands":3}"#, "requires an array `commands`"),
            (r#"{"cmd":"batch","commands":[{"cmd":"debug"}]}"#, "command 0"),
            (
                r#"{"cmd":"batch","commands":[{"cmd":"ping"},{"cmd":"batch","commands":[]}]}"#,
                "nests a batch",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
        // The size cap is enforced before any element parses.
        let big: Vec<String> =
            (0..=MAX_BATCH_COMMANDS).map(|_| r#"{"cmd":"ping"}"#.to_string()).collect();
        let line = format!(r#"{{"cmd":"batch","commands":[{}]}}"#, big.join(","));
        assert!(parse_request(&line).unwrap_err().contains("max"));
    }

    #[test]
    fn stream_append_rows_are_capped() {
        let big: Vec<&str> = (0..=MAX_STREAM_APPEND_ROWS).map(|_| "[1]").collect();
        let line = format!(r#"{{"cmd":"stream_append","table":"t","rows":[{}]}}"#, big.join(","));
        assert!(parse_request(&line).unwrap_err().contains("max"));
    }

    #[test]
    fn wire_commands_list_is_exactly_what_the_parser_accepts() {
        // Every listed command parses (with its minimal argument shape)...
        for &cmd in WIRE_COMMANDS {
            let line = match cmd {
                "ping" | "tables" | "stats" | "sessions" | "open_session" | "shutdown" => {
                    format!(r#"{{"cmd":"{cmd}"}}"#)
                }
                "close_session" | "debug" | "undo" | "state" | "crash" => {
                    format!(r#"{{"cmd":"{cmd}","session":1}}"#)
                }
                "batch" => r#"{"cmd":"batch","commands":[]}"#.to_string(),
                "run_query" => {
                    r#"{"cmd":"run_query","session":1,"sql":"SELECT count(*) FROM t"}"#.to_string()
                }
                "plot" | "zoom" | "brush_outputs" | "brush_inputs" => {
                    format!(r#"{{"cmd":"{cmd}","session":1,"x":"a","y":"b"}}"#)
                }
                "metric_choices" => {
                    r#"{"cmd":"metric_choices","session":1,"column":"a"}"#.to_string()
                }
                "set_metric" => {
                    r#"{"cmd":"set_metric","session":1,"kind":"too_high","column":"a","value":1}"#
                        .to_string()
                }
                "click_predicate" => {
                    r#"{"cmd":"click_predicate","session":1,"index":0}"#.to_string()
                }
                "stream_append" => {
                    r#"{"cmd":"stream_append","table":"t","rows":[[1]]}"#.to_string()
                }
                other => panic!("WIRE_COMMANDS entry `{other}` has no minimal request shape"),
            };
            parse_request(&line).unwrap_or_else(|e| panic!("`{cmd}` must parse: {e}"));
        }
        // ...every listed command is distinct...
        let mut sorted: Vec<&str> = WIRE_COMMANDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), WIRE_COMMANDS.len(), "duplicate WIRE_COMMANDS entry");
        // ...and nothing else parses (probing a few near-misses; the
        // parser's `unknown command` arm covers the rest by construction).
        for unknown in ["pong", "query", "explain", "close", "open"] {
            assert!(parse_request(&format!(r#"{{"cmd":"{unknown}"}}"#)).is_err());
        }
    }

    #[test]
    fn every_wire_command_is_documented_in_the_protocol_reference() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("docs/PROTOCOL.md must exist ({e})"));
        for &cmd in WIRE_COMMANDS {
            // Each command gets a heading of its own in the reference.
            let heading = format!("### `{cmd}`");
            assert!(
                doc.contains(&heading),
                "docs/PROTOCOL.md is missing a `{heading}` section for wire command `{cmd}`"
            );
        }
        // The reply-shape contract fields are documented too.
        for needle in [
            "`busy`",
            "`cache_hit`",
            "`cached`",
            "`shards`",
            "MAX_BATCH_COMMANDS",
            "`snapshot_loads`",
            "`snapshot_saves`",
            "`bytes_on_disk`",
            "`rehydrated_caches`",
            "`protocol_version`",
            "`sessions_refreshed`",
            "MAX_STREAM_APPEND_ROWS",
            "DBWIPES_APPEND_BATCH",
            "`health`",
            "`degraded`",
            "`durable`",
            "`internal`",
            "`quarantined`",
            "`retryable`",
            "`read_timeout`",
            "`panics_caught`",
            "`quarantined_sessions`",
            "DBWIPES_ENABLE_CRASH",
        ] {
            assert!(doc.contains(needle), "docs/PROTOCOL.md must mention {needle}");
        }
    }

    #[test]
    fn wire_errors_render_string_or_structured_form() {
        // The classic string form stays bit-identical for user errors.
        let user = WireError::from("bad sql");
        assert_eq!(
            wire_error_response_value(None, &user).to_string(),
            r#"{"error":"bad sql","ok":false}"#
        );
        // Infrastructure errors carry kind + retryable for the client.
        let internal = WireError::internal("handler panicked: boom");
        let rendered = wire_error_response_value(Some(&Json::Num(5.0)), &internal).to_string();
        assert_eq!(
            rendered,
            r#"{"error":{"kind":"internal","message":"handler panicked: boom","retryable":false},"id":5,"ok":false}"#
        );
        let quarantined = WireError::quarantined("session 3 is quarantined");
        let rendered = wire_error_response_value(None, &quarantined).to_string();
        assert!(rendered.contains(r#""kind":"quarantined""#), "{rendered}");
        assert!(rendered.contains(r#""retryable":false"#), "{rendered}");
        assert_eq!(internal.to_string(), "internal: handler panicked: boom");
    }

    #[test]
    fn session_accessor_covers_all_variants() {
        assert_eq!(parse_request(r#"{"cmd":"ping"}"#).unwrap().command.session(), None);
        assert_eq!(
            parse_request(r#"{"cmd":"state","session":9}"#).unwrap().command.session(),
            Some(9)
        );
        assert_eq!(
            parse_request(r#"{"cmd":"close_session","session":9}"#).unwrap().command.session(),
            Some(9)
        );
        // A batch is dispatched by the manager itself, not routed to one
        // session — its elements carry their own targets.
        assert_eq!(
            parse_request(r#"{"cmd":"batch","commands":[{"cmd":"state","session":9}]}"#)
                .unwrap()
                .command
                .session(),
            None
        );
        assert_eq!(parse_request(r#"{"cmd":"shutdown"}"#).unwrap().command.session(), None);
    }
}

//! # dbwipes-server
//!
//! A concurrent, multi-session DBWipes service: the backend the paper's
//! web dashboard (Figure 2) talks to, grown from the single-user
//! [`DashboardSession`](dbwipes_dashboard::DashboardSession) into
//! something that can serve many analysts at once.
//!
//! Three pieces:
//!
//! * [`SessionManager`] — hosts many dashboard sessions over one shared
//!   `Arc`-backed catalog, addressed by [`SessionId`], each behind its own
//!   lock so concurrent clients never block each other's brush→debug
//!   loops.
//! * [`CacheRegistry`] — a two-tier cache shared across brushes, repeated
//!   explains and sessions, keyed by [`CacheFingerprint`] (canonical
//!   statement + table data version), with LRU eviction and eager
//!   invalidation on table re-registration. Tier 1 keeps
//!   [`GroupedAggregateCache`]s alive (one statement execution each);
//!   tier 2 memoizes whole explanations per exact request
//!   ([`ExplainKey`]), so a repeated `debug!` on an unchanged question is
//!   near-free — measured at ~5000× faster by `bench_server_sessions`.
//! * the line-delimited JSON [`protocol`] — `run_query`, `plot`, `zoom`,
//!   `brush_outputs`, `brush_inputs`, `set_metric`, `debug`,
//!   `click_predicate`, `undo`, `batch`, `shutdown` and friends — served
//!   by [`SessionManager::handle_line`] and exposed over stdin/stdout or
//!   TCP by the `dbwipes-server` binary.
//! * the bounded worker-pool TCP [`executor`] — a fixed worker pool over a
//!   bounded `Mutex`+`Condvar` MPMC queue, with `busy` backpressure
//!   replies, a hard connection cap, idle timeouts, and graceful drain on
//!   the `shutdown` ctrl-line — so heavy traffic degrades into explicit
//!   `busy` answers instead of unbounded threads and memory.
//!
//! [`GroupedAggregateCache`]: dbwipes_engine::GroupedAggregateCache
//! [`CacheFingerprint`]: dbwipes_engine::CacheFingerprint
//! [`SessionManager::handle_line`]: SessionManager::handle_line
//!
//! ## Example
//!
//! ```
//! use dbwipes_server::SessionManager;
//! use dbwipes_data::{generate_sensor, SensorConfig};
//! use dbwipes_storage::Catalog;
//!
//! let data = generate_sensor(&SensorConfig::small());
//! let mut catalog = Catalog::new();
//! catalog.register(data.table.clone()).unwrap();
//! let manager = SessionManager::new(catalog);
//!
//! let open = manager.handle_line(r#"{"cmd":"open_session"}"#);
//! assert!(open.contains(r#""ok":true"#));
//! let reply = manager.handle_line(
//!     r#"{"cmd":"run_query","session":1,"sql":"SELECT window, avg(temp) FROM readings GROUP BY window"}"#,
//! );
//! assert!(reply.contains(r#""row_count""#));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod client;
pub mod durability;
pub mod executor;
pub mod json;
pub mod manager;
pub mod protocol;
pub mod registry;
mod service;

pub use client::LineClient;
pub use durability::{StorageCounters, StorageHealth, StorageRuntime};
pub use executor::{
    serve_pooled, serve_thread_per_connection, BoundedQueue, PoolConfig, PoolSnapshot, PoolStats,
};
pub use json::Json;
pub use manager::{DebugCacheReport, ServerSession, SessionId, SessionManager, StreamAppendReport};
pub use protocol::{
    error_response, error_response_value, ok_response, ok_response_value, parse_request,
    parse_request_value, wire_error_response_value, Command, Request, WireError,
    MAX_BATCH_COMMANDS, MAX_STREAM_APPEND_ROWS, PROTOCOL_VERSION, WIRE_COMMANDS,
};
pub use registry::{CacheRegistry, CacheStats, ExplainKey};

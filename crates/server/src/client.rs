//! A minimal blocking TCP client for the line-delimited JSON protocol.
//!
//! One struct, four verbs — connect, send, read, round-trip — shared by
//! everything that speaks to a `dbwipes-server` over a socket: the
//! lifecycle tests, the binary end-to-end tests, `bench_server_pool`, and
//! the CI soak driver. Sets `TCP_NODELAY` on connect (the protocol's
//! one-line ping-pong is exactly the shape Nagle + delayed ACKs stall)
//! and applies a caller-chosen read timeout so a wedged server fails a
//! caller instead of hanging it.
//!
//! Errors are `String`s, like the rest of the protocol layer: this client
//! is for drivers and harnesses, which either retry (`busy`) or report.

use crate::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A connected line-protocol client.
#[derive(Debug)]
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl LineClient {
    /// Connects to `addr`, enabling `TCP_NODELAY` and applying
    /// `read_timeout` to every reply read.
    pub fn connect(addr: &str, read_timeout: Duration) -> Result<Self, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(LineClient { reader, writer: stream })
    }

    /// Sends one request line.
    pub fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("write failed: {e}"))
    }

    /// Reads one reply line. `Ok(None)` is a clean server-side close
    /// (EOF); anything unparseable or a timed-out read is an error.
    pub fn read_reply(&mut self) -> Result<Option<Json>, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => Json::parse(line.trim()).map(Some).map_err(|e| format!("bad reply JSON: {e}")),
            Err(e) => Err(format!("dropped reply: {e}")),
        }
    }

    /// Sends one request line and reads its reply; a close instead of a
    /// reply is an error ("dropped reply").
    pub fn roundtrip(&mut self, line: &str) -> Result<Json, String> {
        self.send(line)?;
        self.read_reply()?.ok_or_else(|| "dropped reply: connection closed".to_string())
    }

    /// Reads replies until the server closes the connection, returning
    /// whatever arrived on the way (timeout notices, shutdown notices).
    pub fn read_to_eof(&mut self) -> Result<Vec<Json>, String> {
        let mut seen = Vec::new();
        while let Some(reply) = self.read_reply()? {
            seen.push(reply);
        }
        Ok(seen)
    }
}

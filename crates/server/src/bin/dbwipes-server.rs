//! The `dbwipes-server` binary: serves the line-delimited JSON protocol
//! over stdin/stdout (default) or a TCP listener (`--listen ADDR`).
//!
//! ```text
//! dbwipes-server [--listen 127.0.0.1:7433] [--dataset sensor|fec|both]
//!                [--readings N] [--cache-capacity N] [--data-dir DIR]
//!                [--workers N] [--queue-depth N] [--max-connections N]
//!                [--idle-timeout-ms N] [--read-timeout-ms N]
//!                [--thread-per-conn]
//! ```
//!
//! In stdio mode the process reads one request per line and writes one
//! response per line until EOF (or the `shutdown` ctrl-line) — the shape a
//! web gateway or the `examples/server_session.rs` driver expects. In TCP
//! mode connections are served by the bounded worker-pool executor
//! ([`dbwipes_server::executor`]): `--workers` threads (default
//! `DBWIPES_SERVER_WORKERS`, else the effective parallelism) pull
//! connections from a bounded queue, over-capacity admissions get a
//! structured `busy` reply, silent sockets are closed after
//! `--idle-timeout-ms`, and the `shutdown` ctrl-line drains in-flight
//! sessions, flushes replies, and exits 0. `--thread-per-conn` restores
//! the unbounded pre-pool accept loop (the measured baseline). Sessions
//! live in the shared [`SessionManager`], so a client may reconnect and
//! resume its session by id.
//!
//! With `--data-dir DIR` (or `DBWIPES_DATA_DIR`; the flag wins) the
//! server runs durably: a fresh directory is seeded with the demo catalog
//! and snapshotted, a non-empty one restores the persisted catalog —
//! skipping demo generation entirely — and rehydrates the cache registry
//! and warm condition bitmaps from the last flush, so a restarted server
//! answers repeated explains at registry-hit speed. Registered tables are
//! snapshotted eagerly; warm state is flushed on graceful shutdown.

use dbwipes_data::{generate_fec, generate_sensor, FecConfig, SensorConfig};
use dbwipes_server::{
    serve_pooled, serve_thread_per_connection, PoolConfig, SessionManager, StorageRuntime,
};
use dbwipes_storage::Catalog;
use std::io::{BufRead, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Options {
    listen: Option<String>,
    dataset: String,
    readings: usize,
    cache_capacity: usize,
    data_dir: Option<String>,
    pool: PoolConfig,
    thread_per_conn: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        listen: None,
        dataset: "sensor".to_string(),
        readings: 5_400,
        cache_capacity: 32,
        // The flag below overrides the environment knob.
        data_dir: std::env::var("DBWIPES_DATA_DIR").ok().filter(|d| !d.trim().is_empty()),
        pool: PoolConfig::default(),
        thread_per_conn: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--listen" => options.listen = Some(value("--listen")?),
            "--dataset" => options.dataset = value("--dataset")?,
            "--readings" => {
                options.readings =
                    value("--readings")?.parse().map_err(|e| format!("--readings: {e}"))?;
            }
            "--cache-capacity" => {
                options.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
            }
            "--workers" => {
                options.pool.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-depth" => {
                options.pool.queue_depth =
                    value("--queue-depth")?.parse().map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--max-connections" => {
                options.pool.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--idle-timeout-ms" => {
                let ms: u64 = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-timeout-ms: {e}"))?;
                options.pool.idle_timeout = Duration::from_millis(ms);
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?;
                options.pool.read_timeout = Duration::from_millis(ms);
            }
            "--data-dir" => options.data_dir = Some(value("--data-dir")?),
            "--thread-per-conn" => options.thread_per_conn = true,
            "--help" | "-h" => {
                println!(
                    "usage: dbwipes-server [--listen ADDR] [--dataset sensor|fec|both] \
                     [--readings N] [--cache-capacity N] [--data-dir DIR] [--workers N] \
                     [--queue-depth N] [--max-connections N] [--idle-timeout-ms N] \
                     [--read-timeout-ms N] [--thread-per-conn]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn demo_catalog(options: &Options) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    let want_sensor = matches!(options.dataset.as_str(), "sensor" | "both");
    let want_fec = matches!(options.dataset.as_str(), "fec" | "both");
    if !want_sensor && !want_fec {
        return Err(format!(
            "unknown dataset `{}` (expected sensor | fec | both)",
            options.dataset
        ));
    }
    if want_sensor {
        let data = generate_sensor(&SensorConfig {
            num_readings: options.readings,
            failing_sensors: vec![15],
            ..SensorConfig::small()
        });
        catalog.register(data.table).map_err(|e| e.to_string())?;
    }
    if want_fec {
        let data = generate_fec(&FecConfig::default());
        catalog.register(data.table).map_err(|e| e.to_string())?;
    }
    Ok(catalog)
}

fn serve_stdio(manager: &SessionManager) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(stdout, "{}", manager.handle_line(&line))?;
        stdout.flush()?;
        // The `shutdown` ctrl-line: its reply is flushed above, then the
        // loop drains — same exit-0 contract as the TCP executor.
        if manager.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

fn serve_tcp(manager: Arc<SessionManager>, addr: &str, options: &Options) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    // Report the bound address (port 0 resolves to an ephemeral port).
    eprintln!("dbwipes-server listening on {}", listener.local_addr()?);
    if options.thread_per_conn {
        serve_thread_per_connection(manager, listener, options.pool.clone())
    } else {
        let config = options.pool.clone().normalized();
        eprintln!(
            "dbwipes-server pool: {} workers, queue depth {}, connection cap {}, \
             idle timeout {}ms, read timeout {}ms",
            config.workers,
            config.queue_depth,
            config.max_connections,
            config.idle_timeout.as_millis(),
            config.read_timeout.as_millis()
        );
        let stats = serve_pooled(manager, listener, config)?;
        let snapshot = stats.snapshot();
        eprintln!(
            "dbwipes-server drained: {} connections served, {} commands, {} rejected busy, \
             peak {} concurrent",
            snapshot.served_connections,
            snapshot.commands,
            snapshot.rejected,
            snapshot.peak_connections
        );
        Ok(())
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("dbwipes-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Open durable storage *before* any table is created: opening
    // advances the identity-stamp floor past everything in the manifest,
    // so freshly generated tables can never collide with restored ones.
    let runtime = match &options.data_dir {
        Some(dir) => match StorageRuntime::open(dir) {
            Ok(runtime) => Some(Arc::new(runtime)),
            Err(e) => {
                eprintln!("dbwipes-server: opening data dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let restored = match &runtime {
        Some(runtime) => match runtime.is_empty() {
            Ok(empty) => !empty,
            Err(e) => {
                eprintln!("dbwipes-server: reading manifest: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => false,
    };
    let catalog = if restored {
        match runtime.as_ref().expect("restored implies runtime").restore_catalog() {
            Ok(catalog) => catalog,
            Err(e) => {
                eprintln!("dbwipes-server: restoring catalog: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match demo_catalog(&options) {
            Ok(catalog) => catalog,
            Err(e) => {
                eprintln!("dbwipes-server: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let manager = Arc::new(SessionManager::with_cache_capacity(catalog, options.cache_capacity));
    if let Some(runtime) = &runtime {
        manager.attach_storage(Arc::clone(runtime));
        if restored {
            let (caches, bitmaps) = manager.rehydrate_warm_state();
            eprintln!(
                "dbwipes-server: restored {} tables from {} ({} aggregate caches, \
                 {} condition bitmaps rehydrated)",
                manager.table_names().len(),
                options.data_dir.as_deref().unwrap_or("?"),
                caches,
                bitmaps
            );
        } else {
            // Seed run: make the demo catalog durable before serving.
            manager.flush_storage();
        }
    }
    let served = match &options.listen {
        Some(addr) => serve_tcp(manager.clone(), addr, &options),
        None => serve_stdio(&manager),
    };
    // Idempotent final flush (the executor's drain already flushed on a
    // graceful TCP shutdown; stdio mode flushes here).
    manager.flush_storage();
    if let Err(e) = served {
        eprintln!("dbwipes-server: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

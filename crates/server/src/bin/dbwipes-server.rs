//! The `dbwipes-server` binary: serves the line-delimited JSON protocol
//! over stdin/stdout (default) or a TCP listener (`--listen ADDR`).
//!
//! ```text
//! dbwipes-server [--listen 127.0.0.1:7433] [--dataset sensor|fec|both]
//!                [--readings N] [--cache-capacity N]
//! ```
//!
//! In stdio mode the process reads one request per line and writes one
//! response per line until EOF — the shape a web gateway or the
//! `examples/server_session.rs` driver expects. In TCP mode each accepted
//! connection gets its own thread speaking the same protocol; sessions
//! live in the shared [`SessionManager`], so a client may reconnect and
//! resume its session by id.

use dbwipes_data::{generate_fec, generate_sensor, FecConfig, SensorConfig};
use dbwipes_server::SessionManager;
use dbwipes_storage::Catalog;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    listen: Option<String>,
    dataset: String,
    readings: usize,
    cache_capacity: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        listen: None,
        dataset: "sensor".to_string(),
        readings: 5_400,
        cache_capacity: 32,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--listen" => options.listen = Some(value("--listen")?),
            "--dataset" => options.dataset = value("--dataset")?,
            "--readings" => {
                options.readings =
                    value("--readings")?.parse().map_err(|e| format!("--readings: {e}"))?;
            }
            "--cache-capacity" => {
                options.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: dbwipes-server [--listen ADDR] [--dataset sensor|fec|both] \
                     [--readings N] [--cache-capacity N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

fn demo_catalog(options: &Options) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    let want_sensor = matches!(options.dataset.as_str(), "sensor" | "both");
    let want_fec = matches!(options.dataset.as_str(), "fec" | "both");
    if !want_sensor && !want_fec {
        return Err(format!(
            "unknown dataset `{}` (expected sensor | fec | both)",
            options.dataset
        ));
    }
    if want_sensor {
        let data = generate_sensor(&SensorConfig {
            num_readings: options.readings,
            failing_sensors: vec![15],
            ..SensorConfig::small()
        });
        catalog.register(data.table).map_err(|e| e.to_string())?;
    }
    if want_fec {
        let data = generate_fec(&FecConfig::default());
        catalog.register(data.table).map_err(|e| e.to_string())?;
    }
    Ok(catalog)
}

fn serve_stdio(manager: &SessionManager) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(stdout, "{}", manager.handle_line(&line))?;
        stdout.flush()?;
    }
    Ok(())
}

fn serve_tcp(manager: Arc<SessionManager>, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    // Report the bound address (port 0 resolves to an ephemeral port).
    eprintln!("dbwipes-server listening on {}", listener.local_addr()?);
    for stream in listener.incoming() {
        let stream = stream?;
        let manager = Arc::clone(&manager);
        std::thread::spawn(move || {
            let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
            let mut writer = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => return,
            };
            let reader = BufReader::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let reply = manager.handle_line(&line);
                if writeln!(writer, "{reply}").is_err() {
                    break;
                }
            }
            eprintln!("connection {peer} closed");
        });
    }
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(e) => {
            eprintln!("dbwipes-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let catalog = match demo_catalog(&options) {
        Ok(catalog) => catalog,
        Err(e) => {
            eprintln!("dbwipes-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manager = Arc::new(SessionManager::with_cache_capacity(catalog, options.cache_capacity));
    let served = match &options.listen {
        Some(addr) => serve_tcp(manager, addr),
        None => serve_stdio(&manager),
    };
    if let Err(e) = served {
        eprintln!("dbwipes-server: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

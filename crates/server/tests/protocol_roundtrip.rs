//! Round-trips every protocol command through [`SessionManager::handle_line`]
//! — the exact code path the binary serves — including the error replies
//! for malformed requests and invalid interaction-state transitions.

use dbwipes_data::{generate_sensor, SensorConfig};
use dbwipes_server::{Json, SessionManager};
use dbwipes_storage::Catalog;

fn manager() -> (SessionManager, String) {
    let data = generate_sensor(&SensorConfig {
        num_readings: 2_700,
        failing_sensors: vec![15],
        ..SensorConfig::small()
    });
    let mut catalog = Catalog::new();
    catalog.register(data.table.clone()).unwrap();
    (SessionManager::new(catalog), data.window_query())
}

fn send(manager: &SessionManager, line: &str) -> Json {
    Json::parse(&manager.handle_line(line)).expect("responses are always valid JSON")
}

fn ok(manager: &SessionManager, line: &str) -> Json {
    let reply = send(manager, line);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{line} -> {reply}");
    reply
}

fn err(manager: &SessionManager, line: &str) -> String {
    let reply = send(manager, line);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "{line} -> {reply}");
    reply.get("error").and_then(Json::as_str).expect("error replies carry a message").to_string()
}

#[test]
fn every_command_round_trips_through_the_figure_one_loop() {
    let (m, query) = manager();

    // Service-level commands.
    assert_eq!(ok(&m, r#"{"cmd":"ping"}"#).get("pong"), Some(&Json::Bool(true)));
    let tables = ok(&m, r#"{"cmd":"tables"}"#);
    assert_eq!(tables.get("tables").unwrap().as_array().unwrap().len(), 1);
    assert!(ok(&m, r#"{"cmd":"sessions"}"#)
        .get("sessions")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());

    let s = ok(&m, r#"{"cmd":"open_session"}"#).get("session").and_then(Json::as_u64).unwrap();
    assert_eq!(
        ok(&m, r#"{"cmd":"sessions"}"#).get("sessions").unwrap().as_array().unwrap(),
        &[Json::Num(s as f64)]
    );

    // state before anything: AwaitingQuery.
    let state = ok(&m, &format!(r#"{{"cmd":"state","session":{s}}}"#));
    assert_eq!(state.get("state").and_then(Json::as_str), Some("AwaitingQuery"));

    // run_query.
    let ran = ok(&m, &format!(r#"{{"cmd":"run_query","session":{s},"sql":"{query}"}}"#));
    let columns = ran.get("columns").unwrap().as_array().unwrap();
    assert!(columns.iter().any(|c| c.as_str() == Some("std_temp")), "{columns:?}");
    let rows = ran.get("rows").unwrap().as_array().unwrap();
    assert_eq!(rows.len() as u64, ran.get("row_count").and_then(Json::as_u64).unwrap());
    assert!(rows.iter().all(|r| r.as_array().unwrap().len() == columns.len()));

    // plot + brush_outputs.
    let plot = ok(&m, &format!(r#"{{"cmd":"plot","session":{s},"x":"window","y":"std_temp"}}"#));
    let points = plot.get("series").unwrap().get("points").unwrap().as_array().unwrap();
    assert!(!points.is_empty());
    assert!(points.iter().all(|p| p.get("kind").and_then(Json::as_str) == Some("output")));
    let brushed = ok(
        &m,
        &format!(
            r#"{{"cmd":"brush_outputs","session":{s},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
        ),
    );
    assert!(!brushed.get("selected").unwrap().as_array().unwrap().is_empty());

    // zoom + brush_inputs.
    let zoom = ok(&m, &format!(r#"{{"cmd":"zoom","session":{s},"x":"sensorid","y":"temp"}}"#));
    let zoom_points = zoom.get("series").unwrap().get("points").unwrap().as_array().unwrap();
    assert!(zoom_points.iter().all(|p| p.get("kind").and_then(Json::as_str) == Some("input")));
    let inputs = ok(
        &m,
        &format!(
            r#"{{"cmd":"brush_inputs","session":{s},"x":"sensorid","y":"temp","brush":{{"y_min":100}}}}"#
        ),
    );
    assert!(!inputs.get("selected").unwrap().as_array().unwrap().is_empty());

    // metric_choices + set_metric.
    let choices =
        ok(&m, &format!(r#"{{"cmd":"metric_choices","session":{s},"column":"std_temp"}}"#));
    let choice_list = choices.get("choices").unwrap().as_array().unwrap();
    assert!(!choice_list.is_empty());
    // Each choice carries the exact fields `set_metric` accepts, so a
    // client can echo one back without parsing the label.
    for c in choice_list {
        assert!(c.get("label").and_then(Json::as_str).is_some(), "{c}");
        assert_eq!(c.get("column").and_then(Json::as_str), Some("std_temp"), "{c}");
        assert!(
            matches!(
                c.get("kind").and_then(Json::as_str),
                Some("too_high" | "too_low" | "not_equal_to")
            ),
            "{c}"
        );
        assert!(c.get("value").and_then(Json::as_f64).is_some(), "{c}");
    }
    let set = ok(
        &m,
        &format!(
            r#"{{"cmd":"set_metric","session":{s},"kind":"too_high","column":"std_temp","value":4}}"#
        ),
    );
    assert!(set.get("metric").and_then(Json::as_str).unwrap().contains("std_temp"));

    // debug: first misses, second hits, timings and ranked predicates.
    let first = ok(&m, &format!(r#"{{"cmd":"debug","session":{s}}}"#));
    assert_eq!(first.get("cache_hit"), Some(&Json::Bool(false)));
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)), "a cold debug is not memo-served");
    let predicates = first.get("predicates").unwrap().as_array().unwrap();
    assert!(!predicates.is_empty());
    assert!(predicates[0].get("predicate").and_then(Json::as_str).is_some());
    assert!(first.get("timings").unwrap().get("total_ms").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(first.get("base_error").and_then(Json::as_f64).unwrap() > 0.0);
    let second = ok(&m, &format!(r#"{{"cmd":"debug","session":{s}}}"#));
    assert_eq!(second.get("cache_hit"), Some(&Json::Bool(true)));
    // Regression (ROADMAP follow-up): a memo-served explanation must say
    // so and must NOT replay the original run's elapsed times — nothing
    // ran now, so the reported latency is (near-)zero.
    assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
    assert_eq!(
        second.get("timings").unwrap().get("total_ms").and_then(Json::as_f64),
        Some(0.0),
        "memo replays report near-zero timings: {second}"
    );
    assert_eq!(
        second.get("predicates").unwrap().as_array().unwrap().len(),
        predicates.len(),
        "the replayed ranking is the memoized one"
    );

    // click_predicate rewrites the query; undo restores it.
    let clicked = ok(&m, &format!(r#"{{"cmd":"click_predicate","session":{s},"index":0}}"#));
    assert!(clicked.get("sql").and_then(Json::as_str).unwrap().contains("NOT ("));
    assert_eq!(clicked.get("applied_predicates").unwrap().as_array().unwrap().len(), 1);
    let undone = ok(&m, &format!(r#"{{"cmd":"undo","session":{s}}}"#));
    assert!(undone.get("applied_predicates").unwrap().as_array().unwrap().is_empty());
    assert_eq!(undone.get("sql").and_then(Json::as_str), Some(query.as_str()));

    // stats reflect the two debugs: one aggregate-cache build, and the
    // repeat replayed from the explanation memo.
    let stats = ok(&m, r#"{"cmd":"stats"}"#);
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("explanation_misses").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("explanation_hits").and_then(Json::as_u64), Some(1));
    assert!(cache.get("explanation_hit_rate").and_then(Json::as_f64).unwrap() > 0.0);
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("explanation_entries").and_then(Json::as_u64), Some(1));

    // The vectorized ranker behind the cold debug warmed a condition-bitmap
    // cache: every distinct candidate condition missed once, and the
    // scoring pass hit the warmed entries. The counters are process-wide
    // (other tests in this binary may also have ranked), so assert floors,
    // not exact values.
    let bitmaps = stats.get("condition_bitmaps").unwrap();
    let bitmap_hits = bitmaps.get("hits").and_then(Json::as_u64).unwrap();
    let bitmap_misses = bitmaps.get("misses").and_then(Json::as_u64).unwrap();
    assert!(bitmap_misses >= 1, "the cold debug kernel-scanned conditions: {bitmaps}");
    assert!(bitmap_hits >= 1, "candidate scoring reused warmed bitmaps: {bitmaps}");
    let rate = bitmaps.get("hit_rate").and_then(Json::as_f64).unwrap();
    assert!(rate > 0.0 && rate <= 1.0, "{bitmaps}");

    // close_session.
    ok(&m, &format!(r#"{{"cmd":"close_session","session":{s}}}"#));
    assert!(
        err(&m, &format!(r#"{{"cmd":"close_session","session":{s}}}"#)).contains("no such session")
    );
}

#[test]
fn batch_round_trips_a_scripted_replay_in_one_request() {
    let (m, query) = manager();
    let s = ok(&m, r#"{"cmd":"open_session"}"#).get("session").and_then(Json::as_u64).unwrap();

    // The full Figure-1 replay as ONE line: run, brush, pick ε, debug.
    let commands = [
        format!(r#"{{"cmd":"run_query","session":{s},"sql":"{query}","id":"q"}}"#),
        format!(
            r#"{{"cmd":"brush_outputs","session":{s},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
        ),
        format!(
            r#"{{"cmd":"set_metric","session":{s},"kind":"too_high","column":"std_temp","value":4}}"#
        ),
        format!(r#"{{"cmd":"debug","session":{s}}}"#),
        r#"{"cmd":"stats"}"#.to_string(),
    ];
    let reply = ok(&m, &format!(r#"{{"cmd":"batch","commands":[{}]}}"#, commands.join(",")));
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(5));
    let results = reply.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 5);
    assert!(results.iter().all(|r| r.get("ok") == Some(&Json::Bool(true))), "{results:?}");
    // Per-command ids survive into the results array.
    assert_eq!(results[0].get("id").and_then(Json::as_str), Some("q"));
    // The debug really ran inside the batch.
    assert!(!results[3].get("predicates").unwrap().as_array().unwrap().is_empty());
    // The session saw all four of its batched commands (the stats command
    // is service-level; the state probe below counts itself).
    let state = ok(&m, &format!(r#"{{"cmd":"state","session":{s}}}"#));
    assert_eq!(state.get("commands").and_then(Json::as_u64), Some(5));

    // A failing element answers ok:false in place without aborting the
    // rest of the batch.
    let mixed = ok(
        &m,
        r#"{"cmd":"batch","commands":[{"cmd":"ping"},{"cmd":"state","session":999},{"cmd":"ping"}]}"#,
    );
    let results = mixed.get("results").unwrap().as_array().unwrap();
    assert_eq!(results[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(results[1].get("ok"), Some(&Json::Bool(false)));
    assert!(results[1].get("error").and_then(Json::as_str).unwrap().contains("no such session"));
    assert_eq!(results[2].get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn shutdown_command_flips_the_manager_flag() {
    let (m, _) = manager();
    assert!(!m.shutdown_requested());
    let reply = ok(&m, r#"{"cmd":"shutdown"}"#);
    assert_eq!(reply.get("shutting_down"), Some(&Json::Bool(true)));
    assert!(m.shutdown_requested());
}

#[test]
fn ids_are_echoed_on_success_and_failure() {
    let (m, _) = manager();
    let reply = send(&m, r#"{"cmd":"ping","id":"req-7"}"#);
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("req-7"));
    let reply = send(&m, r#"{"cmd":"debug","session":99,"id":42}"#);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(reply.get("id").and_then(Json::as_u64), Some(42));
}

#[test]
fn invalid_requests_get_error_replies() {
    let (m, _) = manager();
    assert!(err(&m, "this is not json").contains("invalid JSON"));
    assert!(err(&m, "[1,2,3]").contains("JSON object"));
    assert!(err(&m, r#"{"cmd":"hack_the_planet"}"#).contains("unknown command"));
    assert!(err(&m, r#"{"cmd":"run_query","session":1}"#).contains("requires a string `sql`"));
    assert!(err(&m, r#"{"cmd":"debug","session":12}"#).contains("no such session"));
}

#[test]
fn invalid_state_transitions_get_error_replies() {
    let (m, query) = manager();
    let s = ok(&m, r#"{"cmd":"open_session"}"#).get("session").and_then(Json::as_u64).unwrap();

    // Everything that needs a result, before any query ran.
    assert!(err(&m, &format!(r#"{{"cmd":"debug","session":{s}}}"#)).contains("no query"));
    assert!(err(&m, &format!(r#"{{"cmd":"undo","session":{s}}}"#)).contains("no query"));
    assert!(err(&m, &format!(r#"{{"cmd":"click_predicate","session":{s},"index":0}}"#))
        .contains("no ranked predicate"));
    assert!(err(&m, &format!(r#"{{"cmd":"plot","session":{s},"x":"a","y":"b"}}"#))
        .contains("nothing to plot"));
    assert!(err(&m, &format!(r#"{{"cmd":"zoom","session":{s},"x":"a","y":"b"}}"#))
        .contains("nothing to zoom"));

    // Bad SQL is reported, not crashed on.
    assert!(!err(&m, &format!(r#"{{"cmd":"run_query","session":{s},"sql":"frob the knob"}}"#))
        .is_empty());

    ok(&m, &format!(r#"{{"cmd":"run_query","session":{s},"sql":"{query}"}}"#));
    // Debug without metric / selection follows the dashboard's state machine.
    assert!(err(&m, &format!(r#"{{"cmd":"debug","session":{s}}}"#)).contains("no error metric"));
    ok(
        &m,
        &format!(
            r#"{{"cmd":"set_metric","session":{s},"kind":"too_high","column":"std_temp","value":4}}"#
        ),
    );
    assert!(
        err(&m, &format!(r#"{{"cmd":"debug","session":{s}}}"#)).contains("no suspicious outputs")
    );
    // Clicking before a debug produced a ranking.
    assert!(err(&m, &format!(r#"{{"cmd":"click_predicate","session":{s},"index":0}}"#))
        .contains("no ranked predicate"));
    // Unknown metric column surfaces from the backend at debug time.
    ok(
        &m,
        &format!(
            r#"{{"cmd":"brush_outputs","session":{s},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
        ),
    );
    ok(
        &m,
        &format!(
            r#"{{"cmd":"set_metric","session":{s},"kind":"too_low","column":"nope","value":4}}"#
        ),
    );
    assert!(!err(&m, &format!(r#"{{"cmd":"debug","session":{s}}}"#)).is_empty());
}

//! Concurrency contract of the session service: ≥4 clients drive the full
//! Figure-1 loop at the same time over one [`SessionManager`], through the
//! same line-delimited protocol a web frontend would use. Asserts
//!
//! * isolation — one session's brushes, metric and cleaning never leak
//!   into another session's state;
//! * cross-brush cache reuse — after every thread has debugged the same
//!   statement, the shared registry reports exactly one build and a hit
//!   for everyone else, including each session's *second* explain.

use dbwipes_data::{generate_sensor, SensorConfig};
use dbwipes_server::{Json, SessionManager};
use dbwipes_storage::Catalog;
use std::sync::Arc;

const CLIENTS: usize = 4;

fn manager() -> (Arc<SessionManager>, String) {
    let data = generate_sensor(&SensorConfig {
        num_readings: 5_400,
        failing_sensors: vec![15],
        ..SensorConfig::small()
    });
    let mut catalog = Catalog::new();
    catalog.register(data.table.clone()).unwrap();
    (Arc::new(SessionManager::new(catalog)), data.window_query())
}

fn send(manager: &SessionManager, line: &str) -> Json {
    let reply = manager.handle_line(line);
    Json::parse(&reply).unwrap_or_else(|e| panic!("unparseable reply {reply:?}: {e}"))
}

fn expect_ok(manager: &SessionManager, line: &str) -> Json {
    let reply = send(manager, line);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{line} -> {reply}");
    reply
}

/// One client's full Figure-1 loop over its own session; returns
/// (session id, ranked predicate count, second-debug cache_hit flag).
fn drive_full_loop(
    manager: &SessionManager,
    query: &str,
    brush_threshold: f64,
) -> (u64, usize, bool) {
    let session = expect_ok(manager, r#"{"cmd":"open_session"}"#)
        .get("session")
        .and_then(Json::as_u64)
        .expect("session id");

    // 1. Execute the window query.
    let ran = expect_ok(
        manager,
        &format!(r#"{{"cmd":"run_query","session":{session},"sql":"{query}"}}"#),
    );
    assert!(ran.get("row_count").and_then(Json::as_u64).unwrap() > 1);

    // 2. Visualize.
    let plot = expect_ok(
        manager,
        &format!(r#"{{"cmd":"plot","session":{session},"x":"window","y":"std_temp"}}"#),
    );
    assert!(!plot.get("series").unwrap().get("points").unwrap().as_array().unwrap().is_empty());

    // 3. Brush suspicious outputs S (per-client threshold, so selections differ).
    let outputs = expect_ok(
        manager,
        &format!(
            r#"{{"cmd":"brush_outputs","session":{session},"x":"window","y":"std_temp","brush":{{"y_min":{brush_threshold}}}}}"#
        ),
    );
    let selected_outputs = outputs.get("selected").unwrap().as_array().unwrap().len();
    assert!(selected_outputs > 0, "brush at {brush_threshold} selected nothing");

    // 4-5. Zoom in, brush suspicious inputs D′.
    expect_ok(
        manager,
        &format!(r#"{{"cmd":"zoom","session":{session},"x":"sensorid","y":"temp"}}"#),
    );
    let inputs = expect_ok(
        manager,
        &format!(
            r#"{{"cmd":"brush_inputs","session":{session},"x":"sensorid","y":"temp","brush":{{"y_min":100}}}}"#
        ),
    );
    assert!(!inputs.get("selected").unwrap().as_array().unwrap().is_empty());

    // 6. Pick ε.
    expect_ok(
        manager,
        &format!(
            r#"{{"cmd":"set_metric","session":{session},"kind":"too_high","column":"std_temp","value":4}}"#
        ),
    );

    // Debug! twice: the second run must be answered by the registry.
    let first = expect_ok(manager, &format!(r#"{{"cmd":"debug","session":{session}}}"#));
    let predicates = first.get("predicates").unwrap().as_array().unwrap().len();
    assert!(predicates > 0);
    let second = expect_ok(manager, &format!(r#"{{"cmd":"debug","session":{session}}}"#));
    let second_hit = second.get("cache_hit").and_then(Json::as_bool).unwrap();

    // 7. Click the best predicate, verify the rewrite, undo it.
    let clicked = expect_ok(
        manager,
        &format!(r#"{{"cmd":"click_predicate","session":{session},"index":0}}"#),
    );
    assert_eq!(clicked.get("applied_predicates").unwrap().as_array().unwrap().len(), 1);
    assert!(clicked.get("sql").and_then(Json::as_str).unwrap().contains("NOT ("));
    let undone = expect_ok(manager, &format!(r#"{{"cmd":"undo","session":{session}}}"#));
    assert!(undone.get("applied_predicates").unwrap().as_array().unwrap().is_empty());

    (session, predicates, second_hit)
}

#[test]
fn four_concurrent_clients_run_the_full_loop_with_shared_cache_reuse() {
    let (manager, query) = manager();
    // Distinct brush thresholds: every client selects a different S, so a
    // state leak between sessions would change another client's answers.
    let thresholds = [8.0, 9.0, 10.0, 11.0];

    let results: Vec<(u64, usize, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let manager = Arc::clone(&manager);
                let query = query.clone();
                scope.spawn(move || drive_full_loop(&manager, &query, thresholds[i]))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });

    // Every client got its own session and a non-empty ranking.
    let mut ids: Vec<u64> = results.iter().map(|(id, _, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CLIENTS, "sessions must be distinct: {results:?}");
    // Each session's second debug was served from the shared registry.
    assert!(results.iter().all(|(_, _, hit)| *hit), "{results:?}");

    // All four sessions ran the identical base statement over the identical
    // snapshot: exactly one aggregate-cache build total, with the other
    // three first-debugs (distinct brushes → distinct requests) reusing it.
    // Each session's second debug repeated its own exact request, so it
    // replayed the explanation memo instead. (The post-click rewritten
    // statement was never debugged, so it built nothing.)
    let stats = expect_ok(&manager, r#"{"cmd":"stats"}"#);
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1), "{cache}");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some((CLIENTS - 1) as u64), "{cache}");
    assert!(cache.get("hit_rate").and_then(Json::as_f64).unwrap() > 0.5);
    assert_eq!(
        cache.get("explanation_misses").and_then(Json::as_u64),
        Some(CLIENTS as u64),
        "{cache}"
    );
    assert_eq!(
        cache.get("explanation_hits").and_then(Json::as_u64),
        Some(CLIENTS as u64),
        "{cache}"
    );
    assert_eq!(stats.get("sessions").and_then(Json::as_u64), Some(CLIENTS as u64));
}

#[test]
fn sessions_stay_isolated_under_interleaving() {
    let (manager, query) = manager();
    let a = expect_ok(&manager, r#"{"cmd":"open_session"}"#)
        .get("session")
        .and_then(Json::as_u64)
        .unwrap();
    let b = expect_ok(&manager, r#"{"cmd":"open_session"}"#)
        .get("session")
        .and_then(Json::as_u64)
        .unwrap();

    // A runs a query and brushes; B has done nothing.
    expect_ok(&manager, &format!(r#"{{"cmd":"run_query","session":{a},"sql":"{query}"}}"#));
    expect_ok(
        &manager,
        &format!(
            r#"{{"cmd":"brush_outputs","session":{a},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
        ),
    );
    let state_a = expect_ok(&manager, &format!(r#"{{"cmd":"state","session":{a}}}"#));
    let state_b = expect_ok(&manager, &format!(r#"{{"cmd":"state","session":{b}}}"#));
    assert_eq!(state_a.get("state").and_then(Json::as_str), Some("OutputsSelected"));
    assert_eq!(state_b.get("state").and_then(Json::as_str), Some("AwaitingQuery"));
    assert!(state_a.get("selected_outputs").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(state_b.get("selected_outputs").and_then(Json::as_u64), Some(0));

    // B runs its own query with a different grouping; A's result is untouched.
    expect_ok(
        &manager,
        &format!(
            r#"{{"cmd":"run_query","session":{b},"sql":"SELECT sensorid, avg(temp) FROM readings GROUP BY sensorid"}}"#
        ),
    );
    let state_a2 = expect_ok(&manager, &format!(r#"{{"cmd":"state","session":{a}}}"#));
    assert!(state_a2.get("sql").and_then(Json::as_str).unwrap().contains("GROUP BY window"));
    assert_eq!(state_a2.get("state").and_then(Json::as_str), Some("OutputsSelected"));

    // Closing B leaves A fully operational.
    expect_ok(&manager, &format!(r#"{{"cmd":"close_session","session":{b}}}"#));
    let still = expect_ok(&manager, &format!(r#"{{"cmd":"state","session":{a}}}"#));
    assert_eq!(still.get("state").and_then(Json::as_str), Some("OutputsSelected"));
    let gone = send(&manager, &format!(r#"{{"cmd":"state","session":{b}}}"#));
    assert_eq!(gone.get("ok"), Some(&Json::Bool(false)));
}

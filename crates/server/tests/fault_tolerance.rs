//! Fault tolerance, end to end: scripted storage faults must never change
//! an answer — only the `durable`/`health` reporting around it — degraded
//! mode must self-heal on the first write that actually lands, and the
//! `crash` test hook must cost zero workers while quarantining exactly
//! the session that panicked.

use dbwipes_data::{generate_sensor, SensorConfig};
use dbwipes_server::{LineClient, SessionManager, StorageRuntime};
use dbwipes_storage::{Catalog, FaultInjectingBackend, FaultPlan, FsBackend, Table};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_dbwipes-server");

const WINDOW_SQL: &str = "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS std_temp \
                          FROM readings GROUP BY window ORDER BY window";

static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh per-test directory under the OS temp dir; removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("dbwipes-faults-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The demo sensor table. Cloning the one generated table into every
/// catalog under test keeps identity stamps equal across managers, so
/// replies can be compared byte for byte.
fn sensor_table() -> Table {
    generate_sensor(&SensorConfig {
        num_readings: 2700,
        failing_sensors: vec![15],
        ..SensorConfig::small()
    })
    .table
}

fn catalog_of(table: Table) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(table).unwrap();
    catalog
}

/// A plain filesystem runtime — built via `with_backend`, never
/// `StorageRuntime::open`, so the `DBWIPES_FAULT_PLAN` environment knob
/// can never leak into these tests.
fn fs_runtime(dir: &std::path::Path) -> StorageRuntime {
    StorageRuntime::with_backend(Box::new(FsBackend::open(dir).unwrap()))
}

/// A runtime whose writes follow the given fault plan.
fn faulty_runtime(dir: &std::path::Path, plan: &str) -> StorageRuntime {
    let fs = FsBackend::open(dir).unwrap();
    let plan = FaultPlan::parse(plan).unwrap();
    StorageRuntime::with_backend(Box::new(FaultInjectingBackend::new(Box::new(fs), plan)))
}

/// Sixteen schema-valid sensor rows, distinct enough to move aggregates.
fn append_rows_json() -> String {
    let rows: Vec<String> = (0..16)
        .map(|r| {
            let sensor = (r * 7) % 24;
            let temp = 40.0 + (r % 32) as f64 / 2.0;
            format!("[{sensor},0,0,0,{temp:.1},40.0,300.0,2.5]")
        })
        .collect();
    rows.join(",")
}

/// The deterministic part of a debug reply — the answer itself: the
/// ranked predicates and the base error. Cache flags and the wall-clock
/// `timings` block legitimately differ across managers.
fn answer_of(debug_reply: &str) -> (&str, &str) {
    let base_error = {
        let start = debug_reply.find(r#""base_error":"#).expect("reply carries base_error");
        let rest = &debug_reply[start..];
        &rest[..rest.find(',').expect("base_error is not the last field")]
    };
    let predicates = {
        let start = debug_reply.find(r#""predicates":["#).expect("reply carries predicates");
        let rest = &debug_reply[start..];
        &rest[..rest.find(r#","timings""#).expect("timings follow the predicates")]
    };
    (base_error, predicates)
}

/// Blanks the per-session cache counters in a `state` reply: whether an
/// answer came from a warm cache or a cold build is exactly what fault
/// tolerance must NOT change about the data — but it legitimately changes
/// hit/miss tallies.
fn mask_cache_counters(reply: &str) -> String {
    let mut masked = String::with_capacity(reply.len());
    let mut rest = reply;
    while let Some(pos) = rest.find(r#""cache_"#) {
        let after_key = &rest[pos..];
        let Some(colon) = after_key.find(':') else { break };
        masked.push_str(&rest[..pos + colon + 1]);
        masked.push('_');
        rest = after_key[colon + 1..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    masked.push_str(rest);
    masked
}

/// The brush→metric→debug script both managers replay, with the append
/// landing mid-session so answers after it are served while one side is
/// degraded. Returns every reply in order.
fn scripted_session(manager: &SessionManager) -> Vec<String> {
    let open = manager.handle_line(r#"{"cmd":"open_session"}"#);
    assert!(open.contains(r#""ok":true"#), "{open}");
    let session: u64 = open
        .split(r#""session":"#)
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("open_session reply carries the id");
    let mut replies = vec![open];
    for line in [
        format!(r#"{{"cmd":"run_query","session":{session},"sql":"{WINDOW_SQL}"}}"#),
        format!(
            r#"{{"cmd":"brush_outputs","session":{session},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
        ),
        format!(
            r#"{{"cmd":"set_metric","session":{session},"kind":"too_high","column":"std_temp","value":4}}"#
        ),
        format!(r#"{{"cmd":"debug","session":{session}}}"#),
        format!(r#"{{"cmd":"stream_append","table":"readings","rows":[{}]}}"#, append_rows_json()),
        // Re-running the query resets the brush and metric, so the second
        // explain is a full fresh question over the appended data.
        format!(r#"{{"cmd":"run_query","session":{session},"sql":"{WINDOW_SQL}"}}"#),
        format!(
            r#"{{"cmd":"brush_outputs","session":{session},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
        ),
        format!(
            r#"{{"cmd":"set_metric","session":{session},"kind":"too_high","column":"std_temp","value":4}}"#
        ),
        format!(r#"{{"cmd":"debug","session":{session}}}"#),
        format!(r#"{{"cmd":"state","session":{session}}}"#),
    ] {
        replies.push(manager.handle_line(&line));
    }
    replies
}

#[test]
fn all_writes_failing_serves_bit_identical_answers_from_memory() {
    let (clean_dir, faulty_dir) = (TempDir::new(), TempDir::new());
    let table = sensor_table();

    let clean = SessionManager::new(catalog_of(table.clone()));
    clean.attach_storage(Arc::new(fs_runtime(clean_dir.path())));
    let faulty = SessionManager::new(catalog_of(table));
    faulty.attach_storage(Arc::new(faulty_runtime(faulty_dir.path(), "every:1:io")));

    let clean_replies = scripted_session(&clean);
    let faulty_replies = scripted_session(&faulty);
    assert_eq!(clean_replies.len(), faulty_replies.len());
    for (i, (a, b)) in clean_replies.iter().zip(&faulty_replies).enumerate() {
        assert!(a.contains(r#""ok":true"#), "clean reply {i}: {a}");
        assert!(b.contains(r#""ok":true"#), "faulty reply {i}: {b}");
        if a.contains(r#""predicates":["#) {
            // Explains: compare the answer, not the wall-clock timings.
            assert_eq!(answer_of(a), answer_of(b), "debug answer diverged at reply {i}");
        } else if a.contains(r#""durable":"#) {
            // The append: the one reply that may differ — and only in the
            // durability flag, never in the data it reports.
            assert!(a.contains(r#""durable":true"#), "clean append must persist: {a}");
            assert!(b.contains(r#""durable":false"#), "faulty append cannot persist: {b}");
            assert_eq!(a.replace(r#""durable":true"#, r#""durable":false"#), *b);
        } else {
            assert_eq!(mask_cache_counters(a), mask_cache_counters(b), "reply {i} diverged");
        }
    }

    let clean_stats = clean.handle_line(r#"{"cmd":"stats"}"#);
    assert!(clean_stats.contains(r#""degraded":false"#), "{clean_stats}");
    let faulty_stats = faulty.handle_line(r#"{"cmd":"stats"}"#);
    assert!(faulty_stats.contains(r#""degraded":true"#), "{faulty_stats}");
    assert!(faulty_stats.contains(r#""degraded_entries":1"#), "{faulty_stats}");
    assert!(
        faulty_stats.contains(r#""last_persist_error":""#),
        "the health block must carry the failure: {faulty_stats}"
    );
}

#[test]
fn degraded_mode_self_heals_on_the_first_successful_write() {
    let dir = TempDir::new();
    // Default retry budget is 3, so each save burns 4 write attempts.
    // Attempts 1..=8 fail: the registration save (1-4) enters degraded
    // mode, the first append (5-8) stays degraded, the second append
    // (attempt 9) lands and self-heals.
    let runtime = Arc::new(faulty_runtime(dir.path(), "range:1:8:io"));
    let manager = SessionManager::new(Catalog::new());
    manager.attach_storage(Arc::clone(&runtime));

    manager.register_table(sensor_table());
    let health = runtime.health();
    assert!(health.degraded, "exhausted retries must enter degraded mode");
    assert_eq!(health.degraded_entries, 1);
    assert_eq!(health.consecutive_failures, 1);
    assert_eq!(health.retries, 3);
    assert!(health.last_persist_error.is_some());

    let append =
        format!(r#"{{"cmd":"stream_append","table":"readings","rows":[{}]}}"#, append_rows_json());
    let first = manager.handle_line(&append);
    assert!(first.contains(r#""ok":true"#), "{first}");
    assert!(first.contains(r#""durable":false"#), "degraded append must say so: {first}");
    let health = runtime.health();
    assert!(health.degraded);
    assert_eq!(health.degraded_entries, 1, "one healthy→degraded edge, not two");
    assert_eq!(health.consecutive_failures, 2);

    let second = manager.handle_line(&append);
    assert!(second.contains(r#""ok":true"#), "{second}");
    assert!(second.contains(r#""durable":true"#), "the landed write must self-heal: {second}");
    let health = runtime.health();
    assert!(!health.degraded, "a successful write must clear degraded mode");
    assert_eq!(health.consecutive_failures, 0);
    assert_eq!(health.degraded_entries, 1, "the healed edge is history, not erased");
    assert_eq!(health.retries, 6, "three retries per exhausted save, none for the success");
    assert!(health.last_persist_error.is_none());

    // The healed snapshot is the full table: a fresh runtime over the
    // same directory restores every row, including both appends.
    let restored = fs_runtime(dir.path()).restore_catalog().unwrap();
    let table = restored.table_arc("readings").unwrap();
    assert_eq!(table.num_rows(), 2700 + 32);
}

/// Kills the child if the test unwinds before its graceful shutdown.
struct KillOnDrop(Option<Child>);

impl KillOnDrop {
    fn into_inner(mut self) -> Child {
        self.0.take().expect("child not yet taken")
    }
}

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn_crash_armed_server() -> (Child, String) {
    let mut child = Command::new(BIN)
        .args(["--readings", "300", "--listen", "127.0.0.1:0"])
        .env("DBWIPES_ENABLE_CRASH", "1")
        // Each caught panic still prints its one-line report; keep the
        // hundred of them short.
        .env("RUST_BACKTRACE", "0")
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dbwipes-server");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr = loop {
        let mut line = String::new();
        stderr.read_line(&mut line).expect("read server banner");
        assert!(!line.is_empty(), "server exited before the listen banner");
        if line.contains("listening on") {
            break line
                .trim()
                .rsplit(' ')
                .next()
                .expect("banner ends with the address")
                .to_string();
        }
    };
    // Keep draining: a hundred panic reports would otherwise fill the
    // pipe and block the server on a blind stderr write.
    std::thread::spawn(move || {
        let mut sink = String::new();
        let _ = std::io::Read::read_to_string(&mut stderr, &mut sink);
    });
    (child, addr)
}

#[test]
fn one_hundred_crashes_cost_zero_workers_and_quarantine_each_session() {
    let (child, addr) = spawn_crash_armed_server();
    let guard = KillOnDrop(Some(child));
    let mut client = LineClient::connect(&addr, Duration::from_secs(30)).expect("connect");
    let mut roundtrip =
        |line: String| -> String { client.roundtrip(&line).expect("reply").to_string() };

    for i in 0..100 {
        let open = roundtrip(r#"{"cmd":"open_session"}"#.to_string());
        assert!(open.contains(r#""ok":true"#), "crash {i}: {open}");
        let session: u64 = open
            .split(r#""session":"#)
            .nth(1)
            .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
            .and_then(|digits| digits.parse().ok())
            .expect("open_session reply carries the id");

        // The panic comes back as a structured, non-retryable internal
        // error — on the same connection, so the worker survived.
        let crash = roundtrip(format!(r#"{{"cmd":"crash","session":{session}}}"#));
        assert!(crash.contains(r#""ok":false"#), "crash {i}: {crash}");
        assert!(crash.contains(r#""kind":"internal""#), "crash {i}: {crash}");
        assert!(crash.contains(r#""retryable":false"#), "crash {i}: {crash}");
        assert!(crash.contains("handler panicked"), "crash {i}: {crash}");

        // The poisoned session is fenced...
        let state = roundtrip(format!(r#"{{"cmd":"state","session":{session}}}"#));
        assert!(state.contains(r#""kind":"quarantined""#), "crash {i}: {state}");

        // ...but still closable, and the rest of the server is untouched.
        let closed = roundtrip(format!(r#"{{"cmd":"close_session","session":{session}}}"#));
        assert!(closed.contains(r#""closed""#), "crash {i}: {closed}");
    }

    let pong = roundtrip(r#"{"cmd":"ping"}"#.to_string());
    assert!(pong.contains("pong"), "{pong}");
    let stats = roundtrip(r#"{"cmd":"stats"}"#.to_string());
    assert!(stats.contains(r#""panics_caught":100"#), "{stats}");
    assert!(stats.contains(r#""quarantined_sessions":100"#), "{stats}");
    assert!(
        stats.contains(r#""workers_resurrected":0"#),
        "a caught panic must never cost a worker: {stats}"
    );

    let reply = roundtrip(r#"{"cmd":"shutdown"}"#.to_string());
    assert!(reply.contains(r#""shutting_down":true"#), "{reply}");
    let status = guard.into_inner().wait().expect("server exits after the ctrl-line");
    assert!(status.success(), "graceful shutdown must exit 0, got {status:?}");
}

#[test]
fn crash_hook_is_a_plain_user_error_when_disarmed() {
    // In-process, `DBWIPES_ENABLE_CRASH` is unset: the hook must refuse
    // with a classic string error — no panic, no quarantine.
    let manager = SessionManager::new(catalog_of(sensor_table()));
    let open = manager.handle_line(r#"{"cmd":"open_session"}"#);
    assert!(open.contains(r#""ok":true"#), "{open}");
    let reply = manager.handle_line(r#"{"cmd":"crash","session":1}"#);
    assert!(reply.contains(r#""ok":false"#), "{reply}");
    assert!(reply.contains("crash is disabled"), "{reply}");
    assert!(!reply.contains(r#""kind":"internal""#), "disarmed crash is a user error: {reply}");
    let state = manager.handle_line(r#"{"cmd":"state","session":1}"#);
    assert!(state.contains(r#""ok":true"#), "disarmed crash must not quarantine: {state}");
}

#[test]
fn append_onto_restored_table_explains_bit_identically_to_cold_rebuild() {
    let dir = TempDir::new();
    let table = sensor_table();

    // ── Phase A: a durable manager answers an explain (warming the
    // registry) and flushes — table snapshot plus warm sidecars.
    {
        let manager = SessionManager::new(catalog_of(table.clone()));
        manager.attach_storage(Arc::new(fs_runtime(dir.path())));
        manager.flush_storage();
        let replies = scripted_session(&manager);
        assert!(replies.iter().all(|r| r.contains(r#""ok":true"#)));
        // The append persisted its snapshot inline, so this flush is
        // version-gated to zero table writes — it exists to write the
        // warm sidecars the explain built.
        manager.flush_storage();
    }

    // ── Phase B: restore from disk, rehydrate warm state, then append
    // MORE rows onto the restored table and explain.
    let restored_replies = {
        let runtime = Arc::new(fs_runtime(dir.path()));
        let manager = SessionManager::new(runtime.restore_catalog().unwrap());
        manager.attach_storage(Arc::clone(&runtime));
        let (caches, _bitmaps) = manager.rehydrate_warm_state();
        assert!(caches >= 1, "the warm sidecar must rehydrate");
        scripted_session(&manager)
    };

    // ── Phase C: a cold manager over the original table, no storage at
    // all, replaying the exact same phases A+B appends in memory.
    let cold_replies = {
        let manager = SessionManager::new(catalog_of(table));
        let append = format!(
            r#"{{"cmd":"stream_append","table":"readings","rows":[{}]}}"#,
            append_rows_json()
        );
        let reply = manager.handle_line(&append); // phase A's append
        assert!(reply.contains(r#""ok":true"#), "{reply}");
        scripted_session(&manager)
    };

    // Every data-bearing reply must match bit for bit; the appends differ
    // only in durability, the explains only in cache flags and timings.
    assert_eq!(restored_replies.len(), cold_replies.len());
    for (i, (restored, cold)) in restored_replies.iter().zip(&cold_replies).enumerate() {
        if restored.contains(r#""predicates":["#) {
            assert_eq!(
                answer_of(restored),
                answer_of(cold),
                "explain answer diverged at reply {i}"
            );
        } else if restored.contains(r#""durable":"#) {
            assert!(restored.contains(r#""durable":true"#), "{restored}");
            assert!(cold.contains(r#""durable":false"#), "{cold}");
            assert_eq!(restored.replace(r#""durable":true"#, r#""durable":false"#), *cold);
        } else {
            assert_eq!(
                mask_cache_counters(restored),
                mask_cache_counters(cold),
                "reply {i} diverged"
            );
        }
    }
}

//! Drives the real `dbwipes-server` binary end to end: once over
//! stdin/stdout pipes and once over a TCP connection, running a scripted
//! Figure-1 session through each transport.

use dbwipes_server::LineClient;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_dbwipes-server");

/// The scripted session: open, query, brush S and D′, pick ε, debug twice
/// (second one must hit the cache), clean, undo.
fn script() -> Vec<String> {
    let q = "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS std_temp FROM readings GROUP BY window ORDER BY window";
    vec![
        r#"{"cmd":"ping","id":0}"#.to_string(),
        r#"{"cmd":"open_session","id":1}"#.to_string(),
        format!(r#"{{"cmd":"run_query","session":1,"sql":"{q}","id":2}}"#),
        r#"{"cmd":"brush_outputs","session":1,"x":"window","y":"std_temp","brush":{"y_min":8},"id":3}"#.to_string(),
        r#"{"cmd":"brush_inputs","session":1,"x":"sensorid","y":"temp","brush":{"y_min":100},"id":4}"#.to_string(),
        r#"{"cmd":"set_metric","session":1,"kind":"too_high","column":"std_temp","value":4,"id":5}"#.to_string(),
        r#"{"cmd":"debug","session":1,"id":6}"#.to_string(),
        r#"{"cmd":"debug","session":1,"id":7}"#.to_string(),
        r#"{"cmd":"click_predicate","session":1,"index":0,"id":8}"#.to_string(),
        r#"{"cmd":"undo","session":1,"id":9}"#.to_string(),
        r#"{"cmd":"stats","id":10}"#.to_string(),
    ]
}

fn check_replies(replies: &[String]) {
    assert_eq!(replies.len(), script().len());
    for (i, reply) in replies.iter().enumerate() {
        assert!(reply.contains(r#""ok":true"#), "line {i} failed: {reply}");
        assert!(reply.contains(&format!(r#""id":{i}"#)), "line {i} lost its id: {reply}");
    }
    // First debug builds, second reuses.
    assert!(replies[6].contains(r#""cache_hit":false"#), "{}", replies[6]);
    assert!(replies[7].contains(r#""cache_hit":true"#), "{}", replies[7]);
    assert!(replies[6].contains(r#""predicates":[{"#), "{}", replies[6]);
    // The click rewrote the query; stats saw one aggregate-cache build and
    // one memoized explanation replay.
    assert!(replies[8].contains("NOT ("), "{}", replies[8]);
    assert!(replies[10].contains(r#""misses":1"#), "{}", replies[10]);
    assert!(replies[10].contains(r#""explanation_hits":1"#), "{}", replies[10]);
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn stdio_transport_serves_a_scripted_session() {
    let mut child = Command::new(BIN)
        .args(["--readings", "2700"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn dbwipes-server");
    {
        let mut stdin = child.stdin.take().expect("piped stdin");
        for line in script() {
            writeln!(stdin, "{line}").unwrap();
        }
        // Dropping stdin sends EOF, so the server exits after replying.
    }
    let output = child.wait_with_output().expect("server exits after EOF");
    assert!(output.status.success(), "server exited with {:?}", output.status);
    let replies: Vec<String> =
        String::from_utf8(output.stdout).unwrap().lines().map(str::to_string).collect();
    check_replies(&replies);
}

#[test]
fn tcp_shutdown_ctrl_line_drains_and_exits_zero() {
    let mut child = Command::new(BIN)
        .args([
            "--readings",
            "1350",
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-depth",
            "4",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dbwipes-server");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr = {
        let mut line = String::new();
        stderr.read_line(&mut line).expect("read listen banner");
        line.trim().rsplit(' ').next().expect("banner ends with the address").to_string()
    };

    let mut client =
        LineClient::connect(&addr, std::time::Duration::from_secs(30)).expect("connect");
    let mut roundtrip =
        |line: &str| -> String { client.roundtrip(line).expect("reply").to_string() };
    assert!(roundtrip(r#"{"cmd":"ping"}"#).contains(r#""pong":true"#));
    // The pooled front-end reports executor counters through `stats`.
    let stats = roundtrip(r#"{"cmd":"stats"}"#);
    assert!(stats.contains(r#""pool""#), "{stats}");
    assert!(stats.contains(r#""workers":2"#), "{stats}");
    // The ctrl-line: reply is flushed, the pool drains, the process
    // exits 0 — the graceful-shutdown contract the CI soak job gates on.
    assert!(roundtrip(r#"{"cmd":"shutdown"}"#).contains(r#""shutting_down":true"#));
    let status = child.wait().expect("server exits after the ctrl-line");
    assert!(status.success(), "graceful shutdown must exit 0, got {status:?}");
    // The drain summary reaches stderr before exit.
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stderr, &mut rest).unwrap();
    assert!(rest.contains("drained"), "{rest}");
}

#[test]
fn tcp_transport_serves_a_scripted_session() {
    // Port 0 → the OS picks a free port; the server prints the bound
    // address on stderr as `dbwipes-server listening on <addr>`.
    let mut child = Command::new(BIN)
        .args(["--readings", "2700", "--listen", "127.0.0.1:0"])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dbwipes-server");
    // Keep the stderr reader alive for the whole test so the server's
    // later diagnostics never hit a closed pipe.
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let _child = KillOnDrop(child);
    let addr = {
        let mut line = String::new();
        stderr.read_line(&mut line).expect("read listen banner");
        line.trim().rsplit(' ').next().expect("banner ends with the address").to_string()
    };

    let mut client =
        LineClient::connect(&addr, std::time::Duration::from_secs(30)).expect("connect");
    let mut replies = Vec::new();
    for line in script() {
        replies.push(client.roundtrip(&line).expect("reply").to_string());
    }
    check_replies(&replies);
}

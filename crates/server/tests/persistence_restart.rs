//! Restart durability, end to end over the real binary: a server pointed
//! at a `--data-dir` seeds and snapshots its catalog, a graceful shutdown
//! flushes warm state, and a restarted server over the same directory
//! restores the catalog without re-registering tables and answers a
//! repeated explain from the rehydrated caches — bit-identical to the
//! pre-restart answer. A kill without a flush still recovers to the last
//! durable snapshot.

use dbwipes_server::LineClient;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_dbwipes-server");

/// Kills the child if the test unwinds before its graceful shutdown.
struct KillOnDrop(Option<Child>);

impl KillOnDrop {
    fn into_inner(mut self) -> Child {
        self.0.take().expect("child not yet taken")
    }

    fn child_mut(&mut self) -> &mut Child {
        self.0.as_mut().expect("child not yet taken")
    }
}

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns the server over `data_dir`, returning the child, its bound
/// address, everything stderr printed before the listen banner (the
/// restore report, on a restart), and the live stderr reader — which the
/// caller must keep alive so the server's later diagnostics never hit a
/// closed pipe.
fn spawn_server(
    data_dir: &std::path::Path,
) -> (Child, String, String, BufReader<std::process::ChildStderr>) {
    let mut child = Command::new(BIN)
        .args([
            "--readings",
            "2700",
            "--listen",
            "127.0.0.1:0",
            "--data-dir",
            data_dir.to_str().expect("utf-8 temp path"),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dbwipes-server");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut preamble = String::new();
    let addr = loop {
        let mut line = String::new();
        stderr.read_line(&mut line).expect("read server banner");
        assert!(!line.is_empty(), "server exited before the listen banner:\n{preamble}");
        if line.contains("listening on") {
            break line
                .trim()
                .rsplit(' ')
                .next()
                .expect("banner ends with the address")
                .to_string();
        }
        preamble.push_str(&line);
    };
    (child, addr, preamble, stderr)
}

/// The repeated question: open a session, run the window query, brush,
/// pick ε, debug. Returns the run_query reply, the debug reply, and the
/// final `stats` reply.
fn run_explain(addr: &str) -> (String, String, String) {
    let q = "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS std_temp FROM readings \
             GROUP BY window ORDER BY window";
    let mut client = LineClient::connect(addr, Duration::from_secs(30)).expect("connect");
    let mut roundtrip =
        |line: String| -> String { client.roundtrip(&line).expect("reply").to_string() };
    let open = roundtrip(r#"{"cmd":"open_session"}"#.to_string());
    assert!(open.contains(r#""ok":true"#), "{open}");
    let session: u64 = open
        .split(r#""session":"#)
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("open_session reply carries the id");
    let query = roundtrip(format!(r#"{{"cmd":"run_query","session":{session},"sql":"{q}"}}"#));
    assert!(query.contains(r#""ok":true"#), "{query}");
    for line in [
        format!(
            r#"{{"cmd":"brush_outputs","session":{session},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
        ),
        format!(
            r#"{{"cmd":"set_metric","session":{session},"kind":"too_high","column":"std_temp","value":4}}"#
        ),
    ] {
        let reply = roundtrip(line);
        assert!(reply.contains(r#""ok":true"#), "{reply}");
    }
    let debug = roundtrip(format!(r#"{{"cmd":"debug","session":{session}}}"#));
    assert!(debug.contains(r#""ok":true"#), "{debug}");
    let stats = roundtrip(r#"{"cmd":"stats"}"#.to_string());
    (query, debug, stats)
}

/// The deterministic part of a debug reply — the answer itself: the
/// ranked predicates and the base error. The cache flags and the
/// wall-clock `timings` block legitimately differ across a restart.
fn answer_of(debug_reply: &str) -> (&str, &str) {
    let base_error = {
        let start = debug_reply.find(r#""base_error":"#).expect("reply carries base_error");
        let rest = &debug_reply[start..];
        &rest[..rest.find(',').expect("base_error is not the last field")]
    };
    let predicates = {
        let start = debug_reply.find(r#""predicates":["#).expect("reply carries predicates");
        let rest = &debug_reply[start..];
        &rest[..rest.find(r#","timings""#).expect("timings follow the predicates")]
    };
    (base_error, predicates)
}

fn graceful_shutdown(mut child: Child, addr: &str) {
    let mut client = LineClient::connect(addr, Duration::from_secs(30)).expect("connect");
    let reply = client.roundtrip(r#"{"cmd":"shutdown"}"#).expect("reply").to_string();
    assert!(reply.contains(r#""shutting_down":true"#), "{reply}");
    let status = child.wait().expect("server exits after the ctrl-line");
    assert!(status.success(), "graceful shutdown must exit 0, got {status:?}");
}

#[test]
fn restarted_server_restores_the_catalog_and_answers_from_rehydrated_caches() {
    let dir = std::env::temp_dir().join(format!("dbwipes-restart-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ── Run 1: fresh directory. Seeds the demo catalog, snapshots it,
    // answers a first explain cold, flushes warm state on shutdown.
    let (child, addr, preamble, _stderr) = spawn_server(&dir);
    let guard = KillOnDrop(Some(child));
    assert!(!preamble.contains("restored"), "fresh dir must not restore:\n{preamble}");
    let (query1, debug1, stats1) = run_explain(&addr);
    assert!(debug1.contains(r#""cache_hit":false"#), "first explain ever builds: {debug1}");
    assert!(stats1.contains(r#""attached":true"#), "{stats1}");
    assert!(!stats1.contains(r#""snapshot_saves":0"#), "the seed must be snapshotted: {stats1}");
    graceful_shutdown(guard.into_inner(), &addr);

    // ── Run 2: same directory. The catalog is restored (not regenerated,
    // not re-registered) and the very first explain is served from the
    // rehydrated registry cache, bit-identical to the cold answer.
    let (child, addr, preamble, _stderr) = spawn_server(&dir);
    let guard = KillOnDrop(Some(child));
    assert!(preamble.contains("restored"), "restart must report the restore:\n{preamble}");
    let (query2, debug2, stats2) = run_explain(&addr);
    assert_eq!(query1, query2, "restored table must answer the query identically");
    assert_eq!(
        answer_of(&debug1),
        answer_of(&debug2),
        "the explain answer must be bit-identical across the restart"
    );
    assert!(
        debug2.contains(r#""cache_hit":true"#),
        "first explain after restart must hit the rehydrated cache: {debug2}"
    );
    assert!(stats2.contains(r#""snapshot_loads":1"#), "{stats2}");
    assert!(!stats2.contains(r#""rehydrated_caches":0"#), "{stats2}");
    assert!(!stats2.contains(r#""bytes_on_disk":0"#), "{stats2}");
    // Tier-1 hit and warm-bitmap hits, with zero tier-1 builds: the
    // acceptance criterion that a restart keeps registry-hit speed.
    assert!(stats2.contains(r#""misses":0"#), "no aggregate cache was rebuilt: {stats2}");
    assert!(stats2.contains(r#""hits":1"#), "{stats2}");
    graceful_shutdown(guard.into_inner(), &addr);

    // ── Run 3: killed without any flush. The earlier snapshots are the
    // durable truth; the next start must still restore cleanly.
    let (child, addr, preamble, _stderr) = spawn_server(&dir);
    {
        let mut guard = KillOnDrop(Some(child));
        assert!(preamble.contains("restored"), "{preamble}");
        let mut client = LineClient::connect(&addr, Duration::from_secs(30)).expect("connect");
        let pong = client.roundtrip(r#"{"cmd":"ping"}"#).expect("reply").to_string();
        assert!(pong.contains("pong"), "{pong}");
        guard.child_mut().kill().expect("kill without flush");
        guard.child_mut().wait().expect("reap");
    }

    // ── Run 4: recovery after the kill.
    let (child, addr, preamble, _stderr) = spawn_server(&dir);
    let guard = KillOnDrop(Some(child));
    assert!(preamble.contains("restored"), "kill must not lose the snapshot:\n{preamble}");
    let (query4, debug4, _) = run_explain(&addr);
    assert_eq!(query1, query4);
    assert_eq!(answer_of(&debug1), answer_of(&debug4));
    graceful_shutdown(guard.into_inner(), &addr);

    let _ = std::fs::remove_dir_all(&dir);
}

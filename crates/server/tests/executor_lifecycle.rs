//! Lifecycle edges of the bounded worker-pool TCP executor: queue-full
//! `busy` backpressure, the hard connection cap, idle-timeout closes, and
//! graceful shutdown draining an in-flight `explain`.
//!
//! Each test runs `serve_pooled` in-process over an ephemeral port with a
//! deliberately tiny pool so the edge under test is reached
//! deterministically, then shuts the pool down through the manager's flag
//! and joins the serving thread.

use dbwipes_data::{generate_sensor, SensorConfig};
use dbwipes_server::{serve_pooled, Json, LineClient, PoolConfig, PoolSnapshot, SessionManager};
use dbwipes_storage::Catalog;
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A pooled server running in a background thread.
struct TestServer {
    manager: Arc<SessionManager>,
    addr: String,
    serving: Option<JoinHandle<std::io::Result<Arc<dbwipes_server::PoolStats>>>>,
}

impl TestServer {
    fn start(readings: usize, config: PoolConfig) -> Self {
        let data = generate_sensor(&SensorConfig {
            num_readings: readings,
            failing_sensors: vec![15],
            ..SensorConfig::small()
        });
        let mut catalog = Catalog::new();
        catalog.register(data.table).unwrap();
        let manager = Arc::new(SessionManager::new(catalog));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let serving = {
            let manager = Arc::clone(&manager);
            std::thread::spawn(move || serve_pooled(manager, listener, config))
        };
        TestServer { manager, addr, serving: Some(serving) }
    }

    fn connect(&self) -> Client {
        Client(LineClient::connect(&self.addr, Duration::from_secs(20)).expect("connect"))
    }

    /// Requests shutdown, joins the serving thread, and returns the pool
    /// counters.
    fn stop(mut self) -> PoolSnapshot {
        self.manager.request_shutdown();
        let stats = self
            .serving
            .take()
            .expect("server still running")
            .join()
            .expect("serving thread panicked")
            .expect("serve_pooled failed");
        stats.snapshot()
    }
}

/// [`LineClient`] with panicking (test-assertion) verbs.
struct Client(LineClient);

impl Client {
    fn send(&mut self, line: &str) {
        self.0.send(line).expect("write request");
    }

    fn read_reply(&mut self) -> Json {
        self.0.read_reply().expect("read reply").expect("connection closed before a reply arrived")
    }

    fn roundtrip(&mut self, line: &str) -> Json {
        self.send(line);
        self.read_reply()
    }

    /// Reads until EOF, returning any lines seen on the way.
    fn read_to_eof(&mut self) -> Vec<Json> {
        self.0.read_to_eof().expect("reading to EOF")
    }
}

fn long_idle() -> Duration {
    Duration::from_secs(60)
}

#[test]
fn saturated_queue_answers_busy_and_recovers() {
    // One worker, one queue slot: the third concurrent connection must be
    // turned away with a structured busy reply.
    let server = TestServer::start(
        120,
        PoolConfig {
            workers: 1,
            queue_depth: 1,
            max_connections: 16,
            idle_timeout: long_idle(),
            read_timeout: long_idle(),
        },
    );

    // A occupies the only worker (a served roundtrip proves it was popped
    // off the queue)...
    let mut a = server.connect();
    assert_eq!(a.roundtrip(r#"{"cmd":"ping"}"#).get("pong"), Some(&Json::Bool(true)));
    // ...B takes the only queue slot (it is admitted but never served
    // while A stays connected)...
    let mut b = server.connect();
    b.send(r#"{"cmd":"ping"}"#);
    std::thread::sleep(Duration::from_millis(100));
    // ...so C's admission overflows the queue. The busy reply is pushed
    // at admission time, before C sends anything.
    let mut c = server.connect();
    let reply = c.read_reply();
    assert_eq!(reply.get("ok"), Some(&Json::Bool(false)), "{reply}");
    assert_eq!(reply.get("busy"), Some(&Json::Bool(true)), "{reply}");
    assert!(reply.get("error").and_then(Json::as_str).unwrap().contains("queue full"), "{reply}");

    // Backpressure is not failure: once A leaves, the worker pops B and
    // serves the command it queued.
    drop(a);
    assert_eq!(b.read_reply().get("pong"), Some(&Json::Bool(true)));

    let stats = server.stop();
    assert_eq!(stats.rejected, 1, "exactly C was turned away");
    assert!(stats.peak_connections >= 2, "A and B were admitted together: {stats:?}");
    assert_eq!(stats.workers, 1);
}

#[test]
fn connection_cap_rejects_with_busy() {
    // Cap of one admitted connection (normalized to workers=1): the
    // second concurrent client bounces off the cap, not the queue.
    let server = TestServer::start(
        120,
        PoolConfig {
            workers: 1,
            queue_depth: 8,
            max_connections: 1,
            idle_timeout: long_idle(),
            read_timeout: long_idle(),
        },
    );
    let mut a = server.connect();
    assert_eq!(a.roundtrip(r#"{"cmd":"ping"}"#).get("pong"), Some(&Json::Bool(true)));

    let mut b = server.connect();
    let reply = b.read_reply();
    assert_eq!(reply.get("busy"), Some(&Json::Bool(true)), "{reply}");
    assert!(
        reply.get("error").and_then(Json::as_str).unwrap().contains("connection limit"),
        "{reply}"
    );
    // The rejected socket is closed server-side.
    assert!(b.read_to_eof().is_empty());

    // The admitted connection is unaffected by the rejection next door.
    assert_eq!(a.roundtrip(r#"{"cmd":"ping"}"#).get("pong"), Some(&Json::Bool(true)));
    let stats = server.stop();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.max_connections, 1);
}

#[test]
fn silent_connections_are_closed_after_the_idle_timeout() {
    let idle = Duration::from_millis(200);
    let server = TestServer::start(
        120,
        PoolConfig {
            workers: 2,
            queue_depth: 4,
            max_connections: 8,
            idle_timeout: idle,
            read_timeout: long_idle(),
        },
    );
    let mut a = server.connect();
    assert_eq!(a.roundtrip(r#"{"cmd":"ping"}"#).get("pong"), Some(&Json::Bool(true)));

    // Stay silent: the server must notify and close on its own.
    let seen = a.read_to_eof();
    assert_eq!(seen.len(), 1, "one timeout notice then EOF: {seen:?}");
    assert_eq!(seen[0].get("idle_timeout"), Some(&Json::Bool(true)), "{}", seen[0]);
    assert!(seen[0].get("error").and_then(Json::as_str).unwrap().contains("idle timeout"));

    // The slot is free again: a fresh connection is served immediately.
    let mut b = server.connect();
    assert_eq!(b.roundtrip(r#"{"cmd":"ping"}"#).get("pong"), Some(&Json::Bool(true)));
    let stats = server.stop();
    assert_eq!(stats.rejected, 0);
    assert!(stats.served_connections >= 1);
}

#[test]
fn graceful_shutdown_drains_an_in_flight_explain() {
    let server = TestServer::start(
        2_700,
        PoolConfig {
            workers: 2,
            queue_depth: 4,
            max_connections: 8,
            idle_timeout: long_idle(),
            read_timeout: long_idle(),
        },
    );

    // Walk a session to the brink of `debug`.
    let mut a = server.connect();
    let session = a
        .roundtrip(r#"{"cmd":"open_session"}"#)
        .get("session")
        .and_then(Json::as_u64)
        .expect("session id");
    let query = "SELECT window, avg(temp) AS avg_temp, stddev(temp) AS std_temp FROM readings \
                 GROUP BY window ORDER BY window";
    for line in [
        format!(r#"{{"cmd":"run_query","session":{session},"sql":"{query}"}}"#),
        format!(
            r#"{{"cmd":"brush_outputs","session":{session},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
        ),
        format!(
            r#"{{"cmd":"set_metric","session":{session},"kind":"too_high","column":"std_temp","value":4}}"#
        ),
    ] {
        let reply = a.roundtrip(&line);
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    }

    // Fire the explain (tens of milliseconds of pipeline work), then have
    // a second connection send the shutdown ctrl-line while it runs.
    a.send(&format!(r#"{{"cmd":"debug","session":{session}}}"#));
    std::thread::sleep(Duration::from_millis(20));
    let mut ctrl = server.connect();
    let reply = ctrl.roundtrip(r#"{"cmd":"shutdown"}"#);
    assert_eq!(reply.get("shutting_down"), Some(&Json::Bool(true)), "{reply}");

    // The in-flight explain must complete and its reply must be flushed
    // before the connection is drained and closed.
    let explain = a.read_reply();
    assert_eq!(explain.get("ok"), Some(&Json::Bool(true)), "{explain}");
    assert!(
        !explain.get("predicates").unwrap().as_array().unwrap().is_empty(),
        "drained explain still carries its ranking: {explain}"
    );
    let trailing = a.read_to_eof();
    assert!(
        trailing.iter().all(|l| l.get("shutdown") == Some(&Json::Bool(true))),
        "only shutdown notices may follow the drained reply: {trailing:?}"
    );

    // The pool unwinds cleanly: serving thread returns Ok, counters final.
    let stats = server.stop();
    assert!(stats.served_connections >= 1, "{stats:?}");
    assert_eq!(stats.active_connections, 0, "everything drained: {stats:?}");
    assert!(stats.commands >= 5, "{stats:?}");
}

#[test]
fn batch_executes_back_to_back_and_reports_in_stats() {
    let server = TestServer::start(
        120,
        PoolConfig {
            workers: 2,
            queue_depth: 4,
            max_connections: 8,
            idle_timeout: long_idle(),
            read_timeout: long_idle(),
        },
    );
    let mut a = server.connect();
    let session =
        a.roundtrip(r#"{"cmd":"open_session"}"#).get("session").and_then(Json::as_u64).unwrap();
    let reply = a.roundtrip(&format!(
        r#"{{"cmd":"batch","id":"replay","commands":[{{"cmd":"state","session":{session}}},{{"cmd":"state","session":{session}}},{{"cmd":"ping"}}]}}"#
    ));
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("replay"));
    assert_eq!(reply.get("count").and_then(Json::as_u64), Some(3));
    let results = reply.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    assert!(results.iter().all(|r| r.get("ok") == Some(&Json::Bool(true))), "{results:?}");

    let stats_reply = a.roundtrip(r#"{"cmd":"stats"}"#);
    let pool = stats_reply.get("pool").expect("pooled front-end reports executor stats");
    assert_eq!(pool.get("batches").and_then(Json::as_u64), Some(1), "{pool}");
    assert_eq!(pool.get("workers").and_then(Json::as_u64), Some(2), "{pool}");

    let stats = server.stop();
    assert_eq!(stats.batches, 1);
}

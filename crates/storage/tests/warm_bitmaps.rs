//! The process-wide warm bitmap store: publish-on-drop, preload, and the
//! snapshot round trip behind restart rehydration.
//!
//! Lives in its own integration-test binary because
//! [`enable_warm_bitmap_store`] flips a sticky process-global switch that
//! would change cache-stat expectations of the unit tests.

use dbwipes_storage::persist::{decode_warm_bitmaps, encode_warm_bitmaps};
use dbwipes_storage::{
    enable_warm_bitmap_store, export_warm_bitmaps, seed_warm_bitmaps, warm_bitmap_rehydrated_count,
    Condition, ConditionBitmapCache, DataType, Schema, Table, Value,
};

fn table() -> Table {
    let schema = Schema::of(&[("sensorid", DataType::Int), ("temp", DataType::Float)]);
    let mut t = Table::new("readings", schema).unwrap();
    for i in 0..100i64 {
        t.push_row(vec![Value::Int(i % 10), Value::Float(20.0 + (i % 7) as f64)]).unwrap();
    }
    t
}

#[test]
fn dropped_caches_warm_their_successors_and_survive_the_snapshot_codec() {
    enable_warm_bitmap_store();
    let t = table();
    let cond = Condition::equals("sensorid", 3);

    // A first cache computes the bitmap (one miss), then donates it on drop.
    let first = ConditionBitmapCache::new(&t);
    let expected = first.condition(&t, &cond).unwrap();
    assert_eq!(first.stats(), (0, 1));
    drop(first);

    // A successor over the same table data starts preloaded: pure hit.
    let second = ConditionBitmapCache::new(&t);
    let warmed = second.condition(&t, &cond).unwrap();
    assert_eq!(second.stats(), (1, 0), "preloaded bitmap must score as a hit");
    assert_eq!(warmed.trues, expected.trues);

    // Export → encode → decode → seed models the restart path: the seeded
    // store warms caches over a table with the *restored* stamps.
    let exported = export_warm_bitmaps(t.id(), t.version());
    assert!(!exported.is_empty());
    let decoded = decode_warm_bitmaps(&encode_warm_bitmaps(&exported)).unwrap();
    assert_eq!(decoded.len(), exported.len());

    let before = warm_bitmap_rehydrated_count();
    let fake_id = t.id() + 1_000_000;
    let seeded = seed_warm_bitmaps(fake_id, t.version(), decoded);
    assert_eq!(seeded, exported.len());
    assert_eq!(warm_bitmap_rehydrated_count(), before + seeded as u64);

    // A mutated table (new version) must not see the donated bitmaps.
    let mut t2 = t.clone();
    t2.delete_row(0.into()).unwrap();
    let stale = ConditionBitmapCache::new(&t2);
    stale.condition(&t2, &cond).unwrap();
    assert_eq!(stale.stats(), (0, 1), "a new data version starts cold");
}

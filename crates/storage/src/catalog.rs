//! A named collection of tables — the "database" DBWipes queries against.

use crate::error::StorageError;
use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A catalog of tables keyed by lower-cased name.
///
/// DBWipes' demo databases contain a handful of tables (FEC contributions,
/// Intel sensor readings); a simple ordered map is sufficient and keeps
/// listing deterministic for tests and examples.
///
/// Tables are held behind [`Arc`], so cloning a catalog is cheap (one
/// reference-count bump per table) and many concurrent sessions can share
/// one set of immutable table snapshots. Mutation goes through
/// [`Catalog::table_mut`], which copies-on-write: the mutating catalog gets
/// a private copy of the table (with a fresh [`Table::version`]) while every
/// other clone keeps reading the original snapshot untouched.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table; fails if a table with the same (case-insensitive)
    /// name already exists.
    pub fn register(&mut self, table: Table) -> Result<(), StorageError> {
        let key = table.name().to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(StorageError::TableExists(table.name().to_string()));
        }
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Registers a table, replacing any existing table of the same name.
    pub fn register_or_replace(&mut self, table: Table) {
        self.tables.insert(table.name().to_ascii_lowercase(), Arc::new(table));
    }

    /// Removes and returns a table (cloning the data if other catalogs
    /// still share the snapshot).
    pub fn deregister(&mut self, name: &str) -> Option<Table> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Looks up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|arc| arc.as_ref())
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Looks up a table and returns a shared handle to its current
    /// snapshot. The handle stays valid (and immutable) even if the catalog
    /// later mutates or replaces the table — which is what lets the server's
    /// cache registry keep aggregate caches alive across brushes without
    /// holding any catalog lock.
    pub fn table_arc(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Installs an already-shared table snapshot, replacing any existing
    /// entry of the same (case-insensitive) name without cloning the data.
    ///
    /// This is the streaming-append fan-out path: after the base catalog
    /// grows a table, every open session adopts the new snapshot by
    /// installing the same [`Arc`], so all readers converge on one shared
    /// copy instead of each session copy-on-writing its own.
    pub fn install_snapshot(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name().to_ascii_lowercase(), table);
    }

    /// Looks up a table mutably, copying-on-write when the snapshot is
    /// shared with other catalog clones or outstanding [`Catalog::table_arc`]
    /// handles.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .map(Arc::make_mut)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// True when the catalog contains the named table.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.name().to_string()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn table(name: &str) -> Table {
        Table::new(name, Schema::of(&[("x", DataType::Int)])).unwrap()
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register(table("Sensors")).unwrap();
        assert!(c.contains("sensors"));
        assert!(c.contains("SENSORS"));
        assert_eq!(c.table("sensors").unwrap().name(), "Sensors");
        assert_eq!(c.len(), 1);
        assert!(c.table("donations").is_err());
    }

    #[test]
    fn duplicate_registration_rejected_but_replace_allowed() {
        let mut c = Catalog::new();
        c.register(table("t")).unwrap();
        assert!(matches!(c.register(table("T")), Err(StorageError::TableExists(_))));
        c.register_or_replace(table("T"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().name(), "T");
    }

    #[test]
    fn mutation_through_table_mut() {
        let mut c = Catalog::new();
        c.register(table("t")).unwrap();
        c.table_mut("t").unwrap().push_row(vec![crate::value::Value::Int(1)]).unwrap();
        assert_eq!(c.table("t").unwrap().num_rows(), 1);
        assert!(c.table_mut("missing").is_err());
    }

    #[test]
    fn clones_share_snapshots_and_copy_on_write() {
        let mut base = Catalog::new();
        base.register(table("t")).unwrap();
        base.table_mut("t").unwrap().push_row(vec![crate::value::Value::Int(1)]).unwrap();

        let mut session = base.clone();
        let snapshot = base.table_arc("t").unwrap();
        assert!(Arc::ptr_eq(&snapshot, &session.table_arc("t").unwrap()));
        assert_eq!(snapshot.id(), session.table("t").unwrap().id());

        // The session mutates its view: it gets a private copy...
        session.table_mut("t").unwrap().delete_row(crate::table::RowId(0)).unwrap();
        assert_eq!(session.table("t").unwrap().visible_rows(), 0);
        // ...while the base catalog and the outstanding snapshot are untouched.
        assert_eq!(base.table("t").unwrap().visible_rows(), 1);
        assert_eq!(snapshot.visible_rows(), 1);
        // Same identity, different data version.
        assert_eq!(session.table("t").unwrap().id(), snapshot.id());
        assert_ne!(session.table("t").unwrap().version(), snapshot.version());

        // Deregistering while a snapshot is live clones the data out.
        let owned = base.deregister("t").unwrap();
        assert_eq!(owned.visible_rows(), 1);
        assert_eq!(snapshot.visible_rows(), 1);
    }

    #[test]
    fn install_snapshot_shares_the_arc() {
        let mut base = Catalog::new();
        base.register(table("t")).unwrap();
        let mut session = base.clone();

        base.table_mut("t").unwrap().push_row(vec![crate::value::Value::Int(7)]).unwrap();
        let grown = base.table_arc("t").unwrap();
        session.install_snapshot(Arc::clone(&grown));

        assert!(Arc::ptr_eq(&grown, &session.table_arc("t").unwrap()));
        assert_eq!(session.table("t").unwrap().num_rows(), 1);
    }

    #[test]
    fn deregister_removes() {
        let mut c = Catalog::new();
        c.register(table("a")).unwrap();
        c.register(table("b")).unwrap();
        assert_eq!(c.table_names(), vec!["a".to_string(), "b".to_string()]);
        let t = c.deregister("A").unwrap();
        assert_eq!(t.name(), "a");
        assert!(c.deregister("a").is_none());
        assert_eq!(c.len(), 1);
    }
}

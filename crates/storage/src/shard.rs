//! Horizontal sharding: a [`Table`] split into disjoint row partitions,
//! each owning its own contiguous [`RowSet`] universe.
//!
//! PR 5 made the parallelism seam of the vectorized predicate path
//! explicit: every kernel, bitmap and popcount is scoped to one table's
//! physical row universe. A [`ShardedTable`] exploits that seam. It
//! partitions a base table's rows by hash or range on a chosen column into
//! `N` shard tables; each shard is a self-contained [`Table`] (same schema,
//! same name, renumbered rows), so the entire existing machinery —
//! `CompiledCondition` kernels, `ConditionBitmapCache`, the engine's
//! aggregate caches — runs per shard unchanged, over a universe `1/N` the
//! size. A global→(shard, local) row-id mapping bridges the two worlds in
//! both directions.
//!
//! Determinism: shard assignment is a pure function of the row's shard-key
//! value (FNV-1a over the value's bit pattern, or quantile boundaries under
//! total order), locals are assigned in ascending global order, and merges
//! iterate shards in index order — so sharded execution is reproducible
//! run-to-run and, for a single shard, bit-identical to the unsharded path.
//!
//! ## Zone maps and shard pruning
//!
//! Each shard keeps a *zone map* per column: the total-order (`f64::total_cmp`)
//! minimum/maximum of its non-NULL values plus a has-NULL flag. Because the
//! columnar kernels compare with `total_cmp` as well, the zone map is an
//! interval in exactly the order the kernels use (so `-0.0 < +0.0`, and NaN
//! payloads sort above `+∞`), which makes [`ShardedTable::condition_may_match`]
//! sound: when it returns `false`, the condition's kernel on that shard is
//! guaranteed to produce an empty [`TriSet`](crate::predicate::TriSet) —
//! no TRUE rows *and* no UNKNOWN rows — so a caller may skip the column
//! scan entirely. On a hash-sharded table an equality on the shard column
//! additionally pins to exactly one shard, which is what turns sharding
//! into a raw-work reduction even on a single core.

use crate::error::StorageError;
use crate::predicate::Condition;
use crate::rowset::RowSet;
use crate::table::{EpochTolerance, RowId, Table, TableEpoch};
use crate::value::{DataType, Value};
use std::cmp::Ordering;
use std::sync::Arc;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — small, stable, dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// How rows are distributed over shards.
#[derive(Debug, Clone)]
enum Strategy {
    /// FNV-1a over the shard-key value's bit pattern (numeric) or bytes
    /// (string), modulo the shard count.
    Hash,
    /// Quantile boundaries over the sorted (total-order) non-NULL keys;
    /// shard `s` holds keys in `(boundaries[s-1], boundaries[s]]`.
    Range {
        /// `num_shards - 1` non-decreasing upper bounds.
        boundaries: Vec<f64>,
    },
}

/// Per-shard, per-column statistics backing
/// [`ShardedTable::condition_may_match`].
#[derive(Debug, Clone)]
struct ColumnZone {
    /// Total-order (`f64::total_cmp`) min/max over the shard's non-NULL
    /// numeric values (`None` for string/all-NULL columns). Computed under
    /// the same total order the kernels compare with, so `-0.0` and NaN
    /// rows are covered exactly.
    range: Option<(f64, f64)>,
    /// True when any row of the shard is NULL in this column — NULL rows
    /// evaluate to UNKNOWN under every kernel, so such a shard is never
    /// prunable for conditions on this column.
    has_null: bool,
}

/// The shard-key value of one row or literal, in the space shard
/// assignment hashes/partitions over.
enum Key<'a> {
    /// A numeric-class value via its `f64` widening (`Int`, `Float`,
    /// `Timestamp`, `Bool` as 1.0/0.0).
    Num(f64),
    /// A string value.
    Str(&'a str),
}

/// A [`Table`] partitioned into horizontal shards on a chosen column.
///
/// Construction copies the base table's rows (soft-delete flags included)
/// into per-shard tables that share the base's schema and name, so any
/// statement valid against the base validates against every shard. The
/// base table itself is not retained; [`ShardedTable::covers`] pins the
/// identity/version the partition was built from.
///
/// ```
/// use dbwipes_storage::{Condition, DataType, Schema, ShardedTable, Table, Value};
///
/// let mut t = Table::new("readings", Schema::of(&[("sensorid", DataType::Int)])).unwrap();
/// for i in 0..100i64 {
///     t.push_row(vec![Value::Int(i % 10)]).unwrap();
/// }
/// let sharded = ShardedTable::hash(&t, "sensorid", 4).unwrap();
/// assert_eq!(sharded.num_shards(), 4);
/// assert_eq!(sharded.shards().iter().map(|s| s.num_rows()).sum::<usize>(), 100);
///
/// // An equality on the shard column pins to exactly one shard.
/// let cond = Condition::equals("sensorid", 3);
/// let live: Vec<usize> =
///     (0..4).filter(|&s| sharded.condition_may_match(s, &cond)).collect();
/// assert_eq!(live.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedTable {
    base_id: u64,
    base_epoch: TableEpoch,
    base_rows: usize,
    shard_column: usize,
    strategy: Strategy,
    shards: Vec<Arc<Table>>,
    /// Global row index → (shard, local row index).
    to_local: Vec<(u32, u32)>,
    /// `to_global[shard][local]` = global row index (ascending in `local`).
    to_global: Vec<Vec<u32>>,
    /// `zones[shard][column]`.
    zones: Vec<Vec<ColumnZone>>,
}

impl ShardedTable {
    /// Partitions `table` into `shards` hash shards on `column` (any
    /// column type). Shard counts are clamped to at least 1; counts larger
    /// than the row count simply leave some shards empty. NULL shard keys
    /// go to shard 0.
    pub fn hash(table: &Table, column: &str, shards: usize) -> Result<ShardedTable, StorageError> {
        let idx = table.schema().resolve(column)?;
        ShardedTable::build(table, idx, shards.max(1), Strategy::Hash)
    }

    /// Partitions `table` into `shards` range shards on numeric `column`,
    /// with boundaries at the quantiles of the column's non-NULL values so
    /// shards are balanced on skew-free data. NULL shard keys go to
    /// shard 0.
    pub fn range(table: &Table, column: &str, shards: usize) -> Result<ShardedTable, StorageError> {
        let idx = table.schema().resolve(column)?;
        let dtype = table.schema().field_at(idx).expect("resolved").dtype;
        if !dtype.is_numeric() {
            return Err(StorageError::TypeMismatch {
                expected: "numeric".into(),
                found: dtype,
                context: format!("range-sharding column '{column}'"),
            });
        }
        let shards = shards.max(1);
        let col = table.column(idx).expect("resolved");
        let mut keys: Vec<f64> = (0..table.num_rows()).filter_map(|row| col.get_f64(row)).collect();
        keys.sort_unstable_by(f64::total_cmp);
        let boundaries: Vec<f64> = if keys.is_empty() {
            Vec::new()
        } else {
            (1..shards).map(|i| keys[(i * keys.len() / shards).min(keys.len() - 1)]).collect()
        };
        ShardedTable::build(table, idx, shards, Strategy::Range { boundaries })
    }

    fn build(
        table: &Table,
        shard_column: usize,
        num_shards: usize,
        strategy: Strategy,
    ) -> Result<ShardedTable, StorageError> {
        let base_rows = table.num_rows();
        if base_rows > u32::MAX as usize {
            return Err(StorageError::Eval(format!(
                "cannot shard a table with {base_rows} rows (> u32::MAX)"
            )));
        }
        let col = table.column(shard_column).expect("resolved");
        let dtype = table.schema().field_at(shard_column).expect("resolved").dtype;

        // Assign every physical row (soft-deleted included: bitmaps cover
        // them too) to its shard, locals ascending with globals.
        let mut shard_rows: Vec<Vec<RowId>> = vec![Vec::new(); num_shards];
        let mut to_local = Vec::with_capacity(base_rows);
        for row in 0..base_rows {
            let key = if dtype == DataType::Str {
                col.get_str(row).map(Key::Str)
            } else {
                col.get_f64(row).map(Key::Num)
            };
            let s = match key {
                None => 0, // NULL shard key
                Some(key) => shard_of_key(&strategy, num_shards, &key),
            };
            to_local.push((s as u32, shard_rows[s].len() as u32));
            shard_rows[s].push(RowId(row));
        }

        let mut shards = Vec::with_capacity(num_shards);
        let mut to_global = Vec::with_capacity(num_shards);
        let mut zones = Vec::with_capacity(num_shards);
        for rows in &shard_rows {
            let (mut shard, _) = table.materialize(rows, table.name())?;
            // `materialize` copies values only; re-apply soft-delete flags
            // so per-shard visible sets mirror the base exactly.
            for (local, &global) in rows.iter().enumerate() {
                if table.is_deleted(global) {
                    shard.delete_row(RowId(local))?;
                }
            }
            zones.push(column_zones(&shard));
            to_global.push(rows.iter().map(|r| r.index() as u32).collect());
            shards.push(Arc::new(shard));
        }

        Ok(ShardedTable {
            base_id: table.id(),
            base_epoch: table.epoch(),
            base_rows,
            shard_column,
            strategy,
            shards,
            to_local,
            to_global,
            zones,
        })
    }

    /// Number of shards (≥ 1; possibly more than the base has rows).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard tables, in shard-index order. Each is a full [`Table`]
    /// sharing the base's schema and name.
    pub fn shards(&self) -> &[Arc<Table>] {
        &self.shards
    }

    /// One shard table.
    pub fn shard(&self, s: usize) -> &Arc<Table> {
        &self.shards[s]
    }

    /// Physical row count of the base table (the global universe size).
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// Schema index of the column rows were partitioned on.
    pub fn shard_column(&self) -> usize {
        self.shard_column
    }

    /// True when this partition was built from exactly `table`'s current
    /// data ([`Table::id`] and the full [`Table::epoch`] both match).
    pub fn covers(&self, table: &Table) -> bool {
        self.covers_with(table, EpochTolerance::Exact)
    }

    /// Epoch comparison under an explicit tolerance: with
    /// [`EpochTolerance::TolerateAppends`], a partition also covers a
    /// table that has only gained rows since it was built — callers must
    /// then [`ShardedTable::absorb_append`] the delta before querying.
    pub fn covers_with(&self, table: &Table, tolerance: EpochTolerance) -> bool {
        table.id() == self.base_id && self.base_epoch.covers(table.epoch(), tolerance)
    }

    /// The [`Table::epoch`] of the base table this partition currently
    /// mirrors (advanced by [`ShardedTable::absorb_append`]).
    pub fn base_epoch(&self) -> TableEpoch {
        self.base_epoch
    }

    /// Grows the partition in place to mirror `table`, which must be an
    /// append-only descendant of the base this partition was built from
    /// (same id, same structural epoch, appended epoch at or past ours).
    /// Each new row lands in the shard its key partitions to — hash rows
    /// by key bits, range rows by the existing quantile boundaries — with
    /// zone maps and both row-id maps updated incrementally; nothing
    /// already partitioned is rebuilt. Returns the number of rows
    /// absorbed.
    pub fn absorb_append(&mut self, table: &Table) -> Result<usize, StorageError> {
        if table.id() != self.base_id {
            return Err(StorageError::Eval(format!(
                "cannot absorb appends from table id {} into a partition of id {}",
                table.id(),
                self.base_id
            )));
        }
        if !table.epoch().is_append_descendant_of(self.base_epoch)
            || table.num_rows() < self.base_rows
        {
            return Err(StorageError::Eval(format!(
                "table epoch {:?} is not an append-only descendant of the partition's {:?}",
                table.epoch(),
                self.base_epoch
            )));
        }
        if table.num_rows() > u32::MAX as usize {
            return Err(StorageError::Eval(format!(
                "cannot shard a table with {} rows (> u32::MAX)",
                table.num_rows()
            )));
        }
        if table.epoch() == self.base_epoch {
            return Ok(0);
        }
        let col = table.column(self.shard_column).expect("schema unchanged by appends");
        let dtype = table.schema().field_at(self.shard_column).expect("resolved").dtype;
        let absorbed = table.num_rows() - self.base_rows;
        for row in self.base_rows..table.num_rows() {
            let key = if dtype == DataType::Str {
                col.get_str(row).map(Key::Str)
            } else {
                col.get_f64(row).map(Key::Num)
            };
            let s = match key {
                None => 0, // NULL shard key, as at build time
                Some(key) => shard_of_key(&self.strategy, self.num_shards(), &key),
            };
            let shard = Arc::make_mut(&mut self.shards[s]);
            let local = shard.num_rows();
            let values = table.row(RowId(row))?;
            shard.push_row(values)?;
            // Appended rows are visible by definition (appends cannot
            // soft-delete), so no delete flag to mirror.
            self.to_local.push((s as u32, local as u32));
            self.to_global[s].push(row as u32);
            extend_zones(&mut self.zones[s], shard, local);
        }
        self.base_rows = table.num_rows();
        self.base_epoch = table.epoch();
        Ok(absorbed)
    }

    /// Maps a base-table row to its `(shard, local row)` address, or
    /// `None` when the row index is outside the base universe.
    pub fn locate(&self, global: RowId) -> Option<(usize, RowId)> {
        let (s, local) = *self.to_local.get(global.index())?;
        Some((s as usize, RowId(local as usize)))
    }

    /// Maps a shard-local row back to its base-table row.
    ///
    /// Panics when `shard` or `local` is out of bounds.
    pub fn global_of(&self, shard: usize, local: RowId) -> RowId {
        RowId(self.to_global[shard][local.index()] as usize)
    }

    /// Splits base-table rows into per-shard local row lists (ascending
    /// within each shard when the input is ascending). Rows outside the
    /// base universe are dropped, mirroring how the ranker filters
    /// out-of-range example rows.
    pub fn split_rows(&self, rows: &[RowId]) -> Vec<Vec<RowId>> {
        let mut out: Vec<Vec<RowId>> = vec![Vec::new(); self.num_shards()];
        for &row in rows {
            if let Some((s, local)) = self.locate(row) {
                out[s].push(local);
            }
        }
        out
    }

    /// Splits a base-universe [`RowSet`] into per-shard local sets.
    ///
    /// Panics when `set`'s universe is not the base row count.
    pub fn split_set(&self, set: &RowSet) -> Vec<RowSet> {
        assert_eq!(
            set.universe(),
            self.base_rows,
            "RowSet universe does not match the sharded base table"
        );
        let mut out: Vec<RowSet> =
            self.shards.iter().map(|t| RowSet::empty(t.num_rows())).collect();
        for row in set.iter() {
            let (s, local) = self.to_local[row];
            out[s as usize].insert(local as usize);
        }
        out
    }

    /// Merges per-shard local sets (one per shard, in shard order) back
    /// into a base-universe [`RowSet`] — the inverse of
    /// [`ShardedTable::split_set`].
    ///
    /// Panics when the slice length or any universe does not match.
    pub fn merge_sets(&self, sets: &[RowSet]) -> RowSet {
        assert_eq!(sets.len(), self.num_shards(), "one local set per shard required");
        let mut out = RowSet::empty(self.base_rows);
        for (s, set) in sets.iter().enumerate() {
            assert_eq!(
                set.universe(),
                self.shards[s].num_rows(),
                "local RowSet universe does not match shard {s}"
            );
            for local in set.iter() {
                out.insert(self.to_global[s][local] as usize);
            }
        }
        out
    }

    /// Zone-map shard pruning: `false` guarantees the condition's columnar
    /// kernel on shard `s` would produce an empty
    /// [`TriSet`](crate::predicate::TriSet) — no TRUE and no UNKNOWN rows —
    /// so scanning that shard can be skipped without changing any result.
    /// `true` is always safe and carries no promise.
    ///
    /// The guarantee only covers conditions the typed compiler can express
    /// (see [`Condition::vectorizable`]); callers on the scalar fallback
    /// path must not consult this.
    pub fn condition_may_match(&self, s: usize, cond: &Condition) -> bool {
        let shard = &self.shards[s];
        if shard.num_rows() == 0 {
            // Every kernel over an empty universe yields empty bitmaps.
            return false;
        }
        let Ok(idx) = shard.schema().resolve(cond.column()) else {
            return true;
        };
        let dtype = shard.schema().field_at(idx).expect("resolved").dtype;
        let zone = &self.zones[s][idx];
        if zone.has_null {
            // NULL rows evaluate to UNKNOWN under every kernel on this
            // column, so the TriSet can never be empty.
            return true;
        }
        match cond {
            Condition::Equals { value, .. } => match literal_key(dtype, value) {
                Some(key) => self.key_may_match(s, idx, zone, &key),
                None => true,
            },
            Condition::NotEquals { value, .. } => {
                // Prunable only when every row of the shard equals the
                // literal exactly (identical bits under the total order).
                let Some(Key::Num(v)) = literal_key(dtype, value) else {
                    return true;
                };
                match zone.range {
                    Some((lo, hi)) => lo.to_bits() != v.to_bits() || hi.to_bits() != v.to_bits(),
                    None => true,
                }
            }
            Condition::Range { low, low_inclusive, high, high_inclusive, .. } => {
                if !dtype.is_numeric() {
                    return true;
                }
                let Some((lo, hi)) = zone.range else {
                    return true;
                };
                // Interval overlap under total_cmp, honouring inclusivity:
                // the shard survives unless it lies entirely below the low
                // bound or entirely above the high bound.
                let below = low.is_some_and(|b| match hi.total_cmp(&b) {
                    Ordering::Less => true,
                    Ordering::Equal => !low_inclusive,
                    Ordering::Greater => false,
                });
                let above = high.is_some_and(|b| match lo.total_cmp(&b) {
                    Ordering::Greater => true,
                    Ordering::Equal => !high_inclusive,
                    Ordering::Less => false,
                });
                !(below || above)
            }
            Condition::InSet { values, .. } => {
                if values.iter().any(Value::is_null) {
                    // The kernel turns every non-matching row UNKNOWN.
                    return true;
                }
                if dtype == DataType::Null {
                    return true;
                }
                if dtype == DataType::Str {
                    // Mirrors compilation: only string members are kept.
                    values
                        .iter()
                        .filter_map(|v| match v {
                            Value::Str(m) => Some(Key::Str(m)),
                            _ => None,
                        })
                        .any(|key| self.key_may_match(s, idx, zone, &key))
                } else {
                    // Mirrors compilation: members coerce through f64.
                    values
                        .iter()
                        .filter_map(Value::as_f64)
                        .any(|m| self.key_may_match(s, idx, zone, &Key::Num(m)))
                }
            }
            Condition::Contains { .. } => true,
        }
    }

    /// Can an equality against `key` match any row of shard `s` in column
    /// `idx`? Combines the zone interval with shard pinning on the shard
    /// column (a key can only live in the shard its value partitions to).
    fn key_may_match(&self, s: usize, idx: usize, zone: &ColumnZone, key: &Key<'_>) -> bool {
        match key {
            Key::Num(v) => {
                match zone.range {
                    Some((lo, hi)) => {
                        if v.total_cmp(&lo) == Ordering::Less
                            || v.total_cmp(&hi) == Ordering::Greater
                        {
                            return false;
                        }
                    }
                    // Non-empty shard, no NULLs, no numeric values: the
                    // numeric kernel cannot produce TRUE or UNKNOWN rows.
                    None => return false,
                }
                idx != self.shard_column
                    || shard_of_key(&self.strategy, self.num_shards(), key) == s
            }
            Key::Str(_) => {
                idx != self.shard_column
                    || shard_of_key(&self.strategy, self.num_shards(), key) == s
            }
        }
    }
}

/// The shard a key partitions to. Hashing covers both key classes; range
/// boundaries are numeric-only (the constructor rejects string range
/// sharding), where a string key conservatively lands in shard 0.
fn shard_of_key(strategy: &Strategy, num_shards: usize, key: &Key<'_>) -> usize {
    match strategy {
        Strategy::Hash => {
            let h = match key {
                // Hash the bit pattern: total_cmp-equal values have
                // identical bits (including -0.0 vs +0.0 and NaN
                // payloads), so hashing is exactly consistent with the
                // kernels' equality.
                Key::Num(v) => fnv1a(&v.to_bits().to_le_bytes()),
                Key::Str(s) => fnv1a(s.as_bytes()),
            };
            (h % num_shards as u64) as usize
        }
        Strategy::Range { boundaries } => match key {
            Key::Num(v) => boundaries
                .iter()
                .take_while(|b| v.total_cmp(b) == Ordering::Greater)
                .count()
                .min(num_shards - 1),
            Key::Str(_) => 0,
        },
    }
}

/// The key class of an equality literal against a column of type `dtype`,
/// mirroring `CompiledCondition::compile`: class mismatches (which fail
/// compilation) and NULL literals (which compile to all-UNKNOWN) yield
/// `None`, meaning "never prune".
fn literal_key<'a>(dtype: DataType, value: &'a Value) -> Option<Key<'a>> {
    match (dtype, value) {
        (_, Value::Null) => None,
        (DataType::Str, Value::Str(s)) => Some(Key::Str(s)),
        (DataType::Bool, Value::Bool(b)) => Some(Key::Num(if *b { 1.0 } else { 0.0 })),
        (DataType::Int | DataType::Float | DataType::Timestamp, v) => match v {
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => {
                Some(Key::Num(v.as_f64().expect("numeric literal")))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Folds shard row `local` into every column's zone — the incremental
/// counterpart of [`column_zones`], applied per absorbed append row.
fn extend_zones(zones: &mut [ColumnZone], shard: &Table, local: usize) {
    for (c, zone) in zones.iter_mut().enumerate() {
        let col = shard.column(c).expect("in schema");
        if col.is_null(local) {
            zone.has_null = true;
            continue;
        }
        let Some(v) = col.get_f64(local) else { continue };
        zone.range = Some(match zone.range {
            None => (v, v),
            Some((lo, hi)) => (
                if v.total_cmp(&lo) == Ordering::Less { v } else { lo },
                if v.total_cmp(&hi) == Ordering::Greater { v } else { hi },
            ),
        });
    }
}

/// Builds the zone map of every column of one shard, scanning all physical
/// rows (soft-deleted included — kernels scan them too).
fn column_zones(shard: &Table) -> Vec<ColumnZone> {
    (0..shard.schema().len())
        .map(|c| {
            let col = shard.column(c).expect("in schema");
            let mut zone = ColumnZone { range: None, has_null: false };
            for row in 0..shard.num_rows() {
                if col.is_null(row) {
                    zone.has_null = true;
                    continue;
                }
                let Some(v) = col.get_f64(row) else { continue };
                zone.range = Some(match zone.range {
                    None => (v, v),
                    Some((lo, hi)) => (
                        if v.total_cmp(&lo) == Ordering::Less { v } else { lo },
                        if v.total_cmp(&hi) == Ordering::Greater { v } else { hi },
                    ),
                });
            }
            zone
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::ConditionBitmapCache;
    use crate::schema::Schema;

    fn sensor_table() -> Table {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("room", DataType::Str),
            ("ok", DataType::Bool),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        for i in 0..60i64 {
            let temp = if i == 7 { -0.0 } else { 15.0 + (i % 9) as f64 };
            let room = if i % 13 == 0 { Value::Null } else { Value::str(format!("room{}", i % 4)) };
            t.push_row(vec![Value::Int(i % 10), Value::Float(temp), room, Value::Bool(i % 3 == 0)])
                .unwrap();
        }
        t.delete_row(RowId(5)).unwrap();
        t.delete_row(RowId(41)).unwrap();
        t
    }

    fn check_partition(t: &Table, st: &ShardedTable, shards: usize) {
        assert_eq!(st.num_shards(), shards);
        assert_eq!(st.base_rows(), t.num_rows());
        assert!(st.covers(t));
        let total: usize = st.shards().iter().map(|s| s.num_rows()).sum();
        assert_eq!(total, t.num_rows());
        // Round-trip every global row and verify values + delete flags.
        for row in t.all_row_ids() {
            let (s, local) = st.locate(row).unwrap();
            assert_eq!(st.global_of(s, local), row);
            assert_eq!(st.shard(s).row(local).unwrap(), t.row(row).unwrap());
            assert_eq!(st.shard(s).is_deleted(local), t.is_deleted(row));
        }
        assert!(st.locate(RowId(t.num_rows())).is_none());
        // Locals ascend with globals within each shard.
        for s in 0..st.num_shards() {
            let globals: Vec<usize> =
                (0..st.shard(s).num_rows()).map(|l| st.global_of(s, RowId(l)).index()).collect();
            assert!(globals.windows(2).all(|w| w[0] < w[1]), "shard {s} locals out of order");
            assert_eq!(st.shard(s).name(), t.name());
        }
    }

    #[test]
    fn hash_partition_round_trips() {
        let t = sensor_table();
        for shards in [1, 2, 4, 7, 100] {
            let st = ShardedTable::hash(&t, "sensorid", shards).unwrap();
            check_partition(&t, &st, shards);
        }
        // Shard count 0 clamps to 1.
        let st = ShardedTable::hash(&t, "sensorid", 0).unwrap();
        check_partition(&t, &st, 1);
        // Case-insensitive column resolution, unknown column errors.
        assert!(ShardedTable::hash(&t, "SensorID", 2).is_ok());
        assert!(ShardedTable::hash(&t, "nope", 2).is_err());
    }

    #[test]
    fn range_partition_round_trips_and_balances() {
        let t = sensor_table();
        for shards in [1, 3, 4] {
            let st = ShardedTable::range(&t, "temp", shards).unwrap();
            check_partition(&t, &st, shards);
        }
        // Range sharding balances a uniform key within a factor of the
        // quantile grid.
        let st = ShardedTable::range(&t, "sensorid", 4).unwrap();
        for s in 0..4 {
            assert!(st.shard(s).num_rows() >= 6, "shard {s} unexpectedly small");
        }
        // Strings cannot be range-partitioned.
        assert!(matches!(
            ShardedTable::range(&t, "room", 2),
            Err(StorageError::TypeMismatch { .. })
        ));
        assert!(matches!(ShardedTable::range(&t, "ok", 2), Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn split_and_merge_sets_round_trip() {
        let t = sensor_table();
        let st = ShardedTable::hash(&t, "sensorid", 4).unwrap();
        let set = RowSet::from_indices(t.num_rows(), (0..t.num_rows()).filter(|i| i % 3 != 1));
        let locals = st.split_set(&set);
        assert_eq!(locals.len(), 4);
        assert_eq!(locals.iter().map(RowSet::count_ones).sum::<usize>(), set.count_ones());
        assert_eq!(st.merge_sets(&locals), set);
        // split_rows mirrors split_set and drops out-of-range rows.
        let rows = set.to_row_ids();
        let mut with_junk = rows.clone();
        with_junk.push(RowId(10_000));
        let split = st.split_rows(&with_junk);
        for (s, local_rows) in split.iter().enumerate() {
            assert_eq!(
                RowSet::from_rows(st.shard(s).num_rows(), local_rows.iter()),
                locals[s],
                "shard {s}"
            );
        }
    }

    /// The soundness contract: whenever `condition_may_match` says `false`,
    /// the real kernel on that shard must produce an empty TriSet.
    fn assert_prune_sound(st: &ShardedTable, conds: &[Condition]) {
        for (s, shard) in st.shards().iter().enumerate() {
            let cache = ConditionBitmapCache::new(shard);
            for cond in conds {
                if st.condition_may_match(s, cond) {
                    continue;
                }
                if let Some(tri) = cache.condition(shard, cond) {
                    assert!(
                        tri.trues.is_empty() && tri.unknowns.is_empty(),
                        "unsound prune of {cond:?} on shard {s}: {tri:?}"
                    );
                }
            }
        }
    }

    fn probe_conditions() -> Vec<Condition> {
        vec![
            Condition::equals("sensorid", 3),
            Condition::equals("sensorid", 777),
            Condition::equals("temp", 15.0),
            Condition::equals("temp", -0.0),
            Condition::equals("room", Value::str("room2")),
            Condition::equals("room", Value::str("missing")),
            Condition::equals("ok", true),
            Condition::equals("sensorid", Value::Null),
            // Class mismatches (inexpressible → compile errors → None).
            Condition::equals("sensorid", Value::str("3")),
            Condition::equals("room", 3),
            Condition::equals("ok", 1),
            Condition::not_equals("sensorid", 3),
            Condition::not_equals("room", Value::str("room2")),
            Condition::above("temp", 20.0),
            Condition::at_most("temp", 0.0),
            Condition::between("sensorid", 2.0, 4.0),
            Condition::between("temp", 100.0, 200.0),
            Condition::Range {
                column: "temp".into(),
                low: None,
                low_inclusive: false,
                high: Some(0.0),
                high_inclusive: false,
            },
            Condition::Range {
                column: "temp".into(),
                low: None,
                low_inclusive: false,
                high: None,
                high_inclusive: false,
            },
            Condition::in_set("sensorid", vec![Value::Int(1), Value::Int(999)]),
            Condition::in_set("sensorid", vec![Value::Int(1), Value::Null]),
            Condition::in_set("sensorid", vec![]),
            Condition::in_set("room", vec![Value::str("room1"), Value::Int(7)]),
            Condition::contains("room", "room"),
        ]
    }

    #[test]
    fn pruning_is_sound_on_hash_and_range_shards() {
        let t = sensor_table();
        for shards in [1, 2, 4, 9, 100] {
            assert_prune_sound(
                &ShardedTable::hash(&t, "sensorid", shards).unwrap(),
                &probe_conditions(),
            );
            assert_prune_sound(
                &ShardedTable::hash(&t, "room", shards).unwrap(),
                &probe_conditions(),
            );
            assert_prune_sound(
                &ShardedTable::range(&t, "temp", shards).unwrap(),
                &probe_conditions(),
            );
            assert_prune_sound(
                &ShardedTable::range(&t, "sensorid", shards).unwrap(),
                &probe_conditions(),
            );
        }
    }

    #[test]
    fn equality_on_hash_shard_column_pins_to_one_shard() {
        let t = sensor_table();
        let st = ShardedTable::hash(&t, "sensorid", 4).unwrap();
        for k in 0..10i64 {
            let cond = Condition::equals("sensorid", k);
            let live: Vec<usize> = (0..4).filter(|&s| st.condition_may_match(s, &cond)).collect();
            assert_eq!(live.len(), 1, "sensorid = {k} should pin to one shard, got {live:?}");
            // ...and the pinned shard really holds every match.
            let shard = st.shard(live[0]);
            let cache = ConditionBitmapCache::new(shard);
            let tri = cache.condition(shard, &cond).unwrap();
            let expected =
                (0..t.num_rows()).filter(|&r| t.row(RowId(r)).unwrap()[0] == Value::Int(k)).count();
            assert_eq!(tri.trues.count_ones(), expected, "sensorid = {k}");
        }
    }

    #[test]
    fn range_zones_prune_non_overlapping_shards() {
        let t = sensor_table();
        let st = ShardedTable::range(&t, "temp", 4).unwrap();
        // temp spans [-0.0, 23.0]; a far-away range prunes every shard.
        let cond = Condition::between("temp", 100.0, 200.0);
        assert!((0..4).all(|s| !st.condition_may_match(s, &cond)));
        // A tight range keeps only the shards whose zone overlaps.
        let cond = Condition::at_most("temp", 16.0);
        let live = (0..4).filter(|&s| st.condition_may_match(s, &cond)).count();
        assert!(live < 4, "zone pruning should drop at least one shard");
    }

    /// The −0.0 regression the total-order zone maps exist for: a shard
    /// whose only non-positive temp is −0.0 must NOT be pruned for
    /// `temp < 0.0` exclusive, because under total_cmp −0.0 < +0.0 and the
    /// kernel would match that row.
    #[test]
    fn negative_zero_is_not_pruned_away() {
        let mut t =
            Table::new("z", Schema::of(&[("id", DataType::Int), ("x", DataType::Float)])).unwrap();
        t.push_row(vec![Value::Int(0), Value::Float(-0.0)]).unwrap();
        t.push_row(vec![Value::Int(1), Value::Float(1.0)]).unwrap();
        t.push_row(vec![Value::Int(2), Value::Float(2.0)]).unwrap();
        let st = ShardedTable::hash(&t, "id", 2).unwrap();
        let below_zero = Condition::Range {
            column: "x".into(),
            low: None,
            low_inclusive: false,
            high: Some(0.0),
            high_inclusive: false,
        };
        let (s, _) = st.locate(RowId(0)).unwrap();
        assert!(
            st.condition_may_match(s, &below_zero),
            "the shard holding -0.0 must survive `x < 0.0`"
        );
        assert_prune_sound(&st, &[below_zero, Condition::equals("x", -0.0)]);
    }

    /// NaN values participate in the bit-pattern hash and the total-order
    /// zones consistently with the kernels' total_cmp equality.
    #[test]
    fn nan_rows_stay_consistent_with_kernels() {
        let mut t = Table::new("n", Schema::of(&[("x", DataType::Float)])).unwrap();
        for v in [1.0, f64::NAN, 3.0, f64::NAN, 8.0] {
            t.push_row(vec![Value::Float(v)]).unwrap();
        }
        let st = ShardedTable::hash(&t, "x", 3).unwrap();
        let conds = vec![
            Condition::equals("x", f64::NAN),
            Condition::equals("x", 3.0),
            Condition::above("x", 5.0),
            Condition::between("x", 0.0, 4.0),
        ];
        assert_prune_sound(&st, &conds);
        // NaN sorts above +inf under total_cmp, so `x > 5` keeps the
        // NaN-holding shard(s) alive — and the kernel indeed matches NaN.
        let eq_nan = Condition::equals("x", f64::NAN);
        let live: Vec<usize> = (0..3).filter(|&s| st.condition_may_match(s, &eq_nan)).collect();
        assert_eq!(live.len(), 1, "NaN equality pins via bit hashing");
    }

    #[test]
    fn absorb_append_matches_a_fresh_hash_partition() {
        let mut t = sensor_table();
        let st0 = ShardedTable::hash(&t, "sensorid", 4).unwrap();
        let mut grown = st0.clone();
        t.push_rows(vec![
            vec![Value::Int(3), Value::Float(99.0), Value::str("room1"), Value::Bool(true)],
            vec![Value::Int(11), Value::Float(-0.0), Value::Null, Value::Bool(false)],
            vec![Value::Null, Value::Float(f64::NAN), Value::str("room9"), Value::Bool(true)],
        ])
        .unwrap();
        assert!(!st0.covers(&t));
        assert!(st0.covers_with(&t, EpochTolerance::TolerateAppends));
        assert_eq!(grown.absorb_append(&t).unwrap(), 3);
        assert!(grown.covers(&t));
        check_partition(&t, &grown, 4);
        // Hash placement is a pure function of the key, so the grown
        // partition places every row exactly where a fresh build would.
        let fresh = ShardedTable::hash(&t, "sensorid", 4).unwrap();
        for row in t.all_row_ids() {
            assert_eq!(grown.locate(row), fresh.locate(row), "row {row}");
        }
        assert_prune_sound(&grown, &probe_conditions());
        // The original partition is untouched (shards are copy-on-write).
        assert_eq!(st0.base_rows(), 60);
        assert_eq!(st0.shards().iter().map(|s| s.num_rows()).sum::<usize>(), 60);
        // Absorbing again is a no-op.
        assert_eq!(grown.absorb_append(&t).unwrap(), 0);
    }

    #[test]
    fn absorb_append_routes_range_rows_by_existing_boundaries() {
        let mut t = sensor_table();
        let mut st = ShardedTable::range(&t, "temp", 3).unwrap();
        t.push_rows(vec![
            vec![Value::Int(1), Value::Float(-50.0), Value::str("cold"), Value::Bool(true)],
            vec![Value::Int(2), Value::Float(500.0), Value::str("hot"), Value::Bool(false)],
            vec![Value::Int(3), Value::Null, Value::str("null-key"), Value::Bool(true)],
        ])
        .unwrap();
        assert_eq!(st.absorb_append(&t).unwrap(), 3);
        check_partition(&t, &st, 3);
        // Extremes route to the boundary shards, NULL keys to shard 0.
        let (cold_shard, _) = st.locate(RowId(60)).unwrap();
        let (hot_shard, _) = st.locate(RowId(61)).unwrap();
        let (null_shard, _) = st.locate(RowId(62)).unwrap();
        assert_eq!(cold_shard, 0);
        assert_eq!(hot_shard, 2);
        assert_eq!(null_shard, 0);
        // Zone maps grew to keep pruning sound over the new extremes.
        assert!(st.condition_may_match(0, &Condition::at_most("temp", -40.0)));
        assert!(st.condition_may_match(2, &Condition::above("temp", 400.0)));
        assert_prune_sound(&st, &probe_conditions());
    }

    #[test]
    fn absorb_append_rejects_non_append_descendants() {
        let t = sensor_table();
        let mut st = ShardedTable::hash(&t, "sensorid", 2).unwrap();
        // A different table entirely.
        let other = sensor_table();
        assert!(st.absorb_append(&other).is_err());
        // A structural mutation breaks append lineage.
        let mut deleted = t.clone();
        deleted.delete_row(RowId(3)).unwrap();
        assert!(st.absorb_append(&deleted).is_err());
        assert!(!st.covers_with(&deleted, EpochTolerance::TolerateAppends));
        // The partition itself is untouched by the failed absorbs.
        assert!(st.covers(&t));
    }

    #[test]
    fn empty_and_all_null_tables_shard_cleanly() {
        let t = Table::new("e", Schema::of(&[("x", DataType::Int)])).unwrap();
        let st = ShardedTable::hash(&t, "x", 3).unwrap();
        assert_eq!(st.base_rows(), 0);
        assert!((0..3).all(|s| !st.condition_may_match(s, &Condition::equals("x", 1))));
        assert_eq!(st.merge_sets(&st.split_set(&RowSet::empty(0))), RowSet::empty(0));

        let mut t = Table::new("nulls", Schema::of(&[("x", DataType::Int)])).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        let st = ShardedTable::hash(&t, "x", 2).unwrap();
        // NULL keys collect in shard 0.
        assert_eq!(st.shard(0).num_rows(), 2);
        assert_eq!(st.shard(1).num_rows(), 0);
        // A NULL-holding shard is never pruned (UNKNOWN rows).
        assert!(st.condition_may_match(0, &Condition::equals("x", 5)));
        assert_prune_sound(&st, &probe_conditions());
    }
}

//! Durable columnar snapshots: the on-disk segment format, the versioned
//! [`Manifest`], and the [`StorageBackend`] trait with its filesystem
//! implementation.
//!
//! Everything in memory is columnar, so the snapshot format is too: a
//! table file holds one *segment* per column (typed values plus the
//! validity vector, serialized exactly as laid out in memory; string
//! columns are dictionary-encoded) plus one segment for the soft-deletion
//! mask. Every segment carries an FNV-1a 64 checksum, and the whole
//! catalog is described by a versioned manifest keyed by stable
//! [`Table::id`]s and the mutation-stamped [`Table::version`]. All files
//! are written via temp-file + atomic rename, so a crash mid-write leaves
//! the previous durable snapshot intact — recovery always sees either the
//! old file or the new one, never a torn mix.
//!
//! The [`ByteWriter`] / [`ByteReader`] pair is the shared wire codec:
//! little-endian fixed-width integers, IEEE-754 bit patterns for floats,
//! length-prefixed UTF-8 strings and bit-packed boolean vectors. Readers
//! never panic on malformed input — truncation, bad magic bytes, an
//! unsupported format version or a checksum mismatch all surface as
//! [`StorageError::Corrupt`] (I/O failures as [`StorageError::Io`]).
//!
//! ```
//! use dbwipes_storage::{DataType, FsBackend, Schema, StorageBackend, Table, Value};
//!
//! let dir = std::env::temp_dir().join(format!("dbwipes-doc-{}", std::process::id()));
//! let backend = FsBackend::open(&dir).unwrap();
//!
//! let mut t = Table::new("readings", Schema::of(&[("temp", DataType::Float)])).unwrap();
//! t.push_row(vec![Value::Float(21.5)]).unwrap();
//! backend.save_table(&t).unwrap();
//!
//! let restored = backend.load_table(t.id()).unwrap();
//! assert_eq!(restored.id(), t.id());
//! assert_eq!(restored.version(), t.version());
//! assert_eq!(restored.row(0.into()).unwrap(), t.row(0.into()).unwrap());
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::column::{Column, ColumnData};
use crate::error::StorageError;
use crate::predicate::TriSet;
use crate::rowset::RowSet;
use crate::schema::{Field, Schema};
use crate::table::{Table, TableEpoch};
use crate::value::{DataType, Value};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version stamp written into every snapshot file; readers reject any
/// other value rather than guessing at layout changes. Version 2 replaced
/// the single table version stamp with the two-part epoch (structural +
/// appended stamps) in table snapshots and manifest entries.
pub const FORMAT_VERSION: u32 = 2;

/// Magic bytes of a table segment file.
const TABLE_MAGIC: &[u8; 4] = b"DBWT";
/// Magic bytes of the manifest file.
const MANIFEST_MAGIC: &[u8; 4] = b"DBWM";
/// Magic bytes of a warm-state sidecar file.
const SIDECAR_MAGIC: &[u8; 4] = b"DBWX";
/// Magic bytes of a serialized warm-bitmap set.
const BITMAP_MAGIC: &[u8; 4] = b"DBWB";

/// FNV-1a 64 over a byte slice — the snapshot format's per-segment
/// checksum. Small, stable, dependency-free; the same function the shard
/// layer uses for hash partitioning.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian byte-stream writer: the encoding half of the snapshot
/// wire codec, also used by the engine's cache serializer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The bytes written so far (for trailing checksums).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-for-bit, NaN
    /// payloads and signed zeros included).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed, bit-packed boolean vector.
    pub fn put_bool_vec(&mut self, bits: &[bool]) {
        self.put_u64(bits.len() as u64);
        let mut packed = vec![0u8; bits.len().div_ceil(8)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                packed[i / 8] |= 1 << (i % 8);
            }
        }
        self.buf.extend_from_slice(&packed);
    }
}

/// Checked little-endian byte-stream reader: the decoding half of the
/// snapshot wire codec. Every accessor validates bounds and returns
/// [`StorageError::Corrupt`] on truncated input instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, starting at offset zero.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes, or a corruption error when fewer remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        if n > self.remaining() {
            return Err(StorageError::Corrupt(format!(
                "truncated snapshot: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, StorageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, StorageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, StorageError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads one byte as a boolean (any non-zero value is true).
    pub fn get_bool(&mut self) -> Result<bool, StorageError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a `u64` length prefix and validates it against the bytes that
    /// actually remain (at `per_item` bytes each), so a corrupted length
    /// can never trigger a huge allocation.
    pub fn get_len(&mut self, per_item: usize) -> Result<usize, StorageError> {
        let raw = self.get_u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| StorageError::Corrupt(format!("length {raw} overflows this platform")))?;
        let need = len.checked_mul(per_item).ok_or_else(|| {
            StorageError::Corrupt(format!("length {len} x {per_item} bytes overflows"))
        })?;
        if need > self.remaining() {
            return Err(StorageError::Corrupt(format!(
                "truncated snapshot: length {len} needs {need} bytes, {} remain",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StorageError> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Corrupt("string segment is not valid UTF-8".into()))
    }

    /// Reads a length-prefixed, bit-packed boolean vector.
    pub fn get_bool_vec(&mut self) -> Result<Vec<bool>, StorageError> {
        let raw = self.get_u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| StorageError::Corrupt(format!("length {raw} overflows this platform")))?;
        let packed_len = len.div_ceil(8);
        if packed_len > self.remaining() {
            return Err(StorageError::Corrupt(format!(
                "truncated snapshot: {len} packed bits need {packed_len} bytes, {} remain",
                self.remaining()
            )));
        }
        let packed = self.take(packed_len)?;
        Ok((0..len).map(|i| packed[i / 8] & (1 << (i % 8)) != 0).collect())
    }
}

/// The wire tag of a [`DataType`] (0 is reserved so a zeroed byte never
/// decodes as a valid type).
fn dtype_code(dtype: DataType) -> u8 {
    match dtype {
        DataType::Null => 0,
        DataType::Bool => 1,
        DataType::Int => 2,
        DataType::Float => 3,
        DataType::Str => 4,
        DataType::Timestamp => 5,
    }
}

fn dtype_from_code(code: u8) -> Result<DataType, StorageError> {
    Ok(match code {
        1 => DataType::Bool,
        2 => DataType::Int,
        3 => DataType::Float,
        4 => DataType::Str,
        5 => DataType::Timestamp,
        other => {
            return Err(StorageError::Corrupt(format!("unknown data type code {other}")));
        }
    })
}

/// Appends a [`Value`] (tag byte + payload) — the shared scalar codec the
/// engine's cache serializer uses for group keys and output templates.
pub fn put_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Bool(b) => {
            w.put_u8(1);
            w.put_bool(*b);
        }
        Value::Int(i) => {
            w.put_u8(2);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(3);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(4);
            w.put_str(s);
        }
        Value::Timestamp(t) => {
            w.put_u8(5);
            w.put_i64(*t);
        }
    }
}

/// Reads a [`Value`] written by [`put_value`].
pub fn get_value(r: &mut ByteReader<'_>) -> Result<Value, StorageError> {
    Ok(match r.get_u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.get_bool()?),
        2 => Value::Int(r.get_i64()?),
        3 => Value::Float(r.get_f64()?),
        4 => Value::Str(r.get_str()?),
        5 => Value::Timestamp(r.get_i64()?),
        other => {
            return Err(StorageError::Corrupt(format!("unknown value tag {other}")));
        }
    })
}

/// Encodes one column as a segment body: dtype tag, row count, validity
/// vector, then the typed values (strings dictionary-encoded).
fn encode_column(col: &Column) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(dtype_code(col.dtype()));
    w.put_u64(col.len() as u64);
    w.put_bool_vec(col.validity());
    match col.data() {
        ColumnData::Bool(v) => w.put_bool_vec(v),
        ColumnData::Int(v) | ColumnData::Timestamp(v) => {
            w.put_u64(v.len() as u64);
            for &x in v {
                w.put_i64(x);
            }
        }
        ColumnData::Float(v) => {
            w.put_u64(v.len() as u64);
            for &x in v {
                w.put_f64(x);
            }
        }
        ColumnData::Str(v) => {
            // Dictionary encoding: unique strings in first-appearance
            // order, then one u32 code per row.
            let mut index: HashMap<&str, u32> = HashMap::new();
            let mut dict: Vec<&str> = Vec::new();
            let mut codes: Vec<u32> = Vec::with_capacity(v.len());
            for s in v {
                let code = *index.entry(s.as_str()).or_insert_with(|| {
                    dict.push(s.as_str());
                    (dict.len() - 1) as u32
                });
                codes.push(code);
            }
            w.put_u64(dict.len() as u64);
            for s in &dict {
                w.put_str(s);
            }
            w.put_u64(codes.len() as u64);
            for &c in &codes {
                w.put_u32(c);
            }
        }
    }
    w.into_bytes()
}

/// Decodes a segment body written by [`encode_column`].
fn decode_column(body: &[u8]) -> Result<Column, StorageError> {
    let mut r = ByteReader::new(body);
    let dtype = dtype_from_code(r.get_u8()?)?;
    let declared = r.get_u64()? as usize;
    let validity = r.get_bool_vec()?;
    if validity.len() != declared {
        return Err(StorageError::Corrupt(format!(
            "segment declares {declared} rows but has {} validity bits",
            validity.len()
        )));
    }
    let data = match dtype {
        DataType::Bool => ColumnData::Bool(r.get_bool_vec()?),
        DataType::Int | DataType::Timestamp => {
            let len = r.get_len(8)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.get_i64()?);
            }
            if dtype == DataType::Int {
                ColumnData::Int(v)
            } else {
                ColumnData::Timestamp(v)
            }
        }
        DataType::Float => {
            let len = r.get_len(8)?;
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(r.get_f64()?);
            }
            ColumnData::Float(v)
        }
        DataType::Str => {
            let dict_len = r.get_len(8)?;
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(r.get_str()?);
            }
            let code_count = r.get_len(4)?;
            let mut v = Vec::with_capacity(code_count);
            for _ in 0..code_count {
                let code = r.get_u32()? as usize;
                let s = dict.get(code).ok_or_else(|| {
                    StorageError::Corrupt(format!(
                        "dictionary code {code} out of range (dictionary has {dict_len} entries)"
                    ))
                })?;
                v.push(s.clone());
            }
            ColumnData::Str(v)
        }
        DataType::Null => unreachable!("dtype_from_code rejects the null code"),
    };
    Column::from_parts(dtype, data, validity)
}

/// Appends a segment with the standard framing: body length, body bytes,
/// FNV-1a checksum of the body.
fn put_segment(w: &mut ByteWriter, body: &[u8]) {
    w.put_u64(body.len() as u64);
    w.put_bytes(body);
    w.put_u64(fnv1a64(body));
}

/// Reads one framed segment, verifying its checksum.
fn get_segment<'a>(r: &mut ByteReader<'a>, what: &str) -> Result<&'a [u8], StorageError> {
    let len = r.get_len(1)?;
    let body = r.take(len)?;
    let stored = r.get_u64()?;
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(StorageError::Corrupt(format!(
            "{what} checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    Ok(body)
}

/// Serializes a whole table (identity stamps, schema, one segment per
/// column plus the soft-deletion mask) into a snapshot file image.
pub fn encode_table(table: &Table) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(TABLE_MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_str(table.name());
    w.put_u64(table.id());
    w.put_u64(table.epoch().structural);
    w.put_u64(table.epoch().appended);
    let schema = table.schema();
    w.put_u64(schema.len() as u64);
    for field in schema.fields() {
        w.put_str(&field.name);
        w.put_u8(dtype_code(field.dtype));
        w.put_bool(field.nullable);
    }
    w.put_u64(table.num_rows() as u64);
    for idx in 0..schema.len() {
        let col = table.column(idx).expect("schema-aligned column");
        put_segment(&mut w, &encode_column(col));
    }
    let mut deleted = ByteWriter::new();
    deleted.put_bool_vec(table.deleted_slice());
    put_segment(&mut w, deleted.bytes());
    w.into_bytes()
}

/// Decodes a snapshot file image written by [`encode_table`], restoring
/// the persisted identity and version stamps. All segment checksums are
/// verified; any structural problem yields [`StorageError::Corrupt`].
pub fn decode_table(bytes: &[u8]) -> Result<Table, StorageError> {
    let mut r = ByteReader::new(bytes);
    if r.take(4)? != TABLE_MAGIC {
        return Err(StorageError::Corrupt("not a dbwipes table snapshot (bad magic)".into()));
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported table snapshot format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let name = r.get_str()?;
    let table_id = r.get_u64()?;
    let epoch = TableEpoch { structural: r.get_u64()?, appended: r.get_u64()? };
    let field_count = r.get_len(10)?;
    let mut fields = Vec::with_capacity(field_count);
    for _ in 0..field_count {
        let fname = r.get_str()?;
        let dtype = dtype_from_code(r.get_u8()?)?;
        let nullable = r.get_bool()?;
        fields.push(Field { name: fname, dtype, nullable });
    }
    let schema = Schema::new(fields)?;
    let num_rows = r.get_u64()? as usize;
    let mut columns = Vec::with_capacity(schema.len());
    for idx in 0..schema.len() {
        let body = get_segment(&mut r, &format!("column segment {idx}"))?;
        columns.push(decode_column(body)?);
    }
    let deleted_body = get_segment(&mut r, "deletion-mask segment")?;
    let deleted = ByteReader::new(deleted_body).get_bool_vec()?;
    if deleted.len() != num_rows {
        return Err(StorageError::Corrupt(format!(
            "deletion mask has {} rows but the table declares {num_rows}",
            deleted.len()
        )));
    }
    Table::restore(name, schema, columns, deleted, table_id, epoch)
}

/// Serializes a set of named condition bitmaps (a table's warm
/// [`TriSet`]s, keyed by condition cache key) for sidecar persistence.
pub fn encode_warm_bitmaps(entries: &[(String, TriSet)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(BITMAP_MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(entries.len() as u64);
    for (key, tri) in entries {
        w.put_str(key);
        put_rowset(&mut w, &tri.trues);
        put_rowset(&mut w, &tri.unknowns);
    }
    let checksum = fnv1a64(w.bytes());
    w.put_u64(checksum);
    w.into_bytes()
}

/// Decodes a warm-bitmap set written by [`encode_warm_bitmaps`].
pub fn decode_warm_bitmaps(bytes: &[u8]) -> Result<Vec<(String, TriSet)>, StorageError> {
    if bytes.len() < 8 {
        return Err(StorageError::Corrupt("warm-bitmap sidecar too short".into()));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(StorageError::Corrupt(format!(
            "warm-bitmap checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    let mut r = ByteReader::new(body);
    if r.take(4)? != BITMAP_MAGIC {
        return Err(StorageError::Corrupt("not a warm-bitmap sidecar (bad magic)".into()));
    }
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(StorageError::Corrupt(format!(
            "unsupported warm-bitmap format version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    let count = r.get_len(1)?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let key = r.get_str()?;
        let trues = get_rowset(&mut r)?;
        let unknowns = get_rowset(&mut r)?;
        if trues.universe() != unknowns.universe() {
            return Err(StorageError::Corrupt(
                "warm bitmap halves disagree on their universe".into(),
            ));
        }
        entries.push((key, TriSet { trues, unknowns }));
    }
    Ok(entries)
}

fn put_rowset(w: &mut ByteWriter, set: &RowSet) {
    w.put_u64(set.universe() as u64);
    let words = set.word_slice();
    w.put_u64(words.len() as u64);
    for &word in words {
        w.put_u64(word);
    }
}

fn get_rowset(r: &mut ByteReader<'_>) -> Result<RowSet, StorageError> {
    let universe = r.get_u64()? as usize;
    let word_count = r.get_len(8)?;
    if word_count != universe.div_ceil(64) {
        return Err(StorageError::Corrupt(format!(
            "rowset over universe {universe} has {word_count} words, expected {}",
            universe.div_ceil(64)
        )));
    }
    let mut words = Vec::with_capacity(word_count);
    for _ in 0..word_count {
        words.push(r.get_u64()?);
    }
    Ok(RowSet::from_words(words, universe))
}

/// One table's entry in the [`Manifest`]: the durable identity the
/// recovery path keys on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The table name (as registered).
    pub name: String,
    /// The persisted [`Table::id`] stamp.
    pub table_id: u64,
    /// The persisted [`Table::epoch`] of the snapshot on disk. Recovery
    /// compares the full epoch, so a manifest written before an append can
    /// never masquerade as covering the appended rows.
    pub epoch: TableEpoch,
    /// Physical row count of the snapshot (soft-deleted rows included).
    pub num_rows: u64,
    /// Snapshot file name, relative to the backend's data directory.
    pub file: String,
    /// Size of the snapshot file in bytes.
    pub bytes: u64,
}

impl ManifestEntry {
    /// The scalar [`Table::version`] view of the persisted epoch (sidecar
    /// file names and stamp-floor recovery key on it).
    pub fn version(&self) -> u64 {
        self.epoch.version()
    }
}

/// The catalog-level index of a data directory: one [`ManifestEntry`] per
/// persisted table, keyed by stable table id. Written atomically after
/// every save so recovery always reads a consistent catalog description.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Entries in no particular order; table ids are unique.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// A manifest with no tables.
    pub fn empty() -> Self {
        Manifest::default()
    }

    /// Number of persisted tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no table has been persisted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the entry for `table_id`.
    pub fn entry(&self, table_id: u64) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.table_id == table_id)
    }

    /// Total bytes of all table snapshot files.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Serializes the manifest (magic, format version, entries, trailing
    /// checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MANIFEST_MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u64(self.entries.len() as u64);
        for e in &self.entries {
            w.put_str(&e.name);
            w.put_u64(e.table_id);
            w.put_u64(e.epoch.structural);
            w.put_u64(e.epoch.appended);
            w.put_u64(e.num_rows);
            w.put_str(&e.file);
            w.put_u64(e.bytes);
        }
        let checksum = fnv1a64(w.bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Decodes a manifest written by [`Manifest::encode`], verifying magic
    /// bytes, format version and the trailing checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, StorageError> {
        if bytes.len() < 8 {
            return Err(StorageError::Corrupt("manifest too short".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(StorageError::Corrupt(format!(
                "manifest checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }
        let mut r = ByteReader::new(body);
        if r.take(4)? != MANIFEST_MAGIC {
            return Err(StorageError::Corrupt("not a dbwipes manifest (bad magic)".into()));
        }
        let version = r.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported manifest format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let count = r.get_len(1)?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(ManifestEntry {
                name: r.get_str()?,
                table_id: r.get_u64()?,
                epoch: TableEpoch { structural: r.get_u64()?, appended: r.get_u64()? },
                num_rows: r.get_u64()?,
                file: r.get_str()?,
                bytes: r.get_u64()?,
            });
        }
        Ok(Manifest { entries })
    }
}

/// A durable home for tables and their warm derived state. The filesystem
/// implementation is [`FsBackend`]; the trait exists so alternative
/// backends (object stores, test doubles such as
/// [`FaultInjectingBackend`](crate::faults::FaultInjectingBackend)) can
/// slot in behind the server without touching the recovery flow. `Debug`
/// is a supertrait so runtimes holding a `Box<dyn StorageBackend>` can
/// stay debuggable.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Persists a snapshot of `table` (data plus identity stamps) and
    /// updates the manifest, both via atomic rename. Returns the snapshot
    /// size in bytes.
    fn save_table(&self, table: &Table) -> Result<u64, StorageError>;

    /// Loads the persisted snapshot of `table_id`, restoring its stable
    /// identity and version stamps.
    fn load_table(&self, table_id: u64) -> Result<Table, StorageError>;

    /// The current manifest. An empty data directory yields an empty
    /// manifest, not an error.
    fn list_manifest(&self) -> Result<Manifest, StorageError>;

    /// Removes `table_id`'s snapshot and any warm-state sidecars from the
    /// backend and the manifest. Evicting an unknown id is a no-op.
    fn evict(&self, table_id: u64) -> Result<(), StorageError>;

    /// Persists a warm-state sidecar blob (serialized caches) keyed by
    /// table id + version + kind. Returns the bytes written. Sidecars are
    /// best-effort: they accelerate recovery but are never required.
    fn save_sidecar(
        &self,
        table_id: u64,
        version: u64,
        kind: &str,
        bytes: &[u8],
    ) -> Result<u64, StorageError>;

    /// Loads a warm-state sidecar, or `None` when no sidecar was persisted
    /// for that exact table id + version + kind.
    fn load_sidecar(
        &self,
        table_id: u64,
        version: u64,
        kind: &str,
    ) -> Result<Option<Vec<u8>>, StorageError>;

    /// Total bytes the backend currently occupies on disk (snapshots,
    /// sidecars and the manifest).
    fn bytes_on_disk(&self) -> Result<u64, StorageError>;
}

/// Filesystem [`StorageBackend`]: one directory holding `t<id>.tbl`
/// snapshots, `s<id>-<version>-<kind>.bin` sidecars and a `MANIFEST.bin`
/// index, every file written via temp-file + atomic rename.
#[derive(Debug)]
pub struct FsBackend {
    dir: PathBuf,
    /// Serializes read-modify-write cycles on the manifest within this
    /// process (cross-process safety comes from the atomic rename).
    manifest_lock: Mutex<()>,
}

/// Manifest file name inside a data directory.
const MANIFEST_FILE: &str = "MANIFEST.bin";

fn io_err(context: &str, e: std::io::Error) -> StorageError {
    StorageError::Io(format!("{context}: {e}"))
}

impl FsBackend {
    /// Opens (creating if needed) a data directory. Reading the manifest
    /// here also advances the process-global stamp counter past every
    /// persisted id/version, so tables created later in this process can
    /// never collide with restored identities.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| io_err(&format!("creating data dir {}", dir.display()), e))?;
        let backend = FsBackend { dir, manifest_lock: Mutex::new(()) };
        let manifest = backend.read_manifest()?;
        for e in &manifest.entries {
            crate::table::advance_stamp_floor(e.table_id.max(e.version()));
        }
        Ok(backend)
    }

    /// The data directory this backend persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn table_file(table_id: u64) -> String {
        format!("t{table_id}.tbl")
    }

    fn sidecar_file(table_id: u64, version: u64, kind: &str) -> String {
        format!("s{table_id}-{version}-{kind}.bin")
    }

    /// Writes `bytes` to `name` under the data directory via temp-file +
    /// atomic rename: a crash mid-write leaves the old file intact.
    fn atomic_write(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let path = self.dir.join(name);
        let tmp = self.dir.join(format!("{name}.tmp{}", std::process::id()));
        fs::write(&tmp, bytes).map_err(|e| io_err(&format!("writing {}", tmp.display()), e))?;
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            io_err(&format!("renaming {} into place", path.display()), e)
        })
    }

    fn read_manifest(&self) -> Result<Manifest, StorageError> {
        let path = self.dir.join(MANIFEST_FILE);
        match fs::read(&path) {
            Ok(bytes) => Manifest::decode(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Manifest::empty()),
            Err(e) => Err(io_err(&format!("reading {}", path.display()), e)),
        }
    }

    /// Removes every sidecar of `table_id` except those stamped with
    /// `keep_version` (pass `None` to remove them all).
    fn remove_stale_sidecars(&self, table_id: u64, keep_version: Option<u64>) {
        let keep_prefix = keep_version.map(|v| format!("s{table_id}-{v}-"));
        let all_prefix = format!("s{table_id}-");
        if let Ok(dir) = fs::read_dir(&self.dir) {
            for entry in dir.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let kept = match &keep_prefix {
                    Some(keep) => name.starts_with(keep.as_str()),
                    None => false,
                };
                if name.starts_with(&all_prefix) && !kept {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

impl StorageBackend for FsBackend {
    fn save_table(&self, table: &Table) -> Result<u64, StorageError> {
        let bytes = encode_table(table);
        let file = Self::table_file(table.id());
        self.atomic_write(&file, &bytes)?;
        // A new data version makes every older sidecar of this table
        // unreloadable; reclaim the space eagerly.
        self.remove_stale_sidecars(table.id(), Some(table.version()));
        let _guard = self.manifest_lock.lock().expect("manifest lock poisoned");
        let mut manifest = self.read_manifest()?;
        let entry = ManifestEntry {
            name: table.name().to_string(),
            table_id: table.id(),
            epoch: table.epoch(),
            num_rows: table.num_rows() as u64,
            file,
            bytes: bytes.len() as u64,
        };
        match manifest.entries.iter_mut().find(|e| e.table_id == table.id()) {
            Some(slot) => *slot = entry,
            None => manifest.entries.push(entry),
        }
        self.atomic_write(MANIFEST_FILE, &manifest.encode())?;
        Ok(bytes.len() as u64)
    }

    fn load_table(&self, table_id: u64) -> Result<Table, StorageError> {
        let manifest = self.read_manifest()?;
        let entry = manifest
            .entry(table_id)
            .ok_or_else(|| StorageError::UnknownTable(format!("#{table_id}")))?;
        let path = self.dir.join(&entry.file);
        let bytes =
            fs::read(&path).map_err(|e| io_err(&format!("reading {}", path.display()), e))?;
        let table = decode_table(&bytes)?;
        // `save_table` writes the snapshot file *before* the manifest, so a
        // crash between the two renames leaves a complete, checksummed
        // snapshot stamped AHEAD of the manifest entry. That file is the
        // durable truth — accept it. A snapshot BEHIND the manifest cannot
        // arise from that ordering and still means corruption.
        let ahead_of_manifest = table.epoch().structural >= entry.epoch.structural
            && table.epoch().appended >= entry.epoch.appended;
        if table.id() != entry.table_id || !ahead_of_manifest {
            return Err(StorageError::Corrupt(format!(
                "snapshot {} is stamped ({}, {:?}) but the manifest expects ({}, {:?})",
                entry.file,
                table.id(),
                table.epoch(),
                entry.table_id,
                entry.epoch
            )));
        }
        Ok(table)
    }

    fn list_manifest(&self) -> Result<Manifest, StorageError> {
        self.read_manifest()
    }

    fn evict(&self, table_id: u64) -> Result<(), StorageError> {
        let _guard = self.manifest_lock.lock().expect("manifest lock poisoned");
        let mut manifest = self.read_manifest()?;
        let before = manifest.entries.len();
        manifest.entries.retain(|e| e.table_id != table_id);
        if manifest.entries.len() != before {
            self.atomic_write(MANIFEST_FILE, &manifest.encode())?;
        }
        let _ = fs::remove_file(self.dir.join(Self::table_file(table_id)));
        self.remove_stale_sidecars(table_id, None);
        Ok(())
    }

    fn save_sidecar(
        &self,
        table_id: u64,
        version: u64,
        kind: &str,
        bytes: &[u8],
    ) -> Result<u64, StorageError> {
        let mut w = ByteWriter::new();
        w.put_bytes(SIDECAR_MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u64(bytes.len() as u64);
        w.put_bytes(bytes);
        w.put_u64(fnv1a64(bytes));
        let framed = w.into_bytes();
        self.atomic_write(&Self::sidecar_file(table_id, version, kind), &framed)?;
        Ok(framed.len() as u64)
    }

    fn load_sidecar(
        &self,
        table_id: u64,
        version: u64,
        kind: &str,
    ) -> Result<Option<Vec<u8>>, StorageError> {
        let path = self.dir.join(Self::sidecar_file(table_id, version, kind));
        let framed = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&format!("reading {}", path.display()), e)),
        };
        let mut r = ByteReader::new(&framed);
        if r.take(4)? != SIDECAR_MAGIC {
            return Err(StorageError::Corrupt("not a dbwipes sidecar (bad magic)".into()));
        }
        let fversion = r.get_u32()?;
        if fversion != FORMAT_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported sidecar format version {fversion} (this build reads {FORMAT_VERSION})"
            )));
        }
        let len = r.get_len(1)?;
        let body = r.take(len)?.to_vec();
        let stored = r.get_u64()?;
        let actual = fnv1a64(&body);
        if stored != actual {
            return Err(StorageError::Corrupt(format!(
                "sidecar checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }
        Ok(Some(body))
    }

    fn bytes_on_disk(&self) -> Result<u64, StorageError> {
        let mut total = 0u64;
        let dir = fs::read_dir(&self.dir)
            .map_err(|e| io_err(&format!("listing {}", self.dir.display()), e))?;
        for entry in dir.flatten() {
            if let Ok(meta) = entry.metadata() {
                if meta.is_file() {
                    total += meta.len();
                }
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A fresh per-test directory under the OS temp dir; removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("dbwipes-persist-{}-{n}", std::process::id()));
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn every_type_table() -> Table {
        let schema = Schema::new(vec![
            Field::nullable("flag", DataType::Bool),
            Field::nullable("count", DataType::Int),
            Field::nullable("temp", DataType::Float),
            Field::nullable("room", DataType::Str),
            Field::nullable("at", DataType::Timestamp),
        ])
        .unwrap();
        let mut t = Table::new("everything", schema).unwrap();
        t.push_rows(vec![
            vec![
                Value::Bool(true),
                Value::Int(-7),
                Value::Float(1.5),
                Value::str("lab"),
                Value::Timestamp(99),
            ],
            vec![Value::Null, Value::Null, Value::Null, Value::Null, Value::Null],
            vec![
                Value::Bool(false),
                Value::Int(i64::MAX),
                Value::Float(-0.0),
                Value::str("lab"),
                Value::Timestamp(-1),
            ],
            vec![
                Value::Bool(true),
                Value::Int(0),
                Value::Float(f64::INFINITY),
                Value::str(""),
                Value::Timestamp(0),
            ],
        ])
        .unwrap();
        t.delete_row(crate::table::RowId(2)).unwrap();
        t
    }

    fn assert_tables_identical(a: &Table, b: &Table) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.id(), b.id());
        assert_eq!(a.version(), b.version());
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.num_rows(), b.num_rows());
        for rid in a.all_row_ids() {
            assert_eq!(a.row(rid).unwrap(), b.row(rid).unwrap(), "row {rid}");
            assert_eq!(a.is_deleted(rid), b.is_deleted(rid), "deletion flag of {rid}");
        }
    }

    #[test]
    fn table_image_round_trips_every_column_type() {
        let t = every_type_table();
        let restored = decode_table(&encode_table(&t)).unwrap();
        assert_tables_identical(&t, &restored);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = Table::new("empty", Schema::of(&[("x", DataType::Int)])).unwrap();
        let restored = decode_table(&encode_table(&t)).unwrap();
        assert_tables_identical(&t, &restored);
        assert!(restored.is_empty());
    }

    #[test]
    fn truncated_and_corrupted_images_are_rejected_cleanly() {
        let t = every_type_table();
        let bytes = encode_table(&t);
        // Truncation at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(decode_table(&bytes[..cut]).is_err(), "prefix of {cut} bytes");
        }
        // A flipped byte anywhere in a segment body trips its checksum (or
        // an earlier structural check); headers fail structurally.
        for pos in [0, 5, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xff;
            assert!(decode_table(&bad).is_err(), "flipped byte at {pos}");
        }
    }

    #[test]
    fn unsupported_format_version_is_rejected() {
        let t = every_type_table();
        let mut bytes = encode_table(&t);
        bytes[4] = 0xee; // the u32 format version follows the 4-byte magic
        let err = decode_table(&bytes).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn fs_backend_saves_loads_and_evicts() {
        let dir = TempDir::new();
        let backend = FsBackend::open(dir.path()).unwrap();
        let t = every_type_table();
        let written = backend.save_table(&t).unwrap();
        assert!(written > 0);

        let manifest = backend.list_manifest().unwrap();
        assert_eq!(manifest.len(), 1);
        let entry = manifest.entry(t.id()).unwrap();
        assert_eq!(entry.name, "everything");
        assert_eq!(entry.epoch, t.epoch());
        assert_eq!(entry.num_rows, t.num_rows() as u64);
        assert_eq!(entry.bytes, written);
        assert!(backend.bytes_on_disk().unwrap() >= written);

        let restored = backend.load_table(t.id()).unwrap();
        assert_tables_identical(&t, &restored);

        backend.evict(t.id()).unwrap();
        assert!(backend.list_manifest().unwrap().is_empty());
        assert!(matches!(backend.load_table(t.id()), Err(StorageError::UnknownTable(_))));
        // Evicting an unknown id is a no-op.
        backend.evict(t.id()).unwrap();
    }

    #[test]
    fn resaving_a_mutated_table_replaces_its_manifest_entry() {
        let dir = TempDir::new();
        let backend = FsBackend::open(dir.path()).unwrap();
        let mut t = every_type_table();
        backend.save_table(&t).unwrap();
        let v1 = t.version();
        t.delete_row(crate::table::RowId(0)).unwrap();
        backend.save_table(&t).unwrap();
        let manifest = backend.list_manifest().unwrap();
        assert_eq!(manifest.len(), 1, "same table id replaces, never duplicates");
        assert_ne!(manifest.entry(t.id()).unwrap().version(), v1);
        let restored = backend.load_table(t.id()).unwrap();
        assert!(restored.is_deleted(crate::table::RowId(0)));
    }

    #[test]
    fn snapshot_ahead_of_manifest_loads_as_the_durable_truth() {
        // Simulate a crash between `save_table`'s two renames: the snapshot
        // file holds a complete newer epoch while the manifest still records
        // the previous save. The newer file must load, not error.
        let dir = TempDir::new();
        let backend = FsBackend::open(dir.path()).unwrap();
        let mut t = every_type_table();
        backend.save_table(&t).unwrap();
        let stale_epoch = backend.list_manifest().unwrap().entry(t.id()).unwrap().epoch;
        t.push_rows(vec![vec![
            Value::Bool(false),
            Value::Int(42),
            Value::Float(2.5),
            Value::str("attic"),
            Value::Timestamp(7),
        ]])
        .unwrap();
        // Write only the snapshot file — the half of `save_table` that
        // completes first — leaving the manifest behind.
        backend.atomic_write(&FsBackend::table_file(t.id()), &encode_table(&t)).unwrap();
        assert_ne!(t.epoch(), stale_epoch);
        let restored = backend.load_table(t.id()).unwrap();
        assert_tables_identical(&t, &restored);
        assert_eq!(backend.list_manifest().unwrap().entry(t.id()).unwrap().epoch, stale_epoch);
    }

    #[test]
    fn snapshot_behind_the_manifest_is_still_rejected() {
        // The reverse skew cannot arise from `save_table`'s write ordering,
        // so an older-than-manifest snapshot still means corruption.
        let dir = TempDir::new();
        let backend = FsBackend::open(dir.path()).unwrap();
        let mut t = every_type_table();
        let old_bytes = {
            backend.save_table(&t).unwrap();
            encode_table(&t)
        };
        t.delete_row(crate::table::RowId(0)).unwrap();
        backend.save_table(&t).unwrap();
        backend.atomic_write(&FsBackend::table_file(t.id()), &old_bytes).unwrap();
        let err = backend.load_table(t.id()).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn corrupted_snapshot_file_fails_checksum_on_load() {
        let dir = TempDir::new();
        let backend = FsBackend::open(dir.path()).unwrap();
        let t = every_type_table();
        backend.save_table(&t).unwrap();
        let file = dir.path().join(format!("t{}.tbl", t.id()));
        let mut bytes = fs::read(&file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&file, bytes).unwrap();
        assert!(matches!(backend.load_table(t.id()), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn stamp_floor_prevents_identity_collisions_after_restore() {
        let t = every_type_table();
        let restored = decode_table(&encode_table(&t)).unwrap();
        let fresh = Table::new("fresh", Schema::of(&[("x", DataType::Int)])).unwrap();
        assert!(fresh.id() > restored.id());
        assert!(fresh.id() > restored.version());
    }

    #[test]
    fn sidecars_round_trip_and_miss_on_version_mismatch() {
        let dir = TempDir::new();
        let backend = FsBackend::open(dir.path()).unwrap();
        let payload = b"warm state".to_vec();
        backend.save_sidecar(7, 40, "aggs", &payload).unwrap();
        assert_eq!(backend.load_sidecar(7, 40, "aggs").unwrap(), Some(payload));
        assert_eq!(backend.load_sidecar(7, 41, "aggs").unwrap(), None);
        assert_eq!(backend.load_sidecar(8, 40, "aggs").unwrap(), None);
        // A tampered sidecar is rejected, not returned.
        let path = dir.path().join("s7-40-aggs.bin");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 9;
        bytes[last] ^= 0xff;
        fs::write(&path, bytes).unwrap();
        assert!(backend.load_sidecar(7, 40, "aggs").is_err());
    }

    #[test]
    fn saving_a_new_version_drops_stale_sidecars() {
        let dir = TempDir::new();
        let backend = FsBackend::open(dir.path()).unwrap();
        let mut t = every_type_table();
        backend.save_table(&t).unwrap();
        backend.save_sidecar(t.id(), t.version(), "aggs", b"v1").unwrap();
        let old_version = t.version();
        t.restore_all();
        backend.save_table(&t).unwrap();
        assert_eq!(backend.load_sidecar(t.id(), old_version, "aggs").unwrap(), None);
    }

    #[test]
    fn manifest_decode_rejects_corruption() {
        let manifest = Manifest {
            entries: vec![ManifestEntry {
                name: "t".into(),
                table_id: 3,
                epoch: TableEpoch { structural: 4, appended: 6 },
                num_rows: 5,
                file: "t3.tbl".into(),
                bytes: 128,
            }],
        };
        let bytes = manifest.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), manifest);
        assert!(Manifest::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        bad[6] ^= 0x10;
        assert!(Manifest::decode(&bad).is_err());
        assert!(Manifest::decode(b"nope").is_err());
    }

    #[test]
    fn manifest_read_modify_write_is_keyed_by_table_id() {
        let dir = TempDir::new();
        let backend = FsBackend::open(dir.path()).unwrap();
        let a = every_type_table();
        let b = Table::new("other", Schema::of(&[("x", DataType::Int)])).unwrap();
        backend.save_table(&a).unwrap();
        backend.save_table(&b).unwrap();
        let manifest = backend.list_manifest().unwrap();
        assert_eq!(manifest.len(), 2);
        assert_eq!(manifest.total_bytes(), manifest.entries.iter().map(|e| e.bytes).sum::<u64>());
        assert!(manifest.entry(a.id()).is_some());
        assert!(manifest.entry(b.id()).is_some());
    }

    #[test]
    fn reopening_a_data_dir_advances_the_stamp_floor() {
        let dir = TempDir::new();
        {
            let backend = FsBackend::open(dir.path()).unwrap();
            backend.save_table(&every_type_table()).unwrap();
        }
        let manifest_max = {
            let backend = FsBackend::open(dir.path()).unwrap();
            let m = backend.list_manifest().unwrap();
            m.entries.iter().map(|e| e.table_id.max(e.version())).max().unwrap()
        };
        let fresh = Table::new("fresh", Schema::of(&[("x", DataType::Int)])).unwrap();
        assert!(fresh.id() > manifest_max, "open() must advance the stamp floor");
    }

    #[test]
    fn warm_bitmaps_round_trip_and_reject_corruption() {
        let trues = RowSet::from_indices(100, [0, 63, 64, 99]);
        let unknowns = RowSet::from_indices(100, [5]);
        let entries = vec![("temp >= 100".to_string(), TriSet { trues: trues.clone(), unknowns })];
        let bytes = encode_warm_bitmaps(&entries);
        let decoded = decode_warm_bitmaps(&bytes).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].0, "temp >= 100");
        assert_eq!(decoded[0].1.trues, trues);
        assert_eq!(decoded[0].1.trues.universe(), 100);

        let mut bad = bytes.clone();
        bad[10] ^= 0xff;
        assert!(decode_warm_bitmaps(&bad).is_err());
        assert!(decode_warm_bitmaps(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn value_codec_round_trips_every_variant() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(-0.0),
            Value::str("héllo"),
            Value::Timestamp(1234567890),
        ];
        let mut w = ByteWriter::new();
        for v in &values {
            put_value(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &values {
            let got = get_value(&mut r).unwrap();
            match (v, &got) {
                // -0.0 == 0.0 under PartialEq; compare floats by bits.
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(*v, got),
            }
        }
        assert!(r.is_done());
        assert!(get_value(&mut ByteReader::new(&[9])).is_err());
        assert!(get_value(&mut ByteReader::new(&[])).is_err());
    }
}

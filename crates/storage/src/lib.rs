//! # dbwipes-storage
//!
//! The storage substrate of the DBWipes reproduction: dynamically typed
//! [`Value`]s, [`Schema`]s, columnar [`Table`]s with stable [`RowId`]s and
//! soft deletion, a scalar [`Expr`]ession language with SQL three-valued
//! logic, human-readable [`ConjunctivePredicate`]s (the output format of the
//! Ranked Provenance System), a table [`Catalog`], and CSV import/export.
//!
//! The original DBWipes demo (Wu, Madden, Stonebraker, VLDB 2012) ran on top
//! of PostgreSQL; this crate plus `dbwipes-engine` replaces that dependency
//! with an embedded engine that supports exactly the aggregate group-by
//! queries and predicate-based cleaning the demo needs, while exposing the
//! row-level hooks the provenance layer requires.
//!
//! ## RowSets and shards
//!
//! The vectorized predicate path works in [`RowSet`] bitmaps: each
//! condition kernel produces one bitmap over a table's physical rows,
//! conjunctions are word-wise intersections, and match counting is a
//! popcount. A [`ShardedTable`] partitions those universes horizontally —
//! every shard is a full [`Table`] with its own contiguous `RowSet`
//! universe, bridged to the base table by a global↔(shard, local) row-id
//! mapping, with per-shard zone maps that let equality and range
//! conditions skip shards that cannot contain a match:
//!
//! ```
//! use dbwipes_storage::{
//!     Condition, ConditionBitmapCache, DataType, RowSet, Schema, ShardedTable, Table, Value,
//! };
//!
//! let mut t = Table::new(
//!     "readings",
//!     Schema::of(&[("sensorid", DataType::Int), ("temp", DataType::Float)]),
//! )
//! .unwrap();
//! for i in 0..1000i64 {
//!     t.push_row(vec![Value::Int(i % 10), Value::Float(20.0 + (i % 7) as f64)]).unwrap();
//! }
//!
//! // Unsharded: one kernel scan over the full universe.
//! let cache = ConditionBitmapCache::new(&t);
//! let cond = Condition::equals("sensorid", 3);
//! let full = cache.condition(&t, &cond).unwrap();
//!
//! // Sharded: the same condition pins to a single hash shard; scanning
//! // the other three shards is provably unnecessary.
//! let sharded = ShardedTable::hash(&t, "sensorid", 4).unwrap();
//! let mut merged: Vec<RowSet> =
//!     sharded.shards().iter().map(|s| RowSet::empty(s.num_rows())).collect();
//! for (s, shard) in sharded.shards().iter().enumerate() {
//!     if !sharded.condition_may_match(s, &cond) {
//!         continue; // zone maps guarantee an empty result here
//!     }
//!     let local = ConditionBitmapCache::new(shard);
//!     merged[s] = local.condition(shard, &cond).unwrap().trues.clone();
//! }
//! assert_eq!(sharded.merge_sets(&merged), full.trues);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod catalog;
pub mod column;
pub mod csv;
pub mod error;
pub mod expr;
pub mod faults;
pub mod persist;
pub mod predicate;
pub mod rowset;
pub mod schema;
pub mod shard;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use column::Column;
pub use error::StorageError;
pub use expr::{col, lit, BinaryOp, Expr, UnaryOp};
pub use faults::{FaultInjectingBackend, FaultKind, FaultPlan};
pub use persist::{FsBackend, Manifest, ManifestEntry, StorageBackend};
pub use predicate::{
    bool_vectorization_stats, enable_warm_bitmap_store, export_warm_bitmaps, note_bool_fallback,
    note_bool_vectorized, seed_warm_bitmaps, warm_bitmap_rehydrated_count, Candidate,
    CompiledBoolExpr, CompiledPredicate, Condition, ConditionBitmapCache, ConjunctivePredicate,
    PredicateTree, TriSet,
};
pub use rowset::RowSet;
pub use schema::{Field, Schema};
pub use shard::ShardedTable;
pub use table::{EpochTolerance, RowId, Table, TableEpoch};
pub use value::{DataType, Value};

//! # dbwipes-storage
//!
//! The storage substrate of the DBWipes reproduction: dynamically typed
//! [`Value`]s, [`Schema`]s, columnar [`Table`]s with stable [`RowId`]s and
//! soft deletion, a scalar [`Expr`]ession language with SQL three-valued
//! logic, human-readable [`ConjunctivePredicate`]s (the output format of the
//! Ranked Provenance System), a table [`Catalog`], and CSV import/export.
//!
//! The original DBWipes demo (Wu, Madden, Stonebraker, VLDB 2012) ran on top
//! of PostgreSQL; this crate plus `dbwipes-engine` replaces that dependency
//! with an embedded engine that supports exactly the aggregate group-by
//! queries and predicate-based cleaning the demo needs, while exposing the
//! row-level hooks the provenance layer requires.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod catalog;
pub mod column;
pub mod csv;
pub mod error;
pub mod expr;
pub mod predicate;
pub mod rowset;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use column::Column;
pub use error::StorageError;
pub use expr::{col, lit, BinaryOp, Expr, UnaryOp};
pub use predicate::{
    CompiledPredicate, Condition, ConditionBitmapCache, ConjunctivePredicate, TriSet,
};
pub use rowset::RowSet;
pub use schema::{Field, Schema};
pub use table::{RowId, Table};
pub use value::{DataType, Value};

//! Dense row bitmaps for vectorized predicate evaluation.
//!
//! A [`RowSet`] represents a set of row indices of one table as a dense
//! `u64`-word bitmap. It is the currency of the vectorized predicate path:
//! condition kernels produce one `RowSet` per condition, conjunctions are
//! word-wise intersections, and counting matches is a popcount — no
//! per-row branching, hashing or allocation. The violation-set algebra of
//! the denial-constraint literature (and Scorpion's row-set reasoning) maps
//! onto exactly these three operations: `and`, `or`, `and_not`.
//!
//! Every `RowSet` carries the size of its universe (the table's physical
//! row count, soft-deleted rows included). Binary operations require both
//! operands to share a universe; mixing sets of different tables (or of a
//! table before and after an insert) is a logic error and panics rather
//! than silently mis-aligning rows.
//!
//! Bits beyond the universe are kept at zero as an invariant, so
//! [`RowSet::count_ones`] and iteration never need edge masking.

use crate::table::RowId;
use std::fmt;

/// A set of row indices over a fixed universe `0..len`, stored as a dense
/// bitmap.
#[derive(Clone, PartialEq, Eq)]
pub struct RowSet {
    words: Vec<u64>,
    len: usize,
}

impl RowSet {
    /// The empty set over the universe `0..len`.
    pub fn empty(len: usize) -> RowSet {
        RowSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// The full set over the universe `0..len`.
    pub fn full(len: usize) -> RowSet {
        let mut s = RowSet { words: vec![u64::MAX; len.div_ceil(64)], len };
        s.mask_tail();
        s
    }

    /// Builds a set from row indices (indices must lie within `0..len`).
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> RowSet {
        let mut s = RowSet::empty(len);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Builds a set from [`RowId`]s (ids must lie within `0..len`).
    pub fn from_rows<'a>(len: usize, rows: impl IntoIterator<Item = &'a RowId>) -> RowSet {
        RowSet::from_indices(len, rows.into_iter().map(|r| r.index()))
    }

    /// Wraps pre-built words (the kernels' word-at-a-time accumulation
    /// path). Short word vectors are zero-padded; the tail is masked.
    pub(crate) fn from_words(mut words: Vec<u64>, len: usize) -> RowSet {
        words.resize(len.div_ceil(64), 0);
        let mut s = RowSet { words, len };
        s.mask_tail();
        s
    }

    /// The raw bitmap words (for the persistence layer's snapshot codec).
    pub(crate) fn word_slice(&self) -> &[u64] {
        &self.words
    }

    /// Zeroes the bits beyond `len` in the last word (the invariant all
    /// constructors and mutators maintain).
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// The universe size (number of addressable rows, not set bits).
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Grows the universe to `new_len` in place, preserving membership: the
    /// appended row indices `len..new_len` start absent. This is the
    /// streaming-append path's counterpart to constructing a fresh set — a
    /// table that only gained rows keeps its existing bitmaps and grows
    /// them instead of rebuilding.
    ///
    /// Panics when `new_len` would shrink the universe (dropping rows is a
    /// structural change, not an append).
    pub fn grow(&mut self, new_len: usize) {
        assert!(
            new_len >= self.len,
            "RowSet universe cannot shrink ({} -> {new_len}): only appends grow in place",
            self.len
        );
        self.words.resize(new_len.div_ceil(64), 0);
        self.len = new_len;
    }

    /// Number of rows in the set.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no row is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds row `index` to the set.
    ///
    /// Panics when `index` is outside the universe.
    pub fn insert(&mut self, index: usize) {
        assert!(index < self.len, "row {index} outside universe 0..{}", self.len);
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Removes row `index` from the set (a no-op when absent or outside
    /// the universe).
    pub fn remove(&mut self, index: usize) {
        if index < self.len {
            self.words[index / 64] &= !(1u64 << (index % 64));
        }
    }

    /// True when row `index` is in the set (out-of-universe indices are
    /// never members).
    pub fn contains(&self, index: usize) -> bool {
        index < self.len && self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// True when [`RowId`] `row` is in the set.
    pub fn contains_row(&self, row: RowId) -> bool {
        self.contains(row.index())
    }

    fn check_universe(&self, other: &RowSet) {
        assert_eq!(
            self.len, other.len,
            "RowSet universes differ ({} vs {}): operands come from different tables",
            self.len, other.len
        );
    }

    /// In-place intersection.
    pub fn and_assign(&mut self, other: &RowSet) {
        self.check_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn or_assign(&mut self, other: &RowSet) {
        self.check_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn and_not_assign(&mut self, other: &RowSet) {
        self.check_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Intersection.
    pub fn and(&self, other: &RowSet) -> RowSet {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// Union.
    pub fn or(&self, other: &RowSet) -> RowSet {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Difference (`self \ other`).
    pub fn and_not(&self, other: &RowSet) -> RowSet {
        let mut out = self.clone();
        out.and_not_assign(other);
        out
    }

    /// In-place complement with respect to the universe `0..len`.
    pub fn complement_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Complement with respect to the universe `0..len` — the word-level
    /// negation that backs vectorized `NOT`.
    pub fn complement(&self) -> RowSet {
        let mut out = self.clone();
        out.complement_assign();
        out
    }

    /// `|self ∩ other|` without materializing the intersection.
    pub fn intersection_count(&self, other: &RowSet) -> usize {
        self.check_universe(other);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Iterates the set's row indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Iterates the set as [`RowId`]s in ascending order.
    pub fn iter_rows(&self) -> impl Iterator<Item = RowId> + '_ {
        self.iter().map(RowId)
    }

    /// Materializes the set as a `Vec<RowId>` in ascending order — the
    /// bridge back to the row-list APIs.
    pub fn to_row_ids(&self) -> Vec<RowId> {
        let mut out = Vec::with_capacity(self.count_ones());
        out.extend(self.iter_rows());
        out
    }
}

impl fmt::Debug for RowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RowSet({}/{} {{", self.count_ones(), self.len)?;
        for (n, i) in self.iter().take(16).enumerate() {
            if n > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{i}")?;
        }
        if self.count_ones() > 16 {
            f.write_str(", …")?;
        }
        f.write_str("})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_membership() {
        let s = RowSet::from_indices(130, [0, 63, 64, 129]);
        assert_eq!(s.universe(), 130);
        assert_eq!(s.count_ones(), 4);
        assert!(!s.is_empty());
        for i in [0usize, 63, 64, 129] {
            assert!(s.contains(i));
        }
        assert!(!s.contains(1));
        assert!(!s.contains(130));
        assert!(!s.contains(100_000));
        assert!(s.contains_row(RowId(64)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert_eq!(s.to_row_ids(), vec![RowId(0), RowId(63), RowId(64), RowId(129)]);

        assert!(RowSet::empty(10).is_empty());
        assert_eq!(RowSet::empty(0).count_ones(), 0);
        assert_eq!(RowSet::full(0).count_ones(), 0);
    }

    #[test]
    fn full_masks_the_tail_word() {
        for len in [1usize, 63, 64, 65, 128, 130] {
            let s = RowSet::full(len);
            assert_eq!(s.count_ones(), len, "len {len}");
            assert_eq!(s.iter().count(), len);
            assert!(!s.contains(len));
        }
    }

    #[test]
    fn algebra_matches_set_semantics() {
        let a = RowSet::from_indices(100, [1, 5, 64, 70]);
        let b = RowSet::from_indices(100, [5, 64, 99]);
        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![5, 64]);
        assert_eq!(a.or(&b).iter().collect::<Vec<_>>(), vec![1, 5, 64, 70, 99]);
        assert_eq!(a.and_not(&b).iter().collect::<Vec<_>>(), vec![1, 70]);
        assert_eq!(a.intersection_count(&b), 2);
        let mut c = a.clone();
        c.or_assign(&b);
        c.and_not_assign(&a);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![99]);
    }

    #[test]
    fn complement_respects_the_universe() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let a = RowSet::from_indices(len, (0..len).filter(|i| i % 3 == 0));
            let c = a.complement();
            assert_eq!(c.count_ones(), len - a.count_ones(), "len {len}");
            for i in 0..len {
                assert_eq!(c.contains(i), !a.contains(i), "len {len} row {i}");
            }
            assert!(!c.contains(len));
            assert_eq!(c.complement(), a, "double complement, len {len}");
            assert_eq!(RowSet::empty(len).complement(), RowSet::full(len));
        }
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn mixed_universes_panic() {
        let _ = RowSet::empty(10).and(&RowSet::empty(11));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_insert_panics() {
        RowSet::empty(10).insert(10);
    }

    #[test]
    fn grow_preserves_membership_and_tail_invariant() {
        for (len, new_len) in
            [(0usize, 5usize), (10, 64), (63, 64), (64, 65), (100, 100), (65, 130)]
        {
            let mut s = RowSet::from_indices(len, (0..len).filter(|i| i % 2 == 0));
            let before: Vec<usize> = s.iter().collect();
            s.grow(new_len);
            assert_eq!(s.universe(), new_len, "{len} -> {new_len}");
            assert_eq!(s.iter().collect::<Vec<_>>(), before, "{len} -> {new_len}");
            // New rows are absent but insertable; universes now match a
            // same-sized set (the mixing panic is gone after growth).
            if new_len > len {
                assert!(!s.contains(new_len - 1));
                s.insert(new_len - 1);
                assert!(s.contains(new_len - 1));
            }
            let _ = s.and(&RowSet::full(new_len));
            assert_eq!(s.complement().count_ones(), new_len - s.count_ones());
        }
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        RowSet::empty(10).grow(9);
    }

    #[test]
    fn from_rows_bridge() {
        let rows = [RowId(2), RowId(9)];
        let s = RowSet::from_rows(12, rows.iter());
        assert!(s.contains_row(RowId(2)) && s.contains_row(RowId(9)));
        assert_eq!(s.count_ones(), 2);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("RowSet(2/12"), "{dbg}");
    }
}

//! In-memory columnar tables with stable row identifiers and soft deletes.
//!
//! DBWipes' "clean as you query" loop removes tuples matching a predicate
//! from subsequent queries. Tables therefore support *soft deletion*: a
//! deleted row keeps its [`RowId`] (so provenance references stay valid)
//! but is skipped by scans until it is restored.

use crate::column::Column;
use crate::error::StorageError;
use crate::rowset::RowSet;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global counter behind table identities and data versions.
///
/// Every draw is unique for the lifetime of the process, so two tables (or
/// two diverged clones of one table) can never share an `(id, version)`
/// pair — the property the server's statement-fingerprint cache keys rely
/// on.
static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

fn next_stamp() -> u64 {
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Advances the process-global stamp counter past `stamp`, so stamps drawn
/// in this process can never collide with identities or versions restored
/// from a durable snapshot written by an earlier process.
pub(crate) fn advance_stamp_floor(stamp: u64) {
    NEXT_STAMP.fetch_max(stamp.saturating_add(1), Ordering::Relaxed);
}

/// How strictly a consumer of a table's [`TableEpoch`] must match the
/// table's current epoch for a derived artifact (cache, bitmap, partition,
/// manifest) to remain usable.
///
/// The two-part epoch exists so streaming appends do not invalidate the
/// world: artifacts that can *absorb* appended rows declare
/// [`EpochTolerance::TolerateAppends`] and stay alive across append-only
/// epochs, while artifacts pinned to an exact row universe (dense bitmaps,
/// memoized explanations) declare [`EpochTolerance::Exact`] and are
/// invalidated by any mutation, exactly as under the old single `version()`
/// stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochTolerance {
    /// The artifact is only valid for a bit-identical table: both epoch
    /// components must match.
    Exact,
    /// The artifact survives appends (it can absorb the delta before
    /// answering): the structural component must match, and the table's
    /// appended component must be at or past the artifact's.
    TolerateAppends,
}

/// A table's two-part data version: a `structural` stamp re-drawn by
/// mutations that can change or hide existing rows (soft delete, restore),
/// and an `appended` stamp re-drawn by row appends.
///
/// Both stamps come from the same process-global counter as [`Table::id`],
/// so every `(id, version())` pair still pins bit-identical data: each
/// mutation draws a globally unique stamp into one of the two components,
/// and [`TableEpoch::version`] is the most recent stamp drawn. The split
/// lets append-aware consumers distinguish "rows were added after yours"
/// (absorbable) from "rows you indexed changed" (rebuild required).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableEpoch {
    /// Stamp of the last structure-changing mutation (creation, soft
    /// delete, restore). Caches keyed on existing rows survive only while
    /// this is unchanged.
    pub structural: u64,
    /// Stamp of the last append (`push_row` / `push_rows`). A batch append
    /// draws one stamp for the whole batch.
    pub appended: u64,
}

impl TableEpoch {
    /// The single-stamp view of the epoch: the most recent mutation stamp.
    /// Two tables with equal id and equal `version()` hold identical data —
    /// the same invariant the old scalar version carried.
    pub fn version(&self) -> u64 {
        self.structural.max(self.appended)
    }

    /// True when an artifact built at epoch `self` may serve a table now at
    /// `current`, under the artifact's declared tolerance. `Exact` demands
    /// identical epochs; `TolerateAppends` additionally accepts a table
    /// that has only gained rows since (the artifact is expected to absorb
    /// the appended delta before answering).
    pub fn covers(&self, current: TableEpoch, tolerance: EpochTolerance) -> bool {
        match tolerance {
            EpochTolerance::Exact => *self == current,
            EpochTolerance::TolerateAppends => {
                self.structural == current.structural && self.appended <= current.appended
            }
        }
    }

    /// True when `self` is reachable from `older` by appends alone: the
    /// structural stamp is unchanged and the appended stamp is at or past
    /// `older`'s. This is the precondition every `absorb_append` checks.
    pub fn is_append_descendant_of(&self, older: TableEpoch) -> bool {
        self.structural == older.structural && self.appended >= older.appended
    }
}

/// A stable identifier of a row within one table.
///
/// Row ids are assigned densely in insertion order and never reused; they
/// are the currency of the provenance layer (lineage maps output groups to
/// sets of `RowId`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub usize);

impl RowId {
    /// The row id as a `usize` index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<usize> for RowId {
    fn from(v: usize) -> Self {
        RowId(v)
    }
}

/// An in-memory columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    deleted: Vec<bool>,
    /// Identity stamp: unique per `Table::new` call, preserved by `clone()`
    /// (a clone is a snapshot of the *same* logical table).
    id: u64,
    /// Two-part data version: every mutation re-stamps one component (see
    /// [`TableEpoch`]), so any two tables with equal `(id, version())` hold
    /// identical data.
    epoch: TableEpoch,
}

impl Table {
    /// Creates an empty table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Result<Self, StorageError> {
        let columns =
            schema.fields().iter().map(|f| Column::new(f.dtype)).collect::<Result<Vec<_>, _>>()?;
        let id = next_stamp();
        let epoch = TableEpoch { structural: id, appended: id };
        Ok(Table { name: name.into(), schema, columns, deleted: Vec::new(), id, epoch })
    }

    /// Reassembles a table from decoded snapshot parts, preserving the
    /// persisted identity and version stamps so cache fingerprints keyed on
    /// `(id, version)` survive a process restart. Advances the global stamp
    /// floor past both stamps so freshly created tables can never collide
    /// with restored ones.
    pub(crate) fn restore(
        name: String,
        schema: Schema,
        columns: Vec<Column>,
        deleted: Vec<bool>,
        id: u64,
        epoch: TableEpoch,
    ) -> Result<Self, StorageError> {
        if columns.len() != schema.len() {
            return Err(StorageError::Corrupt(format!(
                "snapshot has {} column segments but the schema declares {} columns",
                columns.len(),
                schema.len()
            )));
        }
        for (col, field) in columns.iter().zip(schema.fields()) {
            if col.dtype() != field.dtype {
                return Err(StorageError::Corrupt(format!(
                    "column '{}' segment is {} but the schema declares {}",
                    field.name,
                    col.dtype().name(),
                    field.dtype.name()
                )));
            }
            if col.len() != deleted.len() {
                return Err(StorageError::Corrupt(format!(
                    "column '{}' has {} rows but the table has {}",
                    field.name,
                    col.len(),
                    deleted.len()
                )));
            }
        }
        advance_stamp_floor(id.max(epoch.version()));
        Ok(Table { name, schema, columns, deleted, id, epoch })
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's process-unique identity. Clones share the identity of
    /// the table they were cloned from; independently created tables never
    /// collide, even across re-registrations under the same name.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The table's data version — the scalar view of [`Table::epoch`].
    /// Every mutation (insert, soft delete, restore) re-stamps one epoch
    /// component from a process-global counter, so diverged clones of one
    /// table also get distinct versions. Two tables with equal
    /// [`Table::id`] and equal version are guaranteed to hold identical
    /// data — the invariant behind cross-brush cache reuse.
    pub fn version(&self) -> u64 {
        self.epoch.version()
    }

    /// The table's two-part data version. Append-aware consumers compare
    /// epochs under an explicit [`EpochTolerance`] instead of the scalar
    /// [`Table::version`] so appends do not invalidate them wholesale.
    pub fn epoch(&self) -> TableEpoch {
        self.epoch
    }

    /// Re-stamps the structural epoch component; called by mutations that
    /// change or hide existing rows (soft delete, restore).
    fn touch_structural(&mut self) {
        self.epoch.structural = next_stamp();
    }

    /// Re-stamps the appended epoch component; called by appends. One call
    /// covers a whole batch.
    fn touch_appended(&mut self) {
        self.epoch.appended = next_stamp();
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of rows ever inserted (including soft-deleted rows).
    pub fn num_rows(&self) -> usize {
        self.deleted.len()
    }

    /// Number of rows currently visible (not soft-deleted).
    pub fn visible_rows(&self) -> usize {
        self.deleted.iter().filter(|d| !**d).count()
    }

    /// True when no rows have ever been inserted.
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty()
    }

    /// Appends a row given as one value per schema column.
    ///
    /// Returns the new row's [`RowId`].
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<RowId, StorageError> {
        self.validate_row(&values)?;
        self.apply_row(values);
        let id = RowId(self.deleted.len() - 1);
        self.touch_appended();
        Ok(id)
    }

    /// Appends many rows, all-or-nothing: the entire batch is validated
    /// against the schema before any column is mutated, so a bad row k
    /// leaves neither rows `0..k` applied nor the version stamp advanced.
    /// The whole batch lands under a single appended-epoch stamp.
    pub fn push_rows(&mut self, rows: Vec<Vec<Value>>) -> Result<Vec<RowId>, StorageError> {
        for row in &rows {
            self.validate_row(row)?;
        }
        let first = self.deleted.len();
        let ids = (first..first + rows.len()).map(RowId).collect();
        for row in rows {
            self.apply_row(row);
        }
        self.touch_appended();
        Ok(ids)
    }

    /// Validates one row against the schema (arity and per-column type)
    /// without mutating anything. Public so callers batching rows across
    /// several [`Table::push_rows`] calls can pre-validate the whole input
    /// and keep command-level all-or-nothing semantics.
    pub fn validate_row(&self, values: &[Value]) -> Result<(), StorageError> {
        if values.len() != self.schema.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.len(),
                found: values.len(),
            });
        }
        for (col, value) in self.columns.iter().zip(values.iter()) {
            if !value.is_null() {
                let mut probe = col.clone_empty();
                probe.push(value.clone())?;
            }
        }
        Ok(())
    }

    /// Appends one pre-validated row to every column. Does not re-stamp the
    /// epoch; callers do, once per logical append.
    fn apply_row(&mut self, values: Vec<Value>) {
        for (col, value) in self.columns.iter_mut().zip(values) {
            col.push(value).expect("validated by validate_row");
        }
        self.deleted.push(false);
    }

    /// Returns the value at (`row`, `col`) or an error when out of bounds.
    pub fn value(&self, row: RowId, col: usize) -> Result<Value, StorageError> {
        let column = self.columns.get(col).ok_or_else(|| StorageError::UnknownColumn {
            column: format!("<index {col}>"),
            available: self.schema.names(),
        })?;
        column.get(row.0).ok_or(StorageError::RowOutOfBounds { row: row.0, len: self.num_rows() })
    }

    /// Returns the value in the named column of `row`.
    pub fn value_by_name(&self, row: RowId, column: &str) -> Result<Value, StorageError> {
        let idx = self.schema.resolve(column)?;
        self.value(row, idx)
    }

    /// Returns a whole row as a vector of values (in schema order).
    pub fn row(&self, row: RowId) -> Result<Vec<Value>, StorageError> {
        if row.0 >= self.num_rows() {
            return Err(StorageError::RowOutOfBounds { row: row.0, len: self.num_rows() });
        }
        Ok(self.columns.iter().map(|c| c.get(row.0).expect("in bounds")).collect())
    }

    /// Returns the column at index `idx`.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Returns the column with the given name.
    pub fn column_by_name(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).and_then(|i| self.columns.get(i))
    }

    /// True when `row` is currently soft-deleted.
    pub fn is_deleted(&self, row: RowId) -> bool {
        self.deleted.get(row.0).copied().unwrap_or(true)
    }

    /// Soft-deletes a single row. Deleting an already-deleted row is a no-op.
    pub fn delete_row(&mut self, row: RowId) -> Result<(), StorageError> {
        match self.deleted.get_mut(row.0) {
            Some(d) => {
                *d = true;
                self.touch_structural();
                Ok(())
            }
            None => Err(StorageError::RowOutOfBounds { row: row.0, len: self.num_rows() }),
        }
    }

    /// Soft-deletes every row in `rows`, returning how many rows changed
    /// from visible to deleted.
    pub fn delete_rows(&mut self, rows: &[RowId]) -> Result<usize, StorageError> {
        let mut changed = 0;
        for &r in rows {
            if r.0 >= self.num_rows() {
                return Err(StorageError::RowOutOfBounds { row: r.0, len: self.num_rows() });
            }
            if !self.deleted[r.0] {
                self.deleted[r.0] = true;
                changed += 1;
            }
        }
        if changed > 0 {
            self.touch_structural();
        }
        Ok(changed)
    }

    /// Restores a soft-deleted row.
    pub fn restore_row(&mut self, row: RowId) -> Result<(), StorageError> {
        match self.deleted.get_mut(row.0) {
            Some(d) => {
                *d = false;
                self.touch_structural();
                Ok(())
            }
            None => Err(StorageError::RowOutOfBounds { row: row.0, len: self.num_rows() }),
        }
    }

    /// Restores all soft-deleted rows.
    pub fn restore_all(&mut self) {
        for d in &mut self.deleted {
            *d = false;
        }
        self.touch_structural();
    }

    /// Iterates over the ids of all visible (non-deleted) rows.
    pub fn visible_row_ids(&self) -> impl Iterator<Item = RowId> + '_ {
        self.deleted.iter().enumerate().filter(|(_, d)| !**d).map(|(i, _)| RowId(i))
    }

    /// Iterates over the ids of all rows ever inserted, deleted or not.
    pub fn all_row_ids(&self) -> impl Iterator<Item = RowId> + '_ {
        (0..self.num_rows()).map(RowId)
    }

    /// The raw soft-deletion mask, one flag per physical row (for the
    /// persistence layer's snapshot codec).
    pub(crate) fn deleted_slice(&self) -> &[bool] {
        &self.deleted
    }

    /// The visible (non-soft-deleted) rows as a [`RowSet`] bitmap over the
    /// table's physical rows — the mask the vectorized predicate kernels
    /// intersect their full-column results with.
    pub fn visible_row_set(&self) -> RowSet {
        let mut set = RowSet::full(self.deleted.len());
        for (i, &d) in self.deleted.iter().enumerate() {
            if d {
                set.remove(i);
            }
        }
        set
    }

    /// Materialises a new table containing copies of the given rows
    /// (in the order given), preserving this table's schema. The new table's
    /// row ids are renumbered from zero; the returned mapping gives, for each
    /// new row, the original [`RowId`] it came from.
    pub fn materialize(
        &self,
        rows: &[RowId],
        name: impl Into<String>,
    ) -> Result<(Table, Vec<RowId>), StorageError> {
        let mut out = Table::new(name, self.schema.clone())?;
        let mut mapping = Vec::with_capacity(rows.len());
        for &r in rows {
            let values = self.row(r)?;
            out.push_row(values)?;
            mapping.push(r);
        }
        Ok((out, mapping))
    }

    /// Renders the first `limit` visible rows as an ASCII table, mainly for
    /// examples and debugging output.
    pub fn preview(&self, limit: usize) -> String {
        let mut s = String::new();
        s.push_str(&self.schema.names().join(" | "));
        s.push('\n');
        for (count, rid) in self.visible_row_ids().enumerate() {
            if count >= limit {
                s.push_str("...\n");
                break;
            }
            let row = self.row(rid).expect("visible row exists");
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            s.push_str(&cells.join(" | "));
            s.push('\n');
        }
        s
    }
}

impl Column {
    /// Creates an empty column with the same type as `self`; used to
    /// validate pushes without mutating the real column.
    fn clone_empty(&self) -> Column {
        Column::new(self.dtype()).expect("existing column has a concrete type")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn sensor_table() -> Table {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("room", DataType::Str),
        ]);
        let mut t = Table::new("sensors", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(1), Value::Float(20.0), Value::str("lab")],
            vec![Value::Int(2), Value::Float(21.5), Value::str("lab")],
            vec![Value::Int(3), Value::Float(120.0), Value::str("kitchen")],
        ])
        .unwrap();
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = sensor_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.visible_rows(), 3);
        assert_eq!(t.value(RowId(2), 1).unwrap(), Value::Float(120.0));
        assert_eq!(t.value_by_name(RowId(0), "room").unwrap(), Value::str("lab"));
        assert_eq!(
            t.row(RowId(1)).unwrap(),
            vec![Value::Int(2), Value::Float(21.5), Value::str("lab")]
        );
    }

    #[test]
    fn arity_mismatch_rejected_without_corruption() {
        let mut t = sensor_table();
        let err = t.push_row(vec![Value::Int(9)]).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { expected: 3, found: 1 }));
        // Type error in the middle of a row must not partially apply.
        let err = t.push_row(vec![Value::Int(9), Value::str("oops"), Value::str("x")]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert_eq!(t.num_rows(), 3);
        for c in 0..3 {
            assert_eq!(t.column(c).unwrap().len(), 3);
        }
    }

    #[test]
    fn soft_delete_and_restore() {
        let mut t = sensor_table();
        t.delete_row(RowId(1)).unwrap();
        assert!(t.is_deleted(RowId(1)));
        assert_eq!(t.visible_rows(), 2);
        let visible: Vec<RowId> = t.visible_row_ids().collect();
        assert_eq!(visible, vec![RowId(0), RowId(2)]);
        // Row data survives deletion (provenance may still reference it).
        assert_eq!(t.value(RowId(1), 0).unwrap(), Value::Int(2));

        t.restore_row(RowId(1)).unwrap();
        assert_eq!(t.visible_rows(), 3);

        let changed = t.delete_rows(&[RowId(0), RowId(0), RowId(2)]).unwrap();
        assert_eq!(changed, 2);
        t.restore_all();
        assert_eq!(t.visible_rows(), 3);
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut t = sensor_table();
        assert!(t.value(RowId(10), 0).is_err());
        assert!(t.row(RowId(10)).is_err());
        assert!(t.delete_row(RowId(10)).is_err());
        assert!(t.restore_row(RowId(10)).is_err());
        assert!(t.delete_rows(&[RowId(10)]).is_err());
        assert!(t.is_deleted(RowId(10)));
        assert!(t.value_by_name(RowId(0), "missing").is_err());
    }

    #[test]
    fn materialize_subset() {
        let t = sensor_table();
        let (sub, mapping) = t.materialize(&[RowId(2), RowId(0)], "subset").unwrap();
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.value(RowId(0), 1).unwrap(), Value::Float(120.0));
        assert_eq!(mapping, vec![RowId(2), RowId(0)]);
        assert_eq!(sub.name(), "subset");
    }

    #[test]
    fn preview_renders_header_and_rows() {
        let t = sensor_table();
        let p = t.preview(2);
        assert!(p.starts_with("sensorid | temp | room"));
        assert!(p.contains("..."));
        let full = t.preview(10);
        assert!(!full.contains("..."));
        assert!(full.contains("kitchen"));
    }

    #[test]
    fn identity_survives_clone_but_versions_diverge() {
        let a = sensor_table();
        let other = sensor_table();
        assert_ne!(a.id(), other.id(), "independent tables get distinct identities");

        let mut b = a.clone();
        assert_eq!(a.id(), b.id(), "a clone snapshots the same logical table");
        assert_eq!(a.version(), b.version(), "an unmodified clone holds identical data");

        let mut a = a;
        a.delete_row(RowId(0)).unwrap();
        b.delete_row(RowId(1)).unwrap();
        // Diverged clones must not share a version even though both mutated
        // "once" — versions are drawn from a global counter, not incremented.
        assert_ne!(a.version(), b.version());
    }

    #[test]
    fn every_mutation_bumps_the_version() {
        let mut t = sensor_table();
        let mut last = t.version();
        let mut expect_bump = |t: &Table, what: &str| {
            assert_ne!(t.version(), last, "{what} must re-stamp the version");
            last = t.version();
        };
        t.push_row(vec![Value::Int(4), Value::Float(19.0), Value::str("hall")]).unwrap();
        expect_bump(&t, "push_row");
        t.delete_row(RowId(0)).unwrap();
        expect_bump(&t, "delete_row");
        t.restore_row(RowId(0)).unwrap();
        expect_bump(&t, "restore_row");
        t.delete_rows(&[RowId(1), RowId(2)]).unwrap();
        expect_bump(&t, "delete_rows");
        t.restore_all();
        expect_bump(&t, "restore_all");
        // Read-only accessors and failed mutations leave the version alone.
        let v = t.version();
        let _ = t.row(RowId(0));
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert!(t.delete_row(RowId(99)).is_err());
        assert_eq!(t.version(), v);
        // A no-op delete_rows (all already visible/deleted as-is) does not bump.
        assert_eq!(t.delete_rows(&[]).unwrap(), 0);
        assert_eq!(t.version(), v);
    }

    #[test]
    fn appends_and_structural_mutations_stamp_different_epoch_components() {
        let mut t = sensor_table();
        let e0 = t.epoch();
        t.push_row(vec![Value::Int(4), Value::Float(19.0), Value::str("hall")]).unwrap();
        let e1 = t.epoch();
        assert_eq!(e1.structural, e0.structural, "an append leaves the structural stamp alone");
        assert!(e1.appended > e0.appended, "an append re-stamps the appended component");
        assert!(e1.is_append_descendant_of(e0));
        assert!(!e0.is_append_descendant_of(e1));
        assert!(e0.covers(e1, EpochTolerance::TolerateAppends));
        assert!(!e0.covers(e1, EpochTolerance::Exact));
        assert_eq!(t.version(), e1.appended, "version() is the most recent stamp");

        t.delete_row(RowId(0)).unwrap();
        let e2 = t.epoch();
        assert!(e2.structural > e1.structural, "a delete re-stamps the structural component");
        assert_eq!(e2.appended, e1.appended);
        assert!(!e2.is_append_descendant_of(e1), "a structural change breaks append lineage");
        assert!(!e1.covers(e2, EpochTolerance::TolerateAppends));
        assert!(e2.covers(e2, EpochTolerance::Exact));
        assert_eq!(t.version(), e2.structural);
    }

    #[test]
    fn push_rows_batch_is_all_or_nothing() {
        let mut t = sensor_table();
        let e = t.epoch();
        // Row 1 of the batch is bad: nothing may be applied, no stamp drawn.
        let err = t
            .push_rows(vec![
                vec![Value::Int(4), Value::Float(19.0), Value::str("hall")],
                vec![Value::Int(5), Value::str("oops"), Value::str("hall")],
            ])
            .unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
        assert_eq!(t.num_rows(), 3, "no row of a failing batch is applied");
        assert_eq!(t.epoch(), e, "a failing batch leaves the epoch alone");
        for c in 0..3 {
            assert_eq!(t.column(c).unwrap().len(), 3);
        }

        // A good batch lands under one appended stamp.
        let ids = t
            .push_rows(vec![
                vec![Value::Int(4), Value::Float(19.0), Value::str("hall")],
                vec![Value::Int(5), Value::Float(18.5), Value::str("hall")],
            ])
            .unwrap();
        assert_eq!(ids, vec![RowId(3), RowId(4)]);
        assert_eq!(t.epoch().structural, e.structural);
        assert!(t.epoch().appended > e.appended);
    }

    #[test]
    fn row_id_display_and_conversion() {
        let r: RowId = 7usize.into();
        assert_eq!(r.index(), 7);
        assert_eq!(r.to_string(), "#7");
    }
}

//! Human-readable conjunctive predicates.
//!
//! The Ranked Provenance System returns *predicates* such as
//! `sensorid = 15 AND time BETWEEN 11:00 AND 13:00` (paper §2.1). These are
//! deliberately restricted to conjunctions of per-attribute conditions so
//! they remain compact and interpretable; this module defines that
//! restricted form, its SQL rendering, and its conversion to the general
//! [`Expr`] language for evaluation and query rewriting.

use crate::expr::{col, lit, Expr};
use crate::table::{RowId, Table};
use crate::value::Value;
use std::fmt;

/// A single per-attribute condition inside a [`ConjunctivePredicate`].
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `column = value`
    Equals {
        /// Attribute name.
        column: String,
        /// Value compared against.
        value: Value,
    },
    /// `column <> value`
    NotEquals {
        /// Attribute name.
        column: String,
        /// Value compared against.
        value: Value,
    },
    /// A (possibly half-open) numeric range on `column`.
    ///
    /// Bounds are inclusive when the corresponding flag is set, mirroring
    /// the thresholds produced by decision-tree splits (`<=` / `>`).
    Range {
        /// Attribute name.
        column: String,
        /// Lower bound (`None` = unbounded below).
        low: Option<f64>,
        /// Whether the lower bound itself is included.
        low_inclusive: bool,
        /// Upper bound (`None` = unbounded above).
        high: Option<f64>,
        /// Whether the upper bound itself is included.
        high_inclusive: bool,
    },
    /// `column IN (values...)`
    InSet {
        /// Attribute name.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// Case-insensitive substring containment on a text attribute.
    Contains {
        /// Attribute name.
        column: String,
        /// Substring searched for.
        pattern: String,
    },
}

impl Condition {
    /// Builds an equality condition.
    pub fn equals(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::Equals { column: column.into(), value: value.into() }
    }

    /// Builds an inequality condition.
    pub fn not_equals(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::NotEquals { column: column.into(), value: value.into() }
    }

    /// Builds a `column <= high` condition.
    pub fn at_most(column: impl Into<String>, high: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: None,
            low_inclusive: false,
            high: Some(high),
            high_inclusive: true,
        }
    }

    /// Builds a `column > low` condition.
    pub fn above(column: impl Into<String>, low: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: Some(low),
            low_inclusive: false,
            high: None,
            high_inclusive: false,
        }
    }

    /// Builds a `column >= low` condition.
    pub fn at_least(column: impl Into<String>, low: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: Some(low),
            low_inclusive: true,
            high: None,
            high_inclusive: false,
        }
    }

    /// Builds a closed range `low <= column <= high`.
    pub fn between(column: impl Into<String>, low: f64, high: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: Some(low),
            low_inclusive: true,
            high: Some(high),
            high_inclusive: true,
        }
    }

    /// Builds a set-membership condition.
    pub fn in_set(column: impl Into<String>, values: Vec<Value>) -> Self {
        Condition::InSet { column: column.into(), values }
    }

    /// Builds a substring-containment condition.
    pub fn contains(column: impl Into<String>, pattern: impl Into<String>) -> Self {
        Condition::Contains { column: column.into(), pattern: pattern.into() }
    }

    /// The attribute this condition constrains.
    pub fn column(&self) -> &str {
        match self {
            Condition::Equals { column, .. }
            | Condition::NotEquals { column, .. }
            | Condition::Range { column, .. }
            | Condition::InSet { column, .. }
            | Condition::Contains { column, .. } => column,
        }
    }

    /// Converts the condition into an evaluable [`Expr`].
    pub fn to_expr(&self) -> Expr {
        match self {
            Condition::Equals { column, value } => col(column.clone()).eq(lit(value.clone())),
            Condition::NotEquals { column, value } => {
                col(column.clone()).not_eq(lit(value.clone()))
            }
            Condition::Range { column, low, low_inclusive, high, high_inclusive } => {
                let c = || col(column.clone());
                let mut parts = Vec::new();
                if let Some(lo) = low {
                    parts.push(if *low_inclusive { c().gt_eq(lit(*lo)) } else { c().gt(lit(*lo)) });
                }
                if let Some(hi) = high {
                    parts.push(if *high_inclusive {
                        c().lt_eq(lit(*hi))
                    } else {
                        c().lt(lit(*hi))
                    });
                }
                Expr::conjunction(parts).unwrap_or_else(|| lit(true))
            }
            Condition::InSet { column, values } => {
                col(column.clone()).in_list(values.iter().map(|v| lit(v.clone())).collect())
            }
            Condition::Contains { column, pattern } => {
                col(column.clone()).contains(pattern.clone())
            }
        }
    }

    /// True when `other` can only match rows that this condition also
    /// matches (a conservative check used to drop redundant conditions).
    pub fn subsumes(&self, other: &Condition) -> bool {
        if self.column() != other.column() {
            return false;
        }
        match (self, other) {
            (a, b) if a == b => true,
            (
                Condition::Range { low: l1, high: h1, .. },
                Condition::Range { low: l2, high: h2, .. },
            ) => {
                let low_ok = match (l1, l2) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(a), Some(b)) => a <= b,
                };
                let high_ok = match (h1, h2) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(a), Some(b)) => a >= b,
                };
                low_ok && high_ok
            }
            (Condition::InSet { values, .. }, Condition::Equals { value, .. }) => {
                values.contains(value)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Equals { column, value } => {
                write!(f, "{column} = {}", value.to_sql_literal())
            }
            Condition::NotEquals { column, value } => {
                write!(f, "{column} <> {}", value.to_sql_literal())
            }
            Condition::Range { column, low, low_inclusive, high, high_inclusive } => {
                match (low, high) {
                    (Some(lo), Some(hi)) if *low_inclusive && *high_inclusive => {
                        write!(f, "{column} BETWEEN {lo:.4} AND {hi:.4}")
                    }
                    (Some(lo), Some(hi)) => write!(
                        f,
                        "{column} {} {lo:.4} AND {column} {} {hi:.4}",
                        if *low_inclusive { ">=" } else { ">" },
                        if *high_inclusive { "<=" } else { "<" }
                    ),
                    (Some(lo), None) => {
                        write!(f, "{column} {} {lo:.4}", if *low_inclusive { ">=" } else { ">" })
                    }
                    (None, Some(hi)) => {
                        write!(f, "{column} {} {hi:.4}", if *high_inclusive { "<=" } else { "<" })
                    }
                    (None, None) => write!(f, "{column} IS NOT NULL"),
                }
            }
            Condition::InSet { column, values } => {
                let items: Vec<String> = values.iter().map(|v| v.to_sql_literal()).collect();
                write!(f, "{column} IN ({})", items.join(", "))
            }
            Condition::Contains { column, pattern } => {
                write!(f, "{column} LIKE '%{}%'", pattern.replace('\'', "''"))
            }
        }
    }
}

/// A conjunction of per-attribute [`Condition`]s — the "compact predicate"
/// DBWipes returns to the user.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConjunctivePredicate {
    conditions: Vec<Condition>,
}

impl ConjunctivePredicate {
    /// Creates a predicate from a list of conditions, dropping conditions
    /// made redundant by a more specific condition on the same attribute
    /// (in a conjunction, `temp > 100 AND temp > 120` is just `temp > 120`).
    pub fn new(conditions: Vec<Condition>) -> Self {
        let mut kept: Vec<Condition> = Vec::new();
        'outer: for cond in conditions {
            if kept.contains(&cond) {
                continue;
            }
            // If a kept condition is at least as specific as `cond`
            // (`cond` subsumes it), `cond` adds nothing to the conjunction.
            for k in &kept {
                if cond.subsumes(k) {
                    continue 'outer;
                }
            }
            // Conversely, drop kept conditions that `cond` makes redundant.
            kept.retain(|k| !k.subsumes(&cond));
            kept.push(cond);
        }
        ConjunctivePredicate { conditions: kept }
    }

    /// The always-true predicate (matches every row).
    pub fn always_true() -> Self {
        ConjunctivePredicate { conditions: Vec::new() }
    }

    /// The conditions of the conjunction.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Number of conjuncts — the "complexity" penalised by the Predicate
    /// Ranker (paper §2.2.2).
    pub fn complexity(&self) -> usize {
        self.conditions.len()
    }

    /// True when the predicate has no conditions (matches everything).
    pub fn is_trivial(&self) -> bool {
        self.conditions.is_empty()
    }

    /// The distinct attributes referenced.
    pub fn columns(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.conditions {
            if !out.iter().any(|n| n == c.column()) {
                out.push(c.column().to_string());
            }
        }
        out
    }

    /// Adds a condition, returning the extended predicate.
    pub fn with(&self, condition: Condition) -> Self {
        let mut conds = self.conditions.clone();
        conds.push(condition);
        ConjunctivePredicate::new(conds)
    }

    /// Converts to an evaluable [`Expr`] (the empty predicate becomes `TRUE`).
    pub fn to_expr(&self) -> Expr {
        Expr::conjunction(self.conditions.iter().map(|c| c.to_expr()).collect())
            .unwrap_or_else(|| lit(true))
    }

    /// The exclusion form used by clean-as-you-query: `NOT (predicate)`.
    pub fn to_exclusion_expr(&self) -> Expr {
        self.to_expr().not()
    }

    /// Evaluates the predicate against one row.
    pub fn matches(&self, table: &Table, row: RowId) -> bool {
        self.conditions.iter().all(|c| c.to_expr().matches(table, row).unwrap_or(false))
    }

    /// Returns all visible rows matched by the predicate.
    pub fn matching_rows(&self, table: &Table) -> Vec<RowId> {
        table.visible_row_ids().filter(|&r| self.matches(table, r)).collect()
    }

    /// Fraction of the given rows matched by the predicate (0 when `rows` is
    /// empty).
    pub fn coverage(&self, table: &Table, rows: &[RowId]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let matched = rows.iter().filter(|&&r| self.matches(table, r)).count();
        matched as f64 / rows.len() as f64
    }

    /// Fraction of all visible rows matched — the predicate's selectivity.
    pub fn selectivity(&self, table: &Table) -> f64 {
        let total = table.visible_rows();
        if total == 0 {
            return 0.0;
        }
        self.matching_rows(table).len() as f64 / total as f64
    }
}

impl fmt::Display for ConjunctivePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conditions.is_empty() {
            return f.write_str("TRUE");
        }
        let parts: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
        f.write_str(&parts.join(" AND "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("voltage", DataType::Float),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(15), Value::Float(122.0), Value::Float(2.1), Value::str("ok")],
            vec![Value::Int(15), Value::Float(119.0), Value::Float(2.0), Value::str("ok")],
            vec![Value::Int(3), Value::Float(21.0), Value::Float(2.7), Value::str("ok")],
            vec![
                Value::Int(7),
                Value::Float(22.5),
                Value::Float(2.6),
                Value::str("REATTRIBUTION TO SPOUSE"),
            ],
        ])
        .unwrap();
        t
    }

    #[test]
    fn display_matches_paper_style() {
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::at_least("temp", 100.0),
        ]);
        assert_eq!(p.to_string(), "sensorid = 15 AND temp >= 100.0000");
        assert_eq!(ConjunctivePredicate::always_true().to_string(), "TRUE");
        let c = Condition::between("temp", 10.0, 20.0);
        assert_eq!(c.to_string(), "temp BETWEEN 10.0000 AND 20.0000");
        let c = Condition::contains("memo", "SPOUSE");
        assert_eq!(c.to_string(), "memo LIKE '%SPOUSE%'");
        let c = Condition::in_set("sensorid", vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(c.to_string(), "sensorid IN (1, 2)");
        let c = Condition::not_equals("memo", "ok");
        assert_eq!(c.to_string(), "memo <> 'ok'");
    }

    #[test]
    fn matching_and_coverage() {
        let t = table();
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 120.0),
        ]);
        assert_eq!(p.matching_rows(&t), vec![RowId(0)]);
        assert!((p.selectivity(&t) - 0.25).abs() < 1e-12);
        assert!((p.coverage(&t, &[RowId(0), RowId(1)]) - 0.5).abs() < 1e-12);
        assert_eq!(p.coverage(&t, &[]), 0.0);

        let trivially_true = ConjunctivePredicate::always_true();
        assert!(trivially_true.is_trivial());
        assert_eq!(trivially_true.matching_rows(&t).len(), 4);
    }

    #[test]
    fn exclusion_expr_removes_matches() {
        let t = table();
        let p = ConjunctivePredicate::new(vec![Condition::contains("memo", "spouse")]);
        let keep = p.to_exclusion_expr().filter(&t).unwrap();
        assert_eq!(keep, vec![RowId(0), RowId(1), RowId(2)]);
    }

    #[test]
    fn subsumption_dedup() {
        // temp > 100 subsumes temp > 120 (the latter is more specific), so
        // when both appear the more specific one is kept.
        let p = ConjunctivePredicate::new(vec![
            Condition::above("temp", 100.0),
            Condition::above("temp", 120.0),
        ]);
        assert_eq!(p.complexity(), 1);
        assert_eq!(p.conditions()[0], Condition::above("temp", 120.0));

        // Identical conditions are deduplicated.
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::equals("sensorid", 15),
        ]);
        assert_eq!(p.complexity(), 1);

        // Conditions on different columns are all kept.
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 100.0),
        ]);
        assert_eq!(p.complexity(), 2);
        assert_eq!(p.columns(), vec!["sensorid".to_string(), "temp".to_string()]);
    }

    #[test]
    fn condition_subsumes() {
        assert!(Condition::above("t", 10.0).subsumes(&Condition::above("t", 20.0)));
        assert!(!Condition::above("t", 20.0).subsumes(&Condition::above("t", 10.0)));
        assert!(!Condition::above("t", 10.0).subsumes(&Condition::above("u", 20.0)));
        assert!(Condition::at_most("t", 30.0).subsumes(&Condition::between("t", 0.0, 20.0)));
        assert!(Condition::in_set("c", vec![Value::Int(1), Value::Int(2)])
            .subsumes(&Condition::equals("c", 1)));
        assert!(!Condition::in_set("c", vec![Value::Int(1)]).subsumes(&Condition::equals("c", 7)));
        assert!(Condition::equals("c", 1).subsumes(&Condition::equals("c", 1)));
        assert!(!Condition::equals("c", 1).subsumes(&Condition::equals("c", 2)));
    }

    #[test]
    fn with_extends_predicate() {
        let p = ConjunctivePredicate::always_true()
            .with(Condition::equals("sensorid", 15))
            .with(Condition::at_least("voltage", 2.0));
        assert_eq!(p.complexity(), 2);
        let t = table();
        assert_eq!(p.matching_rows(&t), vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn range_to_expr_handles_open_ends() {
        let t = table();
        assert_eq!(Condition::at_most("temp", 22.0).to_expr().filter(&t).unwrap(), vec![RowId(2)]);
        assert_eq!(
            Condition::at_least("temp", 119.0).to_expr().filter(&t).unwrap(),
            vec![RowId(0), RowId(1)]
        );
        let unbounded = Condition::Range {
            column: "temp".into(),
            low: None,
            low_inclusive: false,
            high: None,
            high_inclusive: false,
        };
        assert_eq!(unbounded.to_expr().filter(&t).unwrap().len(), 4);
        assert_eq!(unbounded.to_string(), "temp IS NOT NULL");
    }
}

//! Human-readable conjunctive predicates.
//!
//! The Ranked Provenance System returns *predicates* such as
//! `sensorid = 15 AND time BETWEEN 11:00 AND 13:00` (paper §2.1). These are
//! deliberately restricted to conjunctions of per-attribute conditions so
//! they remain compact and interpretable; this module defines that
//! restricted form, its SQL rendering, and its conversion to the general
//! [`Expr`] language for evaluation and query rewriting.

use crate::column::{Column, ColumnData};
use crate::error::StorageError;
use crate::expr::{col, lit, BinaryOp, Expr, UnaryOp};
use crate::rowset::RowSet;
use crate::table::{EpochTolerance, RowId, Table, TableEpoch};
use crate::value::{DataType, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, OnceLock};

/// A single per-attribute condition inside a [`ConjunctivePredicate`].
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `column = value`
    Equals {
        /// Attribute name.
        column: String,
        /// Value compared against.
        value: Value,
    },
    /// `column <> value`
    NotEquals {
        /// Attribute name.
        column: String,
        /// Value compared against.
        value: Value,
    },
    /// A (possibly half-open) numeric range on `column`.
    ///
    /// Bounds are inclusive when the corresponding flag is set, mirroring
    /// the thresholds produced by decision-tree splits (`<=` / `>`).
    Range {
        /// Attribute name.
        column: String,
        /// Lower bound (`None` = unbounded below).
        low: Option<f64>,
        /// Whether the lower bound itself is included.
        low_inclusive: bool,
        /// Upper bound (`None` = unbounded above).
        high: Option<f64>,
        /// Whether the upper bound itself is included.
        high_inclusive: bool,
    },
    /// `column IN (values...)`
    InSet {
        /// Attribute name.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// Case-insensitive substring containment on a text attribute.
    Contains {
        /// Attribute name.
        column: String,
        /// Substring searched for.
        pattern: String,
    },
}

impl Condition {
    /// Builds an equality condition.
    pub fn equals(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::Equals { column: column.into(), value: value.into() }
    }

    /// Builds an inequality condition.
    pub fn not_equals(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::NotEquals { column: column.into(), value: value.into() }
    }

    /// Builds a `column <= high` condition.
    pub fn at_most(column: impl Into<String>, high: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: None,
            low_inclusive: false,
            high: Some(high),
            high_inclusive: true,
        }
    }

    /// Builds a `column > low` condition.
    pub fn above(column: impl Into<String>, low: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: Some(low),
            low_inclusive: false,
            high: None,
            high_inclusive: false,
        }
    }

    /// Builds a `column >= low` condition.
    pub fn at_least(column: impl Into<String>, low: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: Some(low),
            low_inclusive: true,
            high: None,
            high_inclusive: false,
        }
    }

    /// Builds a closed range `low <= column <= high`.
    pub fn between(column: impl Into<String>, low: f64, high: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: Some(low),
            low_inclusive: true,
            high: Some(high),
            high_inclusive: true,
        }
    }

    /// Builds a set-membership condition.
    pub fn in_set(column: impl Into<String>, values: Vec<Value>) -> Self {
        Condition::InSet { column: column.into(), values }
    }

    /// Builds a substring-containment condition.
    pub fn contains(column: impl Into<String>, pattern: impl Into<String>) -> Self {
        Condition::Contains { column: column.into(), pattern: pattern.into() }
    }

    /// An exact canonical key for caching this condition's evaluation
    /// result. Unlike [`Condition`]'s `Display` form (which rounds range
    /// bounds to four decimals for readability), the key renders values via
    /// `Debug`, whose float formatting is round-trip precise — two
    /// conditions share a key if and only if they are structurally equal.
    pub fn cache_key(&self) -> String {
        format!("{self:?}")
    }

    /// True when the typed columnar compiler can express this condition
    /// against `table`'s schema — i.e. the vectorized kernel path applies.
    /// When `false`, evaluation falls back to the scalar expression walk
    /// (and [`ConditionBitmapCache::condition`] returns `None`).
    ///
    /// Expressibility depends only on the schema and the condition, so the
    /// answer is identical for every shard of one table.
    pub fn vectorizable(&self, table: &Table) -> bool {
        CompiledCondition::compile(self, table).is_ok()
    }

    /// The attribute this condition constrains.
    pub fn column(&self) -> &str {
        match self {
            Condition::Equals { column, .. }
            | Condition::NotEquals { column, .. }
            | Condition::Range { column, .. }
            | Condition::InSet { column, .. }
            | Condition::Contains { column, .. } => column,
        }
    }

    /// Converts the condition into an evaluable [`Expr`].
    pub fn to_expr(&self) -> Expr {
        match self {
            Condition::Equals { column, value } => col(column.clone()).eq(lit(value.clone())),
            Condition::NotEquals { column, value } => {
                col(column.clone()).not_eq(lit(value.clone()))
            }
            Condition::Range { column, low, low_inclusive, high, high_inclusive } => {
                let c = || col(column.clone());
                let mut parts = Vec::new();
                if let Some(lo) = low {
                    parts.push(if *low_inclusive { c().gt_eq(lit(*lo)) } else { c().gt(lit(*lo)) });
                }
                if let Some(hi) = high {
                    parts.push(if *high_inclusive {
                        c().lt_eq(lit(*hi))
                    } else {
                        c().lt(lit(*hi))
                    });
                }
                Expr::conjunction(parts).unwrap_or_else(|| lit(true))
            }
            Condition::InSet { column, values } => {
                col(column.clone()).in_list(values.iter().map(|v| lit(v.clone())).collect())
            }
            Condition::Contains { column, pattern } => {
                col(column.clone()).contains(pattern.clone())
            }
        }
    }

    /// True when `other` can only match rows that this condition also
    /// matches (a conservative check used to drop redundant conditions).
    pub fn subsumes(&self, other: &Condition) -> bool {
        if self.column() != other.column() {
            return false;
        }
        match (self, other) {
            (a, b) if a == b => true,
            (
                Condition::Range { low: l1, high: h1, .. },
                Condition::Range { low: l2, high: h2, .. },
            ) => {
                let low_ok = match (l1, l2) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(a), Some(b)) => a <= b,
                };
                let high_ok = match (h1, h2) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(a), Some(b)) => a >= b,
                };
                low_ok && high_ok
            }
            (Condition::InSet { values, .. }, Condition::Equals { value, .. }) => {
                values.contains(value)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Equals { column, value } => {
                write!(f, "{column} = {}", value.to_sql_literal())
            }
            Condition::NotEquals { column, value } => {
                write!(f, "{column} <> {}", value.to_sql_literal())
            }
            Condition::Range { column, low, low_inclusive, high, high_inclusive } => {
                match (low, high) {
                    (Some(lo), Some(hi)) if *low_inclusive && *high_inclusive => {
                        write!(f, "{column} BETWEEN {lo:.4} AND {hi:.4}")
                    }
                    (Some(lo), Some(hi)) => write!(
                        f,
                        "{column} {} {lo:.4} AND {column} {} {hi:.4}",
                        if *low_inclusive { ">=" } else { ">" },
                        if *high_inclusive { "<=" } else { "<" }
                    ),
                    (Some(lo), None) => {
                        write!(f, "{column} {} {lo:.4}", if *low_inclusive { ">=" } else { ">" })
                    }
                    (None, Some(hi)) => {
                        write!(f, "{column} {} {hi:.4}", if *high_inclusive { "<=" } else { "<" })
                    }
                    (None, None) => write!(f, "{column} IS NOT NULL"),
                }
            }
            Condition::InSet { column, values } => {
                let items: Vec<String> = values.iter().map(|v| v.to_sql_literal()).collect();
                write!(f, "{column} IN ({})", items.join(", "))
            }
            Condition::Contains { column, pattern } => {
                write!(f, "{column} LIKE '%{}%'", pattern.replace('\'', "''"))
            }
        }
    }
}

/// A conjunction of per-attribute [`Condition`]s — the "compact predicate"
/// DBWipes returns to the user.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConjunctivePredicate {
    conditions: Vec<Condition>,
}

impl ConjunctivePredicate {
    /// Creates a predicate from a list of conditions, dropping conditions
    /// made redundant by a more specific condition on the same attribute
    /// (in a conjunction, `temp > 100 AND temp > 120` is just `temp > 120`).
    pub fn new(conditions: Vec<Condition>) -> Self {
        let mut kept: Vec<Condition> = Vec::new();
        'outer: for cond in conditions {
            if kept.contains(&cond) {
                continue;
            }
            // If a kept condition is at least as specific as `cond`
            // (`cond` subsumes it), `cond` adds nothing to the conjunction.
            for k in &kept {
                if cond.subsumes(k) {
                    continue 'outer;
                }
            }
            // Conversely, drop kept conditions that `cond` makes redundant.
            kept.retain(|k| !k.subsumes(&cond));
            kept.push(cond);
        }
        ConjunctivePredicate { conditions: kept }
    }

    /// The always-true predicate (matches every row).
    pub fn always_true() -> Self {
        ConjunctivePredicate { conditions: Vec::new() }
    }

    /// The conditions of the conjunction.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Number of conjuncts — the "complexity" penalised by the Predicate
    /// Ranker (paper §2.2.2).
    pub fn complexity(&self) -> usize {
        self.conditions.len()
    }

    /// True when the predicate has no conditions (matches everything).
    pub fn is_trivial(&self) -> bool {
        self.conditions.is_empty()
    }

    /// The distinct attributes referenced.
    pub fn columns(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.conditions {
            if !out.iter().any(|n| n == c.column()) {
                out.push(c.column().to_string());
            }
        }
        out
    }

    /// Adds a condition, returning the extended predicate.
    pub fn with(&self, condition: Condition) -> Self {
        let mut conds = self.conditions.clone();
        conds.push(condition);
        ConjunctivePredicate::new(conds)
    }

    /// A canonical form for deduplication: the rendered conditions, sorted.
    /// Conjunction is commutative, so `a AND b` and `b AND a` describe the
    /// same tuple set and share a key — unlike `to_string()`, which keeps
    /// the original conjunct order.
    pub fn canonical_key(&self) -> String {
        let mut parts: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
        parts.sort_unstable();
        parts.join(" AND ")
    }

    /// Converts to an evaluable [`Expr`] (the empty predicate becomes `TRUE`).
    pub fn to_expr(&self) -> Expr {
        Expr::conjunction(self.conditions.iter().map(|c| c.to_expr()).collect())
            .unwrap_or_else(|| lit(true))
    }

    /// The exclusion form used by clean-as-you-query: `NOT (predicate)`.
    pub fn to_exclusion_expr(&self) -> Expr {
        !self.to_expr()
    }

    /// Evaluates the predicate against one row.
    pub fn matches(&self, table: &Table, row: RowId) -> bool {
        self.conditions.iter().all(|c| c.to_expr().matches(table, row).unwrap_or(false))
    }

    /// Compiles the predicate against a table: column indices are resolved
    /// and literals coerced once, so per-row evaluation is allocation-free
    /// typed comparisons instead of a recursive [`Expr`] walk. Fails when a
    /// condition's types do not line up with the schema (the same cases
    /// where [`Expr::validate`] or evaluation would fail); callers fall
    /// back to the expression path then.
    pub fn compile<'t>(&self, table: &'t Table) -> Result<CompiledPredicate<'t>, StorageError> {
        let conds = self
            .conditions
            .iter()
            .map(|c| CompiledCondition::compile(c, table))
            .collect::<Result<_, _>>()?;
        Ok(CompiledPredicate { conds, num_rows: table.num_rows() })
    }

    /// Returns all visible rows matched by the predicate, in ascending
    /// [`RowId`] order. Uses the vectorized column kernels when every
    /// condition compiles; otherwise falls back to the per-row expression
    /// walk.
    pub fn matching_rows(&self, table: &Table) -> Vec<RowId> {
        if let Ok(compiled) = self.compile(table) {
            return compiled.eval_columns().trues.and(&table.visible_row_set()).to_row_ids();
        }
        table.visible_row_ids().filter(|&r| self.matches(table, r)).collect()
    }

    /// Fraction of the given rows matched by the predicate (0 when `rows` is
    /// empty). Counts matches directly — no row list is materialized.
    pub fn coverage(&self, table: &Table, rows: &[RowId]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let matched = match self.compile(table) {
            Ok(compiled) => rows.iter().filter(|r| compiled.matches(**r) == Some(true)).count(),
            Err(_) => rows.iter().filter(|&&r| self.matches(table, r)).count(),
        };
        matched as f64 / rows.len() as f64
    }

    /// Fraction of all visible rows matched — the predicate's selectivity.
    /// A popcount over the match bitmap — no row list is materialized.
    pub fn selectivity(&self, table: &Table) -> f64 {
        let total = table.visible_rows();
        if total == 0 {
            return 0.0;
        }
        let matched = match self.compile(table) {
            Ok(compiled) => {
                compiled.eval_columns().trues.intersection_count(&table.visible_row_set())
            }
            Err(_) => table.visible_row_ids().filter(|&r| self.matches(table, r)).count(),
        };
        matched as f64 / total as f64
    }

    /// Recovers a [`ConjunctivePredicate`] from an [`Expr`] that is a pure
    /// conjunction of per-attribute comparisons against literals — the
    /// inverse of [`ConjunctivePredicate::to_expr`] for the shapes the
    /// engine's WHERE clauses and the enumerator's predicates take. Returns
    /// `None` for any construct outside that fragment (disjunction,
    /// negation, arithmetic, column-to-column comparison, `NOT IN`, string
    /// order comparisons), in which case callers keep the scalar
    /// expression walk.
    pub fn from_conjunctive_expr(expr: &Expr) -> Option<ConjunctivePredicate> {
        let mut conds = Vec::new();
        collect_conjuncts(expr, &mut conds)?;
        Some(ConjunctivePredicate::new(conds))
    }
}

/// See [`ConjunctivePredicate::from_conjunctive_expr`].
fn collect_conjuncts(expr: &Expr, out: &mut Vec<Condition>) -> Option<()> {
    match expr {
        Expr::Binary { op: BinaryOp::And, left, right } => {
            collect_conjuncts(left, out)?;
            collect_conjuncts(right, out)
        }
        _ => {
            out.push(leaf_condition(expr)?);
            Some(())
        }
    }
}

/// Recognizes one per-attribute comparison leaf (`column <op> literal`,
/// `BETWEEN`, `IN`, `CONTAINS`) as a [`Condition`] — the shared leaf
/// grammar of [`ConjunctivePredicate::from_conjunctive_expr`] and
/// [`CompiledBoolExpr::compile`]. Returns `None` for anything outside that
/// fragment (arithmetic, column-to-column comparison, `NOT IN`, string
/// order comparisons, boolean connectives).
fn leaf_condition(expr: &Expr) -> Option<Condition> {
    /// A numeric bound usable in a [`Condition::Range`] (bools and strings
    /// order-compare through their own paths, which the range kernel does
    /// not implement).
    fn numeric_bound(v: &Value) -> Option<f64> {
        match v {
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => v.as_f64(),
            _ => None,
        }
    }
    match expr {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            // Normalize to `column <op> literal`, mirroring the operator
            // when the literal is on the left.
            let (column, value, op) = match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) => (c, v, *op),
                (Expr::Literal(v), Expr::Column(c)) => {
                    let flipped = match *op {
                        BinaryOp::Lt => BinaryOp::Gt,
                        BinaryOp::LtEq => BinaryOp::GtEq,
                        BinaryOp::Gt => BinaryOp::Lt,
                        BinaryOp::GtEq => BinaryOp::LtEq,
                        other => other,
                    };
                    (c, v, flipped)
                }
                _ => return None,
            };
            let cond = match op {
                BinaryOp::Eq => Condition::equals(column.clone(), value.clone()),
                BinaryOp::NotEq => Condition::not_equals(column.clone(), value.clone()),
                BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                    let bound = numeric_bound(value)?;
                    let (low, high) = match op {
                        BinaryOp::Gt | BinaryOp::GtEq => (Some(bound), None),
                        _ => (None, Some(bound)),
                    };
                    Condition::Range {
                        column: column.clone(),
                        low,
                        low_inclusive: op == BinaryOp::GtEq,
                        high,
                        high_inclusive: op == BinaryOp::LtEq,
                    }
                }
                _ => return None,
            };
            Some(cond)
        }
        Expr::Between { expr, low, high } => {
            let (Expr::Column(c), Expr::Literal(lo), Expr::Literal(hi)) =
                (&**expr, &**low, &**high)
            else {
                return None;
            };
            Some(Condition::between(c.clone(), numeric_bound(lo)?, numeric_bound(hi)?))
        }
        Expr::InList { expr, list, negated: false } => {
            let Expr::Column(c) = &**expr else { return None };
            let values = list
                .iter()
                .map(|e| match e {
                    Expr::Literal(v) => Some(v.clone()),
                    _ => None,
                })
                .collect::<Option<Vec<Value>>>()?;
            Some(Condition::in_set(c.clone(), values))
        }
        Expr::Contains { expr, pattern } => {
            let Expr::Column(c) = &**expr else { return None };
            Some(Condition::contains(c.clone(), pattern.clone()))
        }
        _ => None,
    }
}

impl fmt::Display for ConjunctivePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conditions.is_empty() {
            return f.write_str("TRUE");
        }
        let parts: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
        f.write_str(&parts.join(" AND "))
    }
}

/// An arbitrary boolean combination of [`ConjunctivePredicate`]s — the
/// predicate-tree shape produced by OR-ing decision-tree leaf rules
/// together or negating a learned description. Where the conjunctive form
/// is the paper's "compact predicate", trees are what the broader cleaning
/// workloads (probabilistic cleaning, denial-constraint repair) emit, and
/// the whole vectorized stack — [`CompiledBoolExpr`], the
/// [`ConditionBitmapCache`], the sharded zone-map pruner — scores them
/// through bitmaps rather than per-row walks.
#[derive(Debug, Clone, PartialEq)]
pub enum PredicateTree {
    /// A conjunction leaf (possibly the trivial always-true one).
    Leaf(ConjunctivePredicate),
    /// Every branch must match; the empty `And` matches every row.
    And(Vec<PredicateTree>),
    /// Any branch matching keeps the row; the empty `Or` matches no row.
    Or(Vec<PredicateTree>),
    /// Kleene negation of the child (`NOT UNKNOWN = UNKNOWN`).
    Not(Box<PredicateTree>),
}

impl From<ConjunctivePredicate> for PredicateTree {
    fn from(p: ConjunctivePredicate) -> PredicateTree {
        PredicateTree::Leaf(p)
    }
}

impl PredicateTree {
    /// OR of conjunctions — the union of several decision-tree leaf rules.
    pub fn any_of(predicates: Vec<ConjunctivePredicate>) -> PredicateTree {
        PredicateTree::Or(predicates.into_iter().map(PredicateTree::Leaf).collect())
    }

    /// The negation of a conjunction.
    pub fn negation(predicate: ConjunctivePredicate) -> PredicateTree {
        PredicateTree::Not(Box::new(PredicateTree::Leaf(predicate)))
    }

    /// Collects the distinct leaf conditions of the tree (by
    /// [`Condition::cache_key`]), in first-appearance order — the set a
    /// bitmap cache warms once regardless of how often each condition
    /// recurs in the tree.
    pub fn distinct_conditions(&self) -> Vec<Condition> {
        let mut seen: HashMap<String, ()> = HashMap::new();
        let mut out = Vec::new();
        self.collect_conditions(&mut seen, &mut out);
        out
    }

    fn collect_conditions(&self, seen: &mut HashMap<String, ()>, out: &mut Vec<Condition>) {
        match self {
            PredicateTree::Leaf(p) => {
                for c in p.conditions() {
                    if seen.insert(c.cache_key(), ()).is_none() {
                        out.push(c.clone());
                    }
                }
            }
            PredicateTree::And(bs) | PredicateTree::Or(bs) => {
                for b in bs {
                    b.collect_conditions(seen, out);
                }
            }
            PredicateTree::Not(b) => b.collect_conditions(seen, out),
        }
    }
}

impl fmt::Display for PredicateTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn branch(t: &PredicateTree) -> String {
            match t {
                PredicateTree::Leaf(p) if p.complexity() <= 1 => p.to_string(),
                other => format!("({other})"),
            }
        }
        match self {
            PredicateTree::Leaf(p) => fmt::Display::fmt(p, f),
            PredicateTree::And(bs) if bs.is_empty() => f.write_str("TRUE"),
            PredicateTree::Or(bs) if bs.is_empty() => f.write_str("FALSE"),
            PredicateTree::And(bs) => {
                f.write_str(&bs.iter().map(branch).collect::<Vec<_>>().join(" AND "))
            }
            PredicateTree::Or(bs) => {
                f.write_str(&bs.iter().map(branch).collect::<Vec<_>>().join(" OR "))
            }
            PredicateTree::Not(b) => write!(f, "NOT {}", branch(b)),
        }
    }
}

/// What the Predicate Ranker needs from a scoreable candidate, satisfied
/// by both the classic [`ConjunctivePredicate`] and the general
/// [`PredicateTree`]. The two evaluation entry points keep every candidate
/// shape on the popcount path: `tri_eval` folds cached per-condition
/// bitmaps, and `tri_eval_pruned` additionally substitutes an all-FALSE
/// bitmap for every leaf a zone map proved empty on the shard at hand —
/// exact, not approximate, because a pruned leaf's kernel is *guaranteed*
/// to produce the empty [`TriSet`] (so `NOT leaf` correctly folds to
/// all-TRUE, and an `OR` only empties when every branch does).
pub trait Candidate: fmt::Display + Clone + Send + Sync {
    /// Canonical dedup key: commutative renderings share one key.
    fn canonical_key(&self) -> String;
    /// Condition-count complexity penalised by the ranker (a negation
    /// counts one extra unit).
    fn complexity(&self) -> usize;
    /// Degenerate candidates the ranker refuses to score (provably
    /// matching every row, or no row at all).
    fn is_trivial(&self) -> bool;
    /// The evaluable expression form (also the scalar-oracle input).
    fn to_expr(&self) -> Expr;
    /// Distinct leaf conditions, for bitmap-cache warm-up and adaptive
    /// shard-column choice.
    fn leaf_conditions(&self) -> Vec<Condition>;
    /// True when every leaf compiles against `table`'s schema, i.e. the
    /// whole candidate evaluates through columnar kernels.
    fn vectorizable(&self, table: &Table) -> bool;
    /// Vectorized three-valued evaluation through the bitmap cache;
    /// `None` falls back to the scalar walk.
    fn tri_eval(&self, cache: &ConditionBitmapCache, table: &Table) -> Option<TriSet>;
    /// [`Candidate::tri_eval`] with zone-map pruning: leaves for which
    /// `live` returns `false` skip their kernel and contribute all-FALSE.
    /// Callers must only pass `live` functions backed by a sound pruning
    /// oracle (`ShardedTable::condition_may_match`).
    fn tri_eval_pruned(
        &self,
        cache: &ConditionBitmapCache,
        table: &Table,
        live: &dyn Fn(&Condition) -> bool,
    ) -> Option<TriSet>;
}

impl Candidate for ConjunctivePredicate {
    fn canonical_key(&self) -> String {
        ConjunctivePredicate::canonical_key(self)
    }

    fn complexity(&self) -> usize {
        ConjunctivePredicate::complexity(self)
    }

    fn is_trivial(&self) -> bool {
        ConjunctivePredicate::is_trivial(self)
    }

    fn to_expr(&self) -> Expr {
        ConjunctivePredicate::to_expr(self)
    }

    fn leaf_conditions(&self) -> Vec<Condition> {
        self.conditions().to_vec()
    }

    fn vectorizable(&self, table: &Table) -> bool {
        self.conditions().iter().all(|c| c.vectorizable(table))
    }

    fn tri_eval(&self, cache: &ConditionBitmapCache, table: &Table) -> Option<TriSet> {
        cache.conjunction(table, self)
    }

    fn tri_eval_pruned(
        &self,
        cache: &ConditionBitmapCache,
        table: &Table,
        live: &dyn Fn(&Condition) -> bool,
    ) -> Option<TriSet> {
        // Any pruned conjunct empties the whole conjunction: skip every
        // kernel on this shard.
        if self.conditions().iter().any(|c| !live(c)) {
            return Some(TriSet::all_false(table.num_rows()));
        }
        cache.conjunction(table, self)
    }
}

impl Candidate for PredicateTree {
    fn canonical_key(&self) -> String {
        match self {
            PredicateTree::Leaf(p) => p.canonical_key(),
            PredicateTree::And(bs) if bs.is_empty() => "TRUE".to_string(),
            PredicateTree::Or(bs) if bs.is_empty() => "FALSE".to_string(),
            PredicateTree::And(bs) | PredicateTree::Or(bs) => {
                let mut keys: Vec<String> =
                    bs.iter().map(|b| format!("({})", Candidate::canonical_key(b))).collect();
                keys.sort_unstable();
                let sep = if matches!(self, PredicateTree::And(_)) { " AND " } else { " OR " };
                keys.join(sep)
            }
            PredicateTree::Not(b) => format!("NOT ({})", Candidate::canonical_key(&**b)),
        }
    }

    fn complexity(&self) -> usize {
        match self {
            PredicateTree::Leaf(p) => p.complexity(),
            PredicateTree::And(bs) | PredicateTree::Or(bs) => {
                bs.iter().map(Candidate::complexity).sum()
            }
            PredicateTree::Not(b) => 1 + Candidate::complexity(&**b),
        }
    }

    fn is_trivial(&self) -> bool {
        match self {
            PredicateTree::Leaf(p) => p.is_trivial(),
            // The empty AND matches every row; an AND of trivial branches
            // does too.
            PredicateTree::And(bs) => bs.iter().all(Candidate::is_trivial),
            // The empty OR matches no row (equally useless); any trivial
            // branch makes the OR match everything.
            PredicateTree::Or(bs) => bs.is_empty() || bs.iter().any(Candidate::is_trivial),
            // NOT of an everything-matcher provably matches nothing.
            PredicateTree::Not(b) => Candidate::is_trivial(&**b),
        }
    }

    fn to_expr(&self) -> Expr {
        match self {
            PredicateTree::Leaf(p) => p.to_expr(),
            PredicateTree::And(bs) => bs
                .iter()
                .map(Candidate::to_expr)
                .reduce(|a, b| a.and(b))
                .unwrap_or_else(|| lit(true)),
            PredicateTree::Or(bs) => bs
                .iter()
                .map(Candidate::to_expr)
                .reduce(|a, b| a.or(b))
                .unwrap_or_else(|| lit(false)),
            PredicateTree::Not(b) => !Candidate::to_expr(&**b),
        }
    }

    fn leaf_conditions(&self) -> Vec<Condition> {
        self.distinct_conditions()
    }

    fn vectorizable(&self, table: &Table) -> bool {
        CompiledBoolExpr::compile(&Candidate::to_expr(self), table).is_ok()
    }

    fn tri_eval(&self, cache: &ConditionBitmapCache, table: &Table) -> Option<TriSet> {
        cache.bool_expr(table, &Candidate::to_expr(self))
    }

    fn tri_eval_pruned(
        &self,
        cache: &ConditionBitmapCache,
        table: &Table,
        live: &dyn Fn(&Condition) -> bool,
    ) -> Option<TriSet> {
        let compiled = CompiledBoolExpr::compile(&Candidate::to_expr(self), table).ok()?;
        let leaves: Vec<Arc<TriSet>> = compiled
            .leaf_conditions()
            .iter()
            .map(|c| {
                if live(c) {
                    cache.condition(table, c)
                } else {
                    Some(Arc::new(TriSet::all_false(table.num_rows())))
                }
            })
            .collect::<Option<_>>()?;
        Some(compiled.combine(&leaves))
    }
}

/// A [`ConjunctivePredicate`] compiled against one table (see
/// [`ConjunctivePredicate::compile`]). Evaluation implements the same SQL
/// three-valued logic as the predicate's [`Expr`] form, bit-for-bit: value
/// comparisons go through `f64::total_cmp` exactly like
/// [`Value::total_cmp`], and a NULL operand yields unknown (`None`).
#[derive(Debug, Clone)]
pub struct CompiledPredicate<'t> {
    conds: Vec<CompiledCondition<'t>>,
    /// Physical row count of the table the predicate was compiled against
    /// (the universe of the bitmap path).
    num_rows: usize,
}

impl CompiledPredicate<'_> {
    /// Three-valued evaluation of the conjunction on one row:
    /// `Some(true)` / `Some(false)` / `None` (= SQL NULL, unknown). The
    /// trivial predicate is `TRUE` everywhere, matching its `Expr` form.
    pub fn matches(&self, row: RowId) -> Option<bool> {
        let mut saw_null = false;
        for c in &self.conds {
            match c.eval(row.index()) {
                Some(false) => return Some(false),
                None => saw_null = true,
                Some(true) => {}
            }
        }
        if saw_null {
            None
        } else {
            Some(true)
        }
    }

    /// Vectorized three-valued evaluation of the conjunction over **every
    /// physical row** of the table (soft-deleted rows included — intersect
    /// with [`Table::visible_row_set`] to restrict to visible rows). Each
    /// condition scans its typed column slice in one tight loop and the
    /// per-condition bitmaps are intersected, so the result is identical,
    /// row for row, to calling [`CompiledPredicate::matches`] in a loop.
    ///
    /// Conjunctions short-circuit columnar-style: once the surviving
    /// (TRUE-or-NULL) set drops below a quarter of the table, the
    /// remaining conditions evaluate per surviving row instead of
    /// re-scanning whole columns — the selection-vector trick, so a
    /// selective leading conjunct makes the rest nearly free.
    pub fn eval_columns(&self) -> TriSet {
        let n = self.num_rows;
        let Some((first, rest)) = self.conds.split_first() else {
            return TriSet { trues: RowSet::full(n), unknowns: RowSet::empty(n) };
        };
        let mut acc = first.eval_column(n);
        for cond in rest {
            let pass = acc.passes_or_unknown();
            if pass.count_ones() * 4 < n {
                // Sparse: evaluate only the rows still in play.
                let mut trues = RowSet::empty(n);
                let mut unknowns = RowSet::empty(n);
                for i in pass.iter() {
                    match cond.eval(i) {
                        Some(true) => {
                            if acc.trues.contains(i) {
                                trues.insert(i);
                            } else {
                                unknowns.insert(i);
                            }
                        }
                        None => unknowns.insert(i),
                        Some(false) => {}
                    }
                }
                acc = TriSet { trues, unknowns };
            } else {
                let tri = cond.eval_column(n);
                let new_pass = pass.and(&tri.passes_or_unknown());
                let trues = acc.trues.and(&tri.trues);
                acc = TriSet { unknowns: new_pass.and_not(&trues), trues };
            }
        }
        acc
    }
}

/// The three-valued result of evaluating a condition (or a conjunction)
/// over every physical row of one table, as a pair of bitmaps: the rows
/// where it is TRUE and the rows where it is NULL (unknown). Every other
/// row is FALSE.
#[derive(Debug, Clone)]
pub struct TriSet {
    /// Rows where the evaluation is TRUE.
    pub trues: RowSet,
    /// Rows where the evaluation is NULL.
    pub unknowns: RowSet,
}

impl TriSet {
    /// The everywhere-TRUE result over the universe `0..len`.
    pub fn all_true(len: usize) -> TriSet {
        TriSet { trues: RowSet::full(len), unknowns: RowSet::empty(len) }
    }

    /// The everywhere-FALSE result over the universe `0..len`.
    pub fn all_false(len: usize) -> TriSet {
        TriSet { trues: RowSet::empty(len), unknowns: RowSet::empty(len) }
    }

    /// The everywhere-NULL result over the universe `0..len`.
    pub fn all_unknown(len: usize) -> TriSet {
        TriSet { trues: RowSet::empty(len), unknowns: RowSet::full(len) }
    }

    /// The universe size shared by both bitmaps.
    pub fn universe(&self) -> usize {
        self.trues.universe()
    }

    /// Rows where the evaluation is TRUE *or* NULL — exactly the rows an
    /// `AND NOT (predicate)` rewrite would drop from a WHERE clause.
    pub fn passes_or_unknown(&self) -> RowSet {
        self.trues.or(&self.unknowns)
    }

    /// The three-valued result of this row's evaluation (`None` = NULL).
    pub fn value(&self, row: usize) -> Option<bool> {
        if self.trues.contains(row) {
            Some(true)
        } else if self.unknowns.contains(row) {
            None
        } else {
            Some(false)
        }
    }
}

/// Word-level Kleene `AND`: TRUE where both sides are TRUE, FALSE where
/// either side is FALSE, NULL otherwise.
impl std::ops::BitAnd for &TriSet {
    type Output = TriSet;

    fn bitand(self, rhs: &TriSet) -> TriSet {
        let trues = self.trues.and(&rhs.trues);
        let pass = self.passes_or_unknown().and(&rhs.passes_or_unknown());
        TriSet { unknowns: pass.and_not(&trues), trues }
    }
}

/// Word-level Kleene `OR`: TRUE where either side is TRUE (so
/// `UNKNOWN OR TRUE = TRUE`), FALSE where both sides are FALSE, NULL
/// otherwise.
impl std::ops::BitOr for &TriSet {
    type Output = TriSet;

    fn bitor(self, rhs: &TriSet) -> TriSet {
        let trues = self.trues.or(&rhs.trues);
        let unknowns = self.unknowns.or(&rhs.unknowns).and_not(&trues);
        TriSet { trues, unknowns }
    }
}

/// Word-level Kleene `NOT`: swaps TRUE and FALSE, keeps NULL in place
/// (`NOT UNKNOWN = UNKNOWN`).
impl std::ops::Not for &TriSet {
    type Output = TriSet;

    fn not(self) -> TriSet {
        TriSet { trues: self.passes_or_unknown().complement(), unknowns: self.unknowns.clone() }
    }
}

/// An arbitrary boolean [`Expr`] tree compiled against one table for
/// vectorized evaluation — the generalization of [`CompiledPredicate`]
/// beyond conjunctions. `AND` / `OR` / `NOT` nodes become word-level
/// [`TriSet`] operations; leaves are the per-attribute conditions of the
/// conjunctive fragment, deduplicated so a condition appearing several
/// times in the tree (or served by a [`ConditionBitmapCache`]) is scanned
/// once. Evaluation is bit-identical to the scalar three-valued walk of
/// [`Expr::eval`].
///
/// Compilation fails for any construct the kernels cannot express —
/// arithmetic, column-to-column comparisons, `IS NULL` / `IS NOT NULL`,
/// string order comparisons, bare boolean columns, mistyped literals —
/// and callers fall back to the scalar walk. A successful compile also
/// guarantees the scalar walk cannot error on any row, so the vectorized
/// result needs no per-row error channel.
#[derive(Debug, Clone)]
pub struct CompiledBoolExpr<'t> {
    root: BoolNode,
    /// Distinct leaf conditions in first-appearance order.
    conditions: Vec<Condition>,
    /// Typed kernels, parallel to `conditions`.
    compiled: Vec<CompiledCondition<'t>>,
    num_rows: usize,
}

/// One node of a compiled boolean tree; leaves index into the
/// deduplicated condition list.
#[derive(Debug, Clone)]
enum BoolNode {
    Leaf(usize),
    Not(Box<BoolNode>),
    And(Box<BoolNode>, Box<BoolNode>),
    Or(Box<BoolNode>, Box<BoolNode>),
    /// A boolean (or NULL) literal in logical position.
    Const(Option<bool>),
}

impl<'t> CompiledBoolExpr<'t> {
    /// Compiles a boolean expression tree against `table`, resolving and
    /// type-checking every leaf once. Fails where the typed kernels cannot
    /// reproduce the scalar walk (callers keep the scalar path then).
    pub fn compile(expr: &Expr, table: &'t Table) -> Result<Self, StorageError> {
        let mut out = CompiledBoolExpr {
            root: BoolNode::Const(Some(false)),
            conditions: Vec::new(),
            compiled: Vec::new(),
            num_rows: table.num_rows(),
        };
        let mut keys: HashMap<String, usize> = HashMap::new();
        out.root = out.build(expr, table, &mut keys)?;
        Ok(out)
    }

    fn build(
        &mut self,
        expr: &Expr,
        table: &'t Table,
        keys: &mut HashMap<String, usize>,
    ) -> Result<BoolNode, StorageError> {
        match expr {
            Expr::Binary { op: BinaryOp::And, left, right } => Ok(BoolNode::And(
                Box::new(self.build(left, table, keys)?),
                Box::new(self.build(right, table, keys)?),
            )),
            Expr::Binary { op: BinaryOp::Or, left, right } => Ok(BoolNode::Or(
                Box::new(self.build(left, table, keys)?),
                Box::new(self.build(right, table, keys)?),
            )),
            Expr::Unary { op: UnaryOp::Not, expr } => {
                Ok(BoolNode::Not(Box::new(self.build(expr, table, keys)?)))
            }
            Expr::Literal(Value::Bool(b)) => Ok(BoolNode::Const(Some(*b))),
            Expr::Literal(Value::Null) => Ok(BoolNode::Const(None)),
            // `NOT IN` is the Kleene negation of `IN` (a NULL member keeps
            // the result NULL either way), so it vectorizes even though
            // the conjunctive fragment refuses it.
            Expr::InList { expr: inner, list, negated: true } => {
                let positive =
                    Expr::InList { expr: inner.clone(), list: list.clone(), negated: false };
                Ok(BoolNode::Not(Box::new(self.leaf(&positive, table, keys)?)))
            }
            other => self.leaf(other, table, keys),
        }
    }

    fn leaf(
        &mut self,
        expr: &Expr,
        table: &'t Table,
        keys: &mut HashMap<String, usize>,
    ) -> Result<BoolNode, StorageError> {
        let cond = leaf_condition(expr)
            .ok_or_else(|| StorageError::Eval(format!("not vectorizable: {expr}")))?;
        let key = cond.cache_key();
        if let Some(&i) = keys.get(&key) {
            return Ok(BoolNode::Leaf(i));
        }
        let compiled = CompiledCondition::compile(&cond, table)?;
        let i = self.conditions.len();
        self.conditions.push(cond);
        self.compiled.push(compiled);
        keys.insert(key, i);
        Ok(BoolNode::Leaf(i))
    }

    /// Physical row count of the table the tree was compiled against (the
    /// bitmap universe).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The distinct leaf conditions, in first-appearance order. Leaf `i`
    /// pairs with `leaves[i]` in [`CompiledBoolExpr::combine`].
    pub fn leaf_conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Vectorized three-valued evaluation over **every physical row** of
    /// the table (soft-deleted rows included — intersect with
    /// [`Table::visible_row_set`] to restrict): each distinct leaf runs
    /// its columnar kernel once, then the tree folds word-level
    /// AND/OR/NOT. Identical, row for row, to evaluating the source
    /// expression with [`Expr::eval`].
    pub fn eval_columns(&self) -> TriSet {
        let leaves: Vec<Arc<TriSet>> =
            self.compiled.iter().map(|c| Arc::new(c.eval_column(self.num_rows))).collect();
        self.combine(&leaves)
    }

    /// Folds the tree over externally supplied per-leaf bitmaps (parallel
    /// to [`CompiledBoolExpr::leaf_conditions`]) — the hook the
    /// [`ConditionBitmapCache`] and the sharded zone-map pruner use to
    /// substitute cached or pruned leaf results.
    ///
    /// Panics when `leaves` does not line up with the leaf list.
    pub fn combine(&self, leaves: &[Arc<TriSet>]) -> TriSet {
        assert_eq!(leaves.len(), self.conditions.len(), "one bitmap per distinct leaf");
        self.fold(&self.root, leaves)
    }

    fn fold(&self, node: &BoolNode, leaves: &[Arc<TriSet>]) -> TriSet {
        match node {
            BoolNode::Leaf(i) => leaves[*i].as_ref().clone(),
            BoolNode::Not(c) => !&self.fold(c, leaves),
            BoolNode::And(a, b) => &self.fold(a, leaves) & &self.fold(b, leaves),
            BoolNode::Or(a, b) => &self.fold(a, leaves) | &self.fold(b, leaves),
            BoolNode::Const(Some(true)) => TriSet::all_true(self.num_rows),
            BoolNode::Const(Some(false)) => TriSet::all_false(self.num_rows),
            BoolNode::Const(None) => TriSet::all_unknown(self.num_rows),
        }
    }
}

/// One compiled condition: a typed comparison bound to a column reference.
#[derive(Debug, Clone)]
enum CompiledCondition<'t> {
    /// Matches every row (the unbounded range compiles to `TRUE`, exactly
    /// like [`Condition::to_expr`]).
    True,
    /// Always NULL: a comparison against a NULL literal, or any condition
    /// on a column whose declared type is NULL.
    Unknown,
    /// `column = v` / `column <> v` on a numeric (or bool) column.
    NumEquals { column: &'t Column, value: f64, negate: bool },
    /// `column = v` / `column <> v` on a string column.
    StrEquals { column: &'t Column, value: String, negate: bool },
    /// A (half-)open numeric range; bound flag = inclusive.
    NumRange { column: &'t Column, low: Option<(f64, bool)>, high: Option<(f64, bool)> },
    /// `column IN (...)` against the numerically coercible set members.
    NumInSet { column: &'t Column, values: Vec<f64>, with_null: bool },
    /// `column IN (...)` against the string set members.
    StrInSet { column: &'t Column, values: Vec<String>, with_null: bool },
    /// Case-insensitive substring containment; the needle is pre-lowercased.
    StrContains { column: &'t Column, needle_lower: String },
}

impl<'t> CompiledCondition<'t> {
    fn compile(cond: &Condition, table: &'t Table) -> Result<Self, StorageError> {
        let idx = table.schema().resolve(cond.column())?;
        let dtype = table.schema().field_at(idx).expect("resolved").dtype;
        let column = table.column(idx).expect("resolved");
        if dtype == DataType::Null {
            // Every value of the column is NULL, so every comparison is
            // unknown — except the unbounded range, which is literally TRUE.
            return Ok(match cond {
                Condition::Range { low: None, high: None, .. } => CompiledCondition::True,
                _ => CompiledCondition::Unknown,
            });
        }
        let mismatch = |expected: &str| StorageError::TypeMismatch {
            expected: expected.into(),
            found: dtype,
            context: format!("condition on column '{}'", cond.column()),
        };
        match cond {
            Condition::Equals { value, .. } | Condition::NotEquals { value, .. } => {
                let negate = matches!(cond, Condition::NotEquals { .. });
                match (dtype, value) {
                    (_, Value::Null) => Ok(CompiledCondition::Unknown),
                    (DataType::Str, Value::Str(s)) => {
                        Ok(CompiledCondition::StrEquals { column, value: s.clone(), negate })
                    }
                    (DataType::Str, _) | (_, Value::Str(_)) => Err(mismatch("str")),
                    (DataType::Bool, Value::Bool(b)) => Ok(CompiledCondition::NumEquals {
                        column,
                        value: if *b { 1.0 } else { 0.0 },
                        negate,
                    }),
                    // `compare` refuses bool-vs-numeric, so compilation must too.
                    (DataType::Bool, _) | (_, Value::Bool(_)) => Err(mismatch("bool")),
                    (_, v) => Ok(CompiledCondition::NumEquals {
                        column,
                        value: v.as_f64().expect("numeric literal"),
                        negate,
                    }),
                }
            }
            Condition::Range { low, low_inclusive, high, high_inclusive, .. } => {
                if low.is_none() && high.is_none() {
                    return Ok(CompiledCondition::True);
                }
                if !dtype.is_numeric() {
                    return Err(mismatch("numeric"));
                }
                Ok(CompiledCondition::NumRange {
                    column,
                    low: low.map(|v| (v, *low_inclusive)),
                    high: high.map(|v| (v, *high_inclusive)),
                })
            }
            Condition::InSet { values, .. } => {
                let with_null = values.iter().any(|v| v.is_null());
                if dtype == DataType::Str {
                    // Only string members can equal a string value; the
                    // rest can never match and are dropped.
                    let values = values
                        .iter()
                        .filter_map(|v| match v {
                            Value::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .collect();
                    Ok(CompiledCondition::StrInSet { column, values, with_null })
                } else {
                    // IN uses `Value` equality, which coerces numerics and
                    // bools through f64 — mirror that.
                    let values = values.iter().filter_map(|v| v.as_f64()).collect();
                    Ok(CompiledCondition::NumInSet { column, values, with_null })
                }
            }
            Condition::Contains { pattern, .. } => {
                if dtype != DataType::Str {
                    return Err(mismatch("str"));
                }
                Ok(CompiledCondition::StrContains {
                    column,
                    needle_lower: pattern.to_ascii_lowercase(),
                })
            }
        }
    }

    /// Three-valued evaluation on one row index (`None` = NULL).
    fn eval(&self, row: usize) -> Option<bool> {
        match self {
            CompiledCondition::True => Some(true),
            CompiledCondition::Unknown => None,
            CompiledCondition::NumEquals { column, value, negate } => {
                let v = column.get_f64(row)?;
                Some((v.total_cmp(value) == Ordering::Equal) != *negate)
            }
            CompiledCondition::StrEquals { column, value, negate } => {
                let s = column.get_str(row)?;
                Some((s == value) != *negate)
            }
            CompiledCondition::NumRange { column, low, high } => {
                let v = column.get_f64(row)?;
                let low_ok = low.map_or(true, |(lo, incl)| {
                    let ord = v.total_cmp(&lo);
                    ord == Ordering::Greater || (incl && ord == Ordering::Equal)
                });
                let high_ok = high.map_or(true, |(hi, incl)| {
                    let ord = v.total_cmp(&hi);
                    ord == Ordering::Less || (incl && ord == Ordering::Equal)
                });
                Some(low_ok && high_ok)
            }
            CompiledCondition::NumInSet { column, values, with_null } => {
                let v = column.get_f64(row)?;
                if values.iter().any(|m| v.total_cmp(m) == Ordering::Equal) {
                    Some(true)
                } else if *with_null {
                    None
                } else {
                    Some(false)
                }
            }
            CompiledCondition::StrInSet { column, values, with_null } => {
                let s = column.get_str(row)?;
                if values.iter().any(|m| m == s) {
                    Some(true)
                } else if *with_null {
                    None
                } else {
                    Some(false)
                }
            }
            CompiledCondition::StrContains { column, needle_lower } => {
                let s = column.get_str(row)?;
                Some(contains_ignore_ascii_case(s, needle_lower))
            }
        }
    }

    /// Vectorized evaluation over every physical row: one tight loop over
    /// the typed column slice instead of per-row dispatch. Produces exactly
    /// the rows where [`CompiledCondition::eval`] yields `Some(true)`
    /// (`trues`) and `None` (`unknowns`).
    fn eval_column(&self, num_rows: usize) -> TriSet {
        match self {
            CompiledCondition::True => {
                TriSet { trues: RowSet::full(num_rows), unknowns: RowSet::empty(num_rows) }
            }
            CompiledCondition::Unknown => {
                TriSet { trues: RowSet::empty(num_rows), unknowns: RowSet::full(num_rows) }
            }
            CompiledCondition::NumEquals { column, value, negate } => {
                scan_numeric(column, num_rows, false, |v| {
                    (v.total_cmp(value) == Ordering::Equal) != *negate
                })
            }
            CompiledCondition::StrEquals { column, value, negate } => {
                scan_str(column, num_rows, false, |s| (s == value) != *negate)
            }
            CompiledCondition::NumRange { column, low, high } => {
                scan_numeric(column, num_rows, false, |v| {
                    let low_ok = low.map_or(true, |(lo, incl)| {
                        let ord = v.total_cmp(&lo);
                        ord == Ordering::Greater || (incl && ord == Ordering::Equal)
                    });
                    let high_ok = high.map_or(true, |(hi, incl)| {
                        let ord = v.total_cmp(&hi);
                        ord == Ordering::Less || (incl && ord == Ordering::Equal)
                    });
                    low_ok && high_ok
                })
            }
            CompiledCondition::NumInSet { column, values, with_null } => {
                scan_numeric(column, num_rows, *with_null, |v| {
                    values.iter().any(|m| v.total_cmp(m) == Ordering::Equal)
                })
            }
            CompiledCondition::StrInSet { column, values, with_null } => {
                scan_str(column, num_rows, *with_null, |s| values.iter().any(|m| m == s))
            }
            CompiledCondition::StrContains { column, needle_lower } => {
                scan_str(column, num_rows, false, |s| contains_ignore_ascii_case(s, needle_lower))
            }
        }
    }
}

/// Word-at-a-time bitmap writer: the kernels append one bit per row and
/// flush whole `u64` words, avoiding the per-row index arithmetic and
/// bounds checks of [`RowSet::insert`].
struct BitSink {
    words: Vec<u64>,
    cur: u64,
    bit: u32,
}

impl BitSink {
    fn new(num_rows: usize) -> Self {
        BitSink { words: Vec::with_capacity(num_rows.div_ceil(64)), cur: 0, bit: 0 }
    }

    #[inline]
    fn push(&mut self, set: bool) {
        self.cur |= (set as u64) << self.bit;
        self.bit += 1;
        if self.bit == 64 {
            self.words.push(self.cur);
            self.cur = 0;
            self.bit = 0;
        }
    }

    fn finish(mut self, num_rows: usize) -> RowSet {
        if self.bit > 0 {
            self.words.push(self.cur);
        }
        RowSet::from_words(self.words, num_rows)
    }
}

/// Columnar kernel for numeric tests: dispatches on the column's typed
/// vector once, then runs a branch-light loop over the slice and the
/// validity mask. `nonmatch_unknown` encodes `IN`-list semantics where a
/// NULL set member turns non-matches into unknowns.
fn scan_numeric(
    column: &Column,
    num_rows: usize,
    nonmatch_unknown: bool,
    test: impl Fn(f64) -> bool,
) -> TriSet {
    debug_assert_eq!(column.len(), num_rows);
    let mut trues = BitSink::new(num_rows);
    let mut unknowns = BitSink::new(num_rows);
    let validity = column.validity();
    macro_rules! scan {
        ($data:expr, $conv:expr) => {
            for (x, &valid) in $data.iter().zip(validity) {
                let is_true = valid && test($conv(x));
                trues.push(is_true);
                unknowns.push(!valid || (nonmatch_unknown && !is_true));
            }
        };
    }
    match column.data() {
        ColumnData::Int(v) => scan!(v, |x: &i64| *x as f64),
        ColumnData::Float(v) => scan!(v, |x: &f64| *x),
        ColumnData::Timestamp(v) => scan!(v, |x: &i64| *x as f64),
        ColumnData::Bool(v) => scan!(v, |x: &bool| if *x { 1.0 } else { 0.0 }),
        // A string column never yields a numeric value: every row is
        // unknown, exactly like `Column::get_f64` returning `None`.
        ColumnData::Str(_) => {
            return TriSet { trues: RowSet::empty(num_rows), unknowns: RowSet::full(num_rows) }
        }
    }
    TriSet { trues: trues.finish(num_rows), unknowns: unknowns.finish(num_rows) }
}

/// Columnar kernel for string tests; see [`scan_numeric`].
fn scan_str(
    column: &Column,
    num_rows: usize,
    nonmatch_unknown: bool,
    test: impl Fn(&str) -> bool,
) -> TriSet {
    debug_assert_eq!(column.len(), num_rows);
    let mut trues = BitSink::new(num_rows);
    let mut unknowns = BitSink::new(num_rows);
    let validity = column.validity();
    match column.data() {
        ColumnData::Str(v) => {
            for (s, &valid) in v.iter().zip(validity) {
                let is_true = valid && test(s);
                trues.push(is_true);
                unknowns.push(!valid || (nonmatch_unknown && !is_true));
            }
        }
        // A non-string column never yields a string: every row is unknown,
        // exactly like `Column::get_str` returning `None`.
        _ => return TriSet { trues: RowSet::empty(num_rows), unknowns: RowSet::full(num_rows) },
    }
    TriSet { trues: trues.finish(num_rows), unknowns: unknowns.finish(num_rows) }
}

/// Process-wide hit counter of every [`ConditionBitmapCache`] (for the
/// server's `stats` reply).
static GLOBAL_BITMAP_HITS: AtomicU64 = AtomicU64::new(0);
/// Process-wide miss counter of every [`ConditionBitmapCache`].
static GLOBAL_BITMAP_MISSES: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of boolean filters served end-to-end by the
/// vectorized tree path.
static GLOBAL_BOOL_VECTORIZED: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of boolean filters that fell back to the scalar
/// expression walk.
static GLOBAL_BOOL_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// Records one boolean filter served by the vectorized
/// [`CompiledBoolExpr`] path (the server's `stats` reply reports the
/// process-wide totals).
pub fn note_bool_vectorized() {
    GLOBAL_BOOL_VECTORIZED.fetch_add(1, AtomicOrdering::Relaxed);
}

/// Records one boolean filter that fell back to the scalar expression
/// walk because its tree did not compile.
pub fn note_bool_fallback() {
    GLOBAL_BOOL_FALLBACKS.fetch_add(1, AtomicOrdering::Relaxed);
}

/// Process-wide `(vectorized, fallback)` boolean-filter counts — see
/// [`note_bool_vectorized`] / [`note_bool_fallback`].
pub fn bool_vectorization_stats() -> (u64, u64) {
    (
        GLOBAL_BOOL_VECTORIZED.load(AtomicOrdering::Relaxed),
        GLOBAL_BOOL_FALLBACKS.load(AtomicOrdering::Relaxed),
    )
}

/// Whether the process-wide warm bitmap store is active (off by default;
/// the persistent server enables it when a data directory is attached).
static WARM_STORE_ENABLED: AtomicBool = AtomicBool::new(false);
/// Number of warm bitmaps seeded from durable snapshots this process.
static GLOBAL_REHYDRATED_BITMAPS: AtomicU64 = AtomicU64::new(0);

/// Most table-version entries the warm store retains; least-recently
/// touched entries are evicted first.
const WARM_STORE_MAX_TABLES: usize = 16;
/// Most bitmaps retained per table-version entry.
const WARM_STORE_MAX_PER_TABLE: usize = 4096;

/// The process-wide warm bitmap store: per `(table id, table version)`
/// pair, the condition bitmaps computed by any dropped
/// [`ConditionBitmapCache`], ordered least-recently-touched first.
type WarmStore = Vec<((u64, u64), HashMap<String, Arc<TriSet>>)>;

fn warm_store() -> &'static Mutex<WarmStore> {
    static STORE: OnceLock<Mutex<WarmStore>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Moves (or creates) the store slot for `key` to the most-recent
/// position and returns a mutable reference to its bitmap map.
fn warm_slot(store: &mut WarmStore, key: (u64, u64)) -> &mut HashMap<String, Arc<TriSet>> {
    if let Some(pos) = store.iter().position(|(k, _)| *k == key) {
        let slot = store.remove(pos);
        store.push(slot);
    } else {
        if store.len() >= WARM_STORE_MAX_TABLES {
            store.remove(0);
        }
        store.push((key, HashMap::new()));
    }
    &mut store.last_mut().expect("just pushed").1
}

/// Turns on the process-wide warm bitmap store. Once enabled, every
/// dropped [`ConditionBitmapCache`] publishes its computed bitmaps keyed
/// by `(table id, table version)`, and every new cache over a matching
/// table preloads them — so repeated explains (and explains replayed
/// after a restart, via [`seed_warm_bitmaps`]) score conditions from
/// bitmap hits instead of re-running the columnar kernels. Off by
/// default: short-lived embedded uses keep today's per-ranking lifetime.
pub fn enable_warm_bitmap_store() {
    WARM_STORE_ENABLED.store(true, AtomicOrdering::Relaxed);
}

/// True when [`enable_warm_bitmap_store`] has been called.
pub fn warm_bitmap_store_enabled() -> bool {
    WARM_STORE_ENABLED.load(AtomicOrdering::Relaxed)
}

/// Seeds the warm bitmap store with entries rehydrated from a durable
/// snapshot. Entries whose bitmap universe does not match between halves
/// are skipped (defensively; the persistence codec already validates
/// this). Returns how many bitmaps were seeded.
pub fn seed_warm_bitmaps(
    table_id: u64,
    table_version: u64,
    entries: Vec<(String, TriSet)>,
) -> usize {
    let mut store = warm_store().lock().expect("warm store poisoned");
    let slot = warm_slot(&mut store, (table_id, table_version));
    let mut seeded = 0;
    for (key, tri) in entries {
        if slot.len() >= WARM_STORE_MAX_PER_TABLE {
            break;
        }
        if tri.trues.universe() != tri.unknowns.universe() {
            continue;
        }
        slot.insert(key, Arc::new(tri));
        seeded += 1;
    }
    GLOBAL_REHYDRATED_BITMAPS.fetch_add(seeded as u64, AtomicOrdering::Relaxed);
    seeded
}

/// Snapshots the warm store's bitmaps for one `(table id, table version)`
/// pair — what the server persists as a sidecar at flush time.
pub fn export_warm_bitmaps(table_id: u64, table_version: u64) -> Vec<(String, TriSet)> {
    let store = warm_store().lock().expect("warm store poisoned");
    store
        .iter()
        .find(|(k, _)| *k == (table_id, table_version))
        .map(|(_, m)| m.iter().map(|(k, v)| (k.clone(), (**v).clone())).collect())
        .unwrap_or_default()
}

/// Number of warm bitmaps seeded from durable snapshots since process
/// start (the `rehydrated` figure in the server's `stats` reply).
pub fn warm_bitmap_rehydrated_count() -> u64 {
    GLOBAL_REHYDRATED_BITMAPS.load(AtomicOrdering::Relaxed)
}

/// A per-table cache of condition-evaluation bitmaps.
///
/// The Predicate Enumerator produces hundreds of candidate conjunctions
/// that heavily *share* conditions drawn from one pool (tree splits, mined
/// text values, subgroup tests). Scoring each conjunction from scratch
/// re-scans the table once per condition occurrence; this cache evaluates
/// each **distinct** condition once through its columnar kernel and scores
/// conjunctions by intersecting the cached bitmaps.
///
/// A cache is pinned to one `(table id, table version)` pair at
/// construction — the same invalidation discipline as the engine's
/// statement-fingerprint cache: any table mutation bumps the version, and
/// lookups against a table with different stamps bypass the cache (fresh
/// computation, nothing stored), so stale bitmaps can never be served.
/// Conditions are keyed by [`Condition::cache_key`] (exact, not the
/// rounded display form). The cache is `Sync`; parallel candidate scoring
/// over one warmed cache is lock-cheap reads.
#[derive(Debug)]
pub struct ConditionBitmapCache {
    table_id: u64,
    /// Full epoch of the pinned table. Bitmaps are dense over the table's
    /// physical row universe, so this cache declares
    /// [`EpochTolerance::Exact`]: even a pure append changes the universe
    /// every bitmap was sized for, and absorbing would mean re-running
    /// every kernel over the new rows — at which point the warm-store
    /// donation path already rebuilds cheaper. Appends therefore miss
    /// here by design, unlike the append-tolerant aggregate caches.
    table_epoch: TableEpoch,
    num_rows: usize,
    visible: RowSet,
    /// `None` marks a condition the typed compiler cannot express, so the
    /// fallback decision is cached too.
    entries: Mutex<HashMap<String, Option<Arc<TriSet>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ConditionBitmapCache {
    /// A cache pinned to the current data version of `table`. Starts empty
    /// unless the process-wide warm bitmap store is enabled and holds
    /// bitmaps for this exact `(id, version)` pair, in which case those are
    /// preloaded — subsequent lookups score them as hits and skip the
    /// columnar kernels entirely.
    pub fn new(table: &Table) -> Self {
        let mut entries: HashMap<String, Option<Arc<TriSet>>> = HashMap::new();
        if warm_bitmap_store_enabled() {
            let store = warm_store().lock().expect("warm store poisoned");
            if let Some((_, warm)) = store.iter().find(|(k, _)| *k == (table.id(), table.version()))
            {
                entries.extend(
                    warm.iter()
                        .filter(|(_, tri)| tri.trues.universe() == table.num_rows())
                        .map(|(k, tri)| (k.clone(), Some(Arc::clone(tri)))),
                );
            }
        }
        ConditionBitmapCache {
            table_id: table.id(),
            table_epoch: table.epoch(),
            num_rows: table.num_rows(),
            visible: table.visible_row_set(),
            entries: Mutex::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// True when the cache's pinned epoch exactly matches the table's
    /// current epoch (lookups against any other table compute fresh,
    /// uncached results). Bitmap caches tolerate no appends — see the
    /// field docs on [`ConditionBitmapCache`] — so this is an
    /// [`EpochTolerance::Exact`] check.
    pub fn covers(&self, table: &Table) -> bool {
        table.id() == self.table_id && self.table_epoch.covers(table.epoch(), EpochTolerance::Exact)
    }

    /// The visible-row mask captured at construction.
    pub fn visible(&self) -> &RowSet {
        &self.visible
    }

    /// Physical row count of the pinned table (the bitmap universe).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// The condition's evaluation bitmaps over every physical row of
    /// `table`, cached across calls. Returns `None` when the typed
    /// compiler cannot express the condition against the table's schema
    /// (callers fall back to the scalar expression walk).
    pub fn condition(&self, table: &Table, cond: &Condition) -> Option<Arc<TriSet>> {
        let evaluate = |table: &Table, cond: &Condition| {
            CompiledCondition::compile(cond, table)
                .ok()
                .map(|compiled| Arc::new(compiled.eval_column(table.num_rows())))
        };
        if !self.covers(table) {
            return evaluate(table, cond);
        }
        let key = cond.cache_key();
        {
            let entries = self.entries.lock().expect("bitmap cache poisoned");
            if let Some(cached) = entries.get(&key) {
                self.hits.fetch_add(1, AtomicOrdering::Relaxed);
                GLOBAL_BITMAP_HITS.fetch_add(1, AtomicOrdering::Relaxed);
                return cached.clone();
            }
        }
        // Kernel-scan outside the lock so a miss never stalls concurrent
        // scorers (racing threads may both compute; the first insert wins
        // and both results are identical).
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        GLOBAL_BITMAP_MISSES.fetch_add(1, AtomicOrdering::Relaxed);
        let computed = evaluate(table, cond);
        let mut entries = self.entries.lock().expect("bitmap cache poisoned");
        entries.entry(key).or_insert_with(|| computed.clone()).clone()
    }

    /// Evaluates a whole conjunction by intersecting the cached
    /// per-condition bitmaps. Returns `None` as soon as any condition is
    /// inexpressible (the caller's scalar fallback then handles the whole
    /// predicate). The trivial predicate is TRUE on every row.
    pub fn conjunction(&self, table: &Table, pred: &ConjunctivePredicate) -> Option<TriSet> {
        let n = if self.covers(table) { self.num_rows } else { table.num_rows() };
        let mut trues = RowSet::full(n);
        let mut pass = RowSet::full(n);
        for cond in pred.conditions() {
            let tri = self.condition(table, cond)?;
            pass.and_assign(&tri.passes_or_unknown());
            trues.and_assign(&tri.trues);
        }
        Some(TriSet { unknowns: pass.and_not(&trues), trues })
    }

    /// Evaluates an arbitrary boolean expression tree by folding the
    /// cached per-condition bitmaps with word-level AND/OR/NOT — the
    /// disjunctive/negated generalization of
    /// [`ConditionBitmapCache::conjunction`]. Each **distinct** leaf costs
    /// one cache lookup (a kernel scan on first sight, a hit afterwards).
    /// Returns `None` when the tree does not compile against `table`
    /// (the caller's scalar fallback then handles the whole expression).
    pub fn bool_expr(&self, table: &Table, expr: &Expr) -> Option<TriSet> {
        let compiled = CompiledBoolExpr::compile(expr, table).ok()?;
        let leaves: Vec<Arc<TriSet>> = compiled
            .leaf_conditions()
            .iter()
            .map(|c| self.condition(table, c))
            .collect::<Option<_>>()?;
        Some(compiled.combine(&leaves))
    }

    /// This cache's `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(AtomicOrdering::Relaxed), self.misses.load(AtomicOrdering::Relaxed))
    }

    /// Process-wide `(hits, misses)` across every cache instance — what
    /// the server's `stats` protocol reply reports.
    pub fn global_stats() -> (u64, u64) {
        (
            GLOBAL_BITMAP_HITS.load(AtomicOrdering::Relaxed),
            GLOBAL_BITMAP_MISSES.load(AtomicOrdering::Relaxed),
        )
    }
}

impl Drop for ConditionBitmapCache {
    /// When the warm store is enabled, a dying cache donates its computed
    /// bitmaps to the process-wide store keyed by its `(id, version)`
    /// stamps, so the next cache over the same table data starts warm (and
    /// the server can persist the bitmaps across restarts). Inexpressible
    /// markers (`None` entries) are not published.
    fn drop(&mut self) {
        if !warm_bitmap_store_enabled() {
            return;
        }
        let Ok(entries) = self.entries.get_mut() else { return };
        if entries.is_empty() {
            return;
        }
        let Ok(mut store) = warm_store().lock() else { return };
        let slot = warm_slot(&mut store, (self.table_id, self.table_epoch.version()));
        for (key, tri) in entries.drain() {
            if slot.len() >= WARM_STORE_MAX_PER_TABLE {
                break;
            }
            if let Some(tri) = tri {
                slot.entry(key).or_insert(tri);
            }
        }
    }
}

/// ASCII-case-insensitive substring search without allocating, equivalent
/// to `haystack.to_ascii_lowercase().contains(needle_lower)` for an
/// already-lowercased needle.
fn contains_ignore_ascii_case(haystack: &str, needle_lower: &str) -> bool {
    let n = needle_lower.as_bytes();
    if n.is_empty() {
        return true;
    }
    let h = haystack.as_bytes();
    if n.len() > h.len() {
        return false;
    }
    h.windows(n.len()).any(|w| w.iter().zip(n).all(|(a, b)| a.eq_ignore_ascii_case(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;
    use std::ops::{Add, Not as _};

    fn table() -> Table {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("voltage", DataType::Float),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(15), Value::Float(122.0), Value::Float(2.1), Value::str("ok")],
            vec![Value::Int(15), Value::Float(119.0), Value::Float(2.0), Value::str("ok")],
            vec![Value::Int(3), Value::Float(21.0), Value::Float(2.7), Value::str("ok")],
            vec![
                Value::Int(7),
                Value::Float(22.5),
                Value::Float(2.6),
                Value::str("REATTRIBUTION TO SPOUSE"),
            ],
        ])
        .unwrap();
        t
    }

    #[test]
    fn display_matches_paper_style() {
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::at_least("temp", 100.0),
        ]);
        assert_eq!(p.to_string(), "sensorid = 15 AND temp >= 100.0000");
        assert_eq!(ConjunctivePredicate::always_true().to_string(), "TRUE");
        let c = Condition::between("temp", 10.0, 20.0);
        assert_eq!(c.to_string(), "temp BETWEEN 10.0000 AND 20.0000");
        let c = Condition::contains("memo", "SPOUSE");
        assert_eq!(c.to_string(), "memo LIKE '%SPOUSE%'");
        let c = Condition::in_set("sensorid", vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(c.to_string(), "sensorid IN (1, 2)");
        let c = Condition::not_equals("memo", "ok");
        assert_eq!(c.to_string(), "memo <> 'ok'");
    }

    #[test]
    fn matching_and_coverage() {
        let t = table();
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 120.0),
        ]);
        assert_eq!(p.matching_rows(&t), vec![RowId(0)]);
        assert!((p.selectivity(&t) - 0.25).abs() < 1e-12);
        assert!((p.coverage(&t, &[RowId(0), RowId(1)]) - 0.5).abs() < 1e-12);
        assert_eq!(p.coverage(&t, &[]), 0.0);

        let trivially_true = ConjunctivePredicate::always_true();
        assert!(trivially_true.is_trivial());
        assert_eq!(trivially_true.matching_rows(&t).len(), 4);
    }

    #[test]
    fn exclusion_expr_removes_matches() {
        let t = table();
        let p = ConjunctivePredicate::new(vec![Condition::contains("memo", "spouse")]);
        let keep = p.to_exclusion_expr().filter(&t).unwrap();
        assert_eq!(keep, vec![RowId(0), RowId(1), RowId(2)]);
    }

    #[test]
    fn subsumption_dedup() {
        // temp > 100 subsumes temp > 120 (the latter is more specific), so
        // when both appear the more specific one is kept.
        let p = ConjunctivePredicate::new(vec![
            Condition::above("temp", 100.0),
            Condition::above("temp", 120.0),
        ]);
        assert_eq!(p.complexity(), 1);
        assert_eq!(p.conditions()[0], Condition::above("temp", 120.0));

        // Identical conditions are deduplicated.
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::equals("sensorid", 15),
        ]);
        assert_eq!(p.complexity(), 1);

        // Conditions on different columns are all kept.
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 100.0),
        ]);
        assert_eq!(p.complexity(), 2);
        assert_eq!(p.columns(), vec!["sensorid".to_string(), "temp".to_string()]);
    }

    #[test]
    fn condition_subsumes() {
        assert!(Condition::above("t", 10.0).subsumes(&Condition::above("t", 20.0)));
        assert!(!Condition::above("t", 20.0).subsumes(&Condition::above("t", 10.0)));
        assert!(!Condition::above("t", 10.0).subsumes(&Condition::above("u", 20.0)));
        assert!(Condition::at_most("t", 30.0).subsumes(&Condition::between("t", 0.0, 20.0)));
        assert!(Condition::in_set("c", vec![Value::Int(1), Value::Int(2)])
            .subsumes(&Condition::equals("c", 1)));
        assert!(!Condition::in_set("c", vec![Value::Int(1)]).subsumes(&Condition::equals("c", 7)));
        assert!(Condition::equals("c", 1).subsumes(&Condition::equals("c", 1)));
        assert!(!Condition::equals("c", 1).subsumes(&Condition::equals("c", 2)));
    }

    #[test]
    fn compiled_matches_expression_three_valued_logic() {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("ok", DataType::Bool),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("r", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(15), Value::Float(122.0), Value::Bool(true), Value::str("fine")],
            vec![Value::Int(15), Value::Null, Value::Bool(false), Value::str("REATTRIBUTION")],
            vec![Value::Int(3), Value::Float(21.0), Value::Null, Value::Null],
            vec![Value::Null, Value::Float(-0.0), Value::Bool(true), Value::str("Reattribution x")],
        ])
        .unwrap();
        let conditions = vec![
            Condition::equals("sensorid", 15),
            Condition::not_equals("sensorid", 15),
            Condition::equals("temp", 122.0),
            Condition::equals("temp", 0.0), // -0.0 vs 0.0: total_cmp says unequal
            Condition::equals("ok", true),
            Condition::not_equals("memo", "fine"),
            Condition::equals("memo", Value::str("fine")),
            Condition::equals("sensorid", Value::Null),
            Condition::above("temp", 21.0),
            Condition::at_least("temp", 21.0),
            Condition::at_most("temp", 21.0),
            Condition::between("temp", 0.0, 122.0),
            Condition::Range {
                column: "temp".into(),
                low: None,
                low_inclusive: false,
                high: None,
                high_inclusive: false,
            },
            Condition::in_set("sensorid", vec![Value::Int(3), Value::Int(15)]),
            Condition::in_set("sensorid", vec![Value::Int(3), Value::Null]),
            Condition::in_set("memo", vec![Value::str("fine"), Value::Int(7)]),
            Condition::contains("memo", "REATTRIBUTION"),
            Condition::contains("memo", ""),
        ];
        // Every single condition and every pair must agree with the Expr
        // path on all rows, under three-valued logic.
        let mut predicates: Vec<ConjunctivePredicate> = Vec::new();
        for c in &conditions {
            predicates.push(ConjunctivePredicate { conditions: vec![c.clone()] });
            for d in &conditions {
                predicates.push(ConjunctivePredicate { conditions: vec![c.clone(), d.clone()] });
            }
        }
        for p in &predicates {
            let compiled = p.compile(&t).expect("all conditions are well-typed");
            let expr = p.to_expr();
            for r in t.visible_row_ids() {
                let via_expr = match expr.eval(&t, r).unwrap() {
                    Value::Bool(b) => Some(b),
                    Value::Null => None,
                    other => panic!("non-boolean predicate value {other:?}"),
                };
                assert_eq!(compiled.matches(r), via_expr, "{p} on row {r:?}");
            }
            // matching_rows (which now uses the compiled path) agrees with
            // the per-condition fallback.
            let fallback: Vec<RowId> = t.visible_row_ids().filter(|&r| p.matches(&t, r)).collect();
            assert_eq!(p.matching_rows(&t), fallback, "{p}");
        }
    }

    #[test]
    fn compile_rejects_mistyped_conditions() {
        let t = table();
        // String equality against a numeric column and vice versa.
        assert!(ConjunctivePredicate::new(vec![Condition::equals("temp", Value::str("x"))])
            .compile(&t)
            .is_err());
        assert!(ConjunctivePredicate::new(vec![Condition::equals("memo", 4)]).compile(&t).is_err());
        // Range and CONTAINS on a string column.
        assert!(ConjunctivePredicate::new(vec![Condition::above("memo", 1.0)])
            .compile(&t)
            .is_err());
        assert!(ConjunctivePredicate::new(vec![Condition::contains("temp", "x")])
            .compile(&t)
            .is_err());
        // Unknown column.
        assert!(ConjunctivePredicate::new(vec![Condition::equals("missing", 1)])
            .compile(&t)
            .is_err());
        // matching_rows falls back to the expression path and still answers.
        let p = ConjunctivePredicate::new(vec![Condition::equals("memo", 4)]);
        assert!(p.matching_rows(&t).is_empty());
    }

    #[test]
    fn eval_columns_agrees_with_scalar_matches() {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("ok", DataType::Bool),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("r", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(15), Value::Float(122.0), Value::Bool(true), Value::str("fine")],
            vec![Value::Int(15), Value::Null, Value::Bool(false), Value::str("REATTRIBUTION")],
            vec![Value::Int(3), Value::Float(21.0), Value::Null, Value::Null],
            vec![Value::Null, Value::Float(-0.0), Value::Bool(true), Value::str("Reattribution")],
        ])
        .unwrap();
        let conditions = vec![
            Condition::equals("sensorid", 15),
            Condition::not_equals("memo", "fine"),
            Condition::equals("sensorid", Value::Null),
            Condition::between("temp", 0.0, 122.0),
            Condition::in_set("sensorid", vec![Value::Int(3), Value::Null]),
            Condition::in_set("memo", vec![Value::str("fine"), Value::Int(7)]),
            Condition::contains("memo", "reattribution"),
            Condition::equals("ok", true),
        ];
        let mut predicates: Vec<ConjunctivePredicate> = Vec::new();
        for c in &conditions {
            predicates.push(ConjunctivePredicate { conditions: vec![c.clone()] });
            for d in &conditions {
                predicates.push(ConjunctivePredicate { conditions: vec![c.clone(), d.clone()] });
            }
        }
        let cache = ConditionBitmapCache::new(&t);
        for p in &predicates {
            let compiled = p.compile(&t).expect("well-typed");
            let tri = compiled.eval_columns();
            for r in t.all_row_ids() {
                let scalar = compiled.matches(r);
                assert_eq!(tri.trues.contains(r.index()), scalar == Some(true), "{p} on {r}");
                assert_eq!(tri.unknowns.contains(r.index()), scalar.is_none(), "{p} on {r}");
            }
            // The cached conjunction agrees with direct evaluation.
            let via_cache = cache.conjunction(&t, p).expect("well-typed");
            assert!(via_cache.trues == tri.trues && via_cache.unknowns == tri.unknowns, "{p}");
        }
        let (hits, misses) = cache.stats();
        assert_eq!(misses, conditions.len() as u64, "one kernel scan per distinct condition");
        assert!(hits > misses, "conjunctions reuse cached bitmaps");
    }

    #[test]
    fn triset_ops_follow_kleene_truth_tables() {
        // One row per (left, right) combination of {TRUE, FALSE, NULL}.
        let values = [Some(true), Some(false), None];
        let mut left = TriSet::all_false(9);
        let mut right = TriSet::all_false(9);
        for (i, (l, r)) in
            values.iter().flat_map(|l| values.iter().map(move |r| (*l, *r))).enumerate()
        {
            match l {
                Some(true) => left.trues.insert(i),
                None => left.unknowns.insert(i),
                Some(false) => {}
            }
            match r {
                Some(true) => right.trues.insert(i),
                None => right.unknowns.insert(i),
                Some(false) => {}
            }
        }
        let kleene_and = |l: Option<bool>, r: Option<bool>| match (l, r) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        };
        let kleene_or = |l: Option<bool>, r: Option<bool>| match (l, r) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        };
        let anded = &left & &right;
        let ored = &left | &right;
        let negated = !&left;
        for (i, (l, r)) in
            values.iter().flat_map(|l| values.iter().map(move |r| (*l, *r))).enumerate()
        {
            assert_eq!(anded.value(i), kleene_and(l, r), "{l:?} AND {r:?}");
            assert_eq!(ored.value(i), kleene_or(l, r), "{l:?} OR {r:?}");
            assert_eq!(negated.value(i), l.map(|b| !b), "NOT {l:?}");
        }
        // trues and unknowns stay disjoint and tail-masked.
        assert!(anded.trues.and(&anded.unknowns).is_empty());
        assert!(ored.trues.and(&ored.unknowns).is_empty());
        assert!(negated.trues.and(&negated.unknowns).is_empty());
        assert_eq!(negated.universe(), 9);
    }

    fn null_heavy_table() -> Table {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("ok", DataType::Bool),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("r", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(15), Value::Float(122.0), Value::Bool(true), Value::str("fine")],
            vec![Value::Int(15), Value::Null, Value::Bool(false), Value::str("REATTRIBUTION")],
            vec![Value::Int(3), Value::Float(21.0), Value::Null, Value::Null],
            vec![Value::Null, Value::Float(-0.0), Value::Bool(true), Value::str("Reattribution")],
            vec![Value::Int(7), Value::Float(50.0), Value::Bool(false), Value::Null],
        ])
        .unwrap();
        t
    }

    /// Boolean trees exercising NOT/OR/AND nesting, NOT IN, and literal
    /// constants over a NULL-heavy table.
    fn bool_trees() -> Vec<Expr> {
        let eq15 = || col("sensorid").eq(lit(15));
        let hot = || col("temp").gt(lit(100.0));
        let reattr = || col("memo").contains("reattribution");
        vec![
            eq15().or(hot()),
            eq15().or(hot()).not(),
            hot().not(),
            eq15().and(hot().not()).or(reattr()),
            eq15().not().and(hot().or(reattr()).not()),
            eq15().or(lit(Value::Null)),
            hot().and(lit(Value::Null)),
            hot().or(lit(true)),
            hot().and(lit(false)).or(reattr()),
            col("sensorid").not_in_list(vec![lit(3), lit(15)]),
            col("sensorid").not_in_list(vec![lit(3), lit(Value::Null)]),
            col("sensorid").in_list(vec![lit(3), lit(Value::Null)]).not(),
            col("temp").between(lit(0.0), lit(60.0)).or(col("ok").eq(lit(true))).not(),
            // A repeated leaf: the tree must still agree while scanning it
            // once.
            hot().or(hot().not()),
            eq15().and(eq15()).or(eq15().not()),
        ]
    }

    #[test]
    fn compiled_bool_expr_agrees_with_scalar_walk() {
        let t = null_heavy_table();
        for expr in bool_trees() {
            let compiled = CompiledBoolExpr::compile(&expr, &t)
                .unwrap_or_else(|e| panic!("{expr} should vectorize: {e:?}"));
            let tri = compiled.eval_columns();
            assert_eq!(tri.universe(), t.num_rows());
            assert!(tri.trues.and(&tri.unknowns).is_empty(), "{expr}: overlapping bitmaps");
            for r in t.all_row_ids() {
                let scalar = match expr.eval(&t, r).unwrap() {
                    Value::Bool(b) => Some(b),
                    Value::Null => None,
                    other => panic!("non-boolean tree value {other:?}"),
                };
                assert_eq!(tri.value(r.index()), scalar, "{expr} on {r}");
            }
        }
    }

    #[test]
    fn bitmap_cache_bool_expr_agrees_and_dedups_leaves() {
        let t = null_heavy_table();
        let cache = ConditionBitmapCache::new(&t);
        for expr in bool_trees() {
            let via_cache = cache.bool_expr(&t, &expr).expect("vectorizable");
            let direct = CompiledBoolExpr::compile(&expr, &t).unwrap().eval_columns();
            assert!(
                via_cache.trues == direct.trues && via_cache.unknowns == direct.unknowns,
                "{expr}"
            );
        }
        let (hits, misses) = cache.stats();
        // The trees draw on a handful of distinct conditions; each costs
        // one kernel scan ever, and repeats (across and within trees) hit.
        assert!(misses <= 8, "distinct leaves only: {misses}");
        assert!(hits > misses, "repeated leaves served from cache");
    }

    #[test]
    fn compiled_bool_expr_handles_empty_tables() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let t = Table::new("empty", schema).unwrap();
        let expr = col("a").eq(lit(1)).or(col("a").gt(lit(2)).not());
        let tri = CompiledBoolExpr::compile(&expr, &t).unwrap().eval_columns();
        assert_eq!(tri.universe(), 0);
        assert!(tri.trues.is_empty() && tri.unknowns.is_empty());
    }

    #[test]
    fn predicate_tree_shape_accessors() {
        let eq15 = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 15)]);
        let hot = ConjunctivePredicate::new(vec![Condition::above("temp", 100.0)]);
        let both = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 100.0),
        ]);

        let or = PredicateTree::any_of(vec![eq15.clone(), hot.clone()]);
        assert_eq!(or.to_string(), "sensorid = 15 OR temp > 100.0000");
        assert_eq!(Candidate::complexity(&or), 2);
        assert!(!Candidate::is_trivial(&or));

        let not = PredicateTree::negation(both.clone());
        assert_eq!(not.to_string(), "NOT (sensorid = 15 AND temp > 100.0000)");
        assert_eq!(Candidate::complexity(&not), 3);
        assert!(!Candidate::is_trivial(&not));

        // Commutative OR branches share one canonical key.
        let flipped = PredicateTree::any_of(vec![hot.clone(), eq15.clone()]);
        assert_ne!(or.to_string(), flipped.to_string());
        assert_eq!(Candidate::canonical_key(&or), Candidate::canonical_key(&flipped));
        assert_ne!(Candidate::canonical_key(&or), Candidate::canonical_key(&not));

        // Degenerate shapes are trivial: empty OR, OR with an always-true
        // branch, NOT of always-true, the bare trivial leaf.
        assert!(Candidate::is_trivial(&PredicateTree::Or(vec![])));
        assert!(Candidate::is_trivial(&PredicateTree::any_of(vec![
            eq15.clone(),
            ConjunctivePredicate::always_true(),
        ])));
        assert!(Candidate::is_trivial(&PredicateTree::negation(
            ConjunctivePredicate::always_true()
        )));
        assert!(Candidate::is_trivial(&PredicateTree::And(vec![])));
        assert!(!Candidate::is_trivial(&PredicateTree::And(vec![or.clone(), not.clone()])));

        // Distinct conditions dedup across branches.
        let nested = PredicateTree::And(vec![or, PredicateTree::negation(both)]);
        assert_eq!(nested.distinct_conditions().len(), 2);
    }

    #[test]
    fn predicate_tree_tri_eval_matches_scalar_walk() {
        let t = null_heavy_table();
        let eq15 = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 15)]);
        let hot = ConjunctivePredicate::new(vec![Condition::above("temp", 100.0)]);
        let both = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 100.0),
        ]);
        let trees = vec![
            PredicateTree::Leaf(both.clone()),
            PredicateTree::any_of(vec![eq15.clone(), hot.clone()]),
            PredicateTree::negation(both.clone()),
            PredicateTree::And(vec![
                PredicateTree::any_of(vec![eq15.clone(), hot.clone()]),
                PredicateTree::negation(hot.clone()),
            ]),
            PredicateTree::Not(Box::new(PredicateTree::any_of(vec![eq15, hot]))),
        ];
        let cache = ConditionBitmapCache::new(&t);
        for tree in &trees {
            assert!(Candidate::vectorizable(tree, &t), "{tree}");
            let expr = Candidate::to_expr(tree);
            let tri = Candidate::tri_eval(tree, &cache, &t).expect("vectorizable");
            let via_pruned =
                Candidate::tri_eval_pruned(tree, &cache, &t, &|_| true).expect("vectorizable");
            for r in t.all_row_ids() {
                let scalar = match expr.eval(&t, r).unwrap() {
                    Value::Bool(b) => Some(b),
                    Value::Null => None,
                    other => panic!("non-boolean value {other:?}"),
                };
                assert_eq!(tri.value(r.index()), scalar, "{tree} on {r}");
                assert_eq!(via_pruned.value(r.index()), scalar, "{tree} on {r} (pruned path)");
            }
        }
        // A tree with an inexpressible leaf declines vectorization.
        let bad =
            PredicateTree::negation(ConjunctivePredicate::new(vec![Condition::equals("memo", 4)]));
        assert!(!Candidate::vectorizable(&bad, &t));
        assert!(Candidate::tri_eval(&bad, &cache, &t).is_none());
    }

    /// Pruned-leaf substitution is *exact*: a leaf whose kernel provably
    /// produces the empty TriSet can be swapped for all-FALSE without
    /// changing any fold — including under NOT, where the fold correctly
    /// turns all-TRUE rather than pruning the candidate away.
    #[test]
    fn tri_eval_pruned_substitution_is_exact() {
        // No NULLs: `sensorid = 777` genuinely yields the empty TriSet.
        let schema = Schema::of(&[("sensorid", DataType::Int), ("temp", DataType::Float)]);
        let mut t = Table::new("r", schema).unwrap();
        for i in 0..10i64 {
            t.push_row(vec![Value::Int(i % 4), Value::Float(i as f64)]).unwrap();
        }
        let missing = Condition::equals("sensorid", 777);
        let present = Condition::above("temp", 4.5);
        let live = |c: &Condition| c.cache_key() != missing.cache_key();

        let leaf_m = ConjunctivePredicate::new(vec![missing.clone()]);
        let leaf_p = ConjunctivePredicate::new(vec![present.clone()]);
        let both = ConjunctivePredicate::new(vec![missing.clone(), present.clone()]);
        let trees = vec![
            PredicateTree::Leaf(both.clone()),
            PredicateTree::any_of(vec![leaf_m.clone(), leaf_p.clone()]),
            PredicateTree::negation(leaf_m.clone()),
            PredicateTree::Not(Box::new(PredicateTree::any_of(vec![leaf_m.clone(), leaf_p]))),
            PredicateTree::Or(vec![PredicateTree::Leaf(leaf_m.clone())]),
        ];
        for tree in &trees {
            // Fresh caches per path so the pruned evaluation can't borrow
            // the unpruned evaluation's bitmaps.
            let full = Candidate::tri_eval(tree, &ConditionBitmapCache::new(&t), &t).unwrap();
            let pruned_cache = ConditionBitmapCache::new(&t);
            let pruned = Candidate::tri_eval_pruned(tree, &pruned_cache, &t, &live).unwrap();
            assert!(full.trues == pruned.trues && full.unknowns == pruned.unknowns, "{tree}");
            // The pruned leaf never reached a kernel.
            let (_, misses) = pruned_cache.stats();
            assert!(
                (misses as usize) < Candidate::leaf_conditions(tree).len() + 1,
                "{tree}: pruned leaf should skip its scan"
            );
        }
        // The conjunctive impl short-circuits the whole shard.
        let pruned_cache = ConditionBitmapCache::new(&t);
        let tri = Candidate::tri_eval_pruned(&both, &pruned_cache, &t, &live).unwrap();
        assert!(tri.trues.is_empty() && tri.unknowns.is_empty());
        assert_eq!(pruned_cache.stats(), (0, 0), "no kernel ran at all");
    }

    #[test]
    fn compiled_bool_expr_rejects_non_vectorizable_trees() {
        let t = null_heavy_table();
        for expr in [
            col("temp").is_null(),
            col("temp").is_not_null().or(col("sensorid").eq(lit(15))),
            col("temp").add(lit(1.0)).gt(lit(2.0)),
            col("temp").gt(col("sensorid")),
            col("memo").lt(lit("z")).not(),
            Expr::Column("ok".into()),
            col("sensorid").eq(lit(15)).or(lit(7)),
            col("memo").eq(lit(4)).or(col("sensorid").eq(lit(15))),
        ] {
            assert!(
                CompiledBoolExpr::compile(&expr, &t).is_err(),
                "{expr} must fall back to the scalar walk"
            );
            assert!(ConditionBitmapCache::new(&t).bool_expr(&t, &expr).is_none(), "{expr}");
        }
        // Fallback counters are monotone.
        let (v0, f0) = bool_vectorization_stats();
        note_bool_vectorized();
        note_bool_fallback();
        let (v1, f1) = bool_vectorization_stats();
        assert!(v1 > v0 && f1 > f0);
    }

    #[test]
    fn bitmap_cache_bypasses_on_version_mismatch_and_rejects_mistyped() {
        let t = table();
        let cache = ConditionBitmapCache::new(&t);
        assert!(cache.covers(&t));
        assert_eq!(cache.num_rows(), t.num_rows());
        assert_eq!(cache.visible().count_ones(), t.visible_rows());
        // A mistyped condition is inexpressible: conjunction yields None.
        let bad = ConjunctivePredicate::new(vec![Condition::equals("memo", 4)]);
        assert!(cache.conjunction(&t, &bad).is_none());
        // Mutating the table bumps the version: the stale cache computes
        // fresh results (still correct) without serving stored bitmaps.
        let mut t2 = t.clone();
        t2.delete_row(RowId(0)).unwrap();
        assert!(!cache.covers(&t2));
        let p = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 15)]);
        let (h0, m0) = cache.stats();
        let tri = cache.conjunction(&t2, &p).expect("well-typed");
        assert_eq!(cache.stats(), (h0, m0), "bypassed lookups leave the counters alone");
        assert_eq!(tri.trues.to_row_ids(), vec![RowId(0), RowId(1)]);
        // Global counters only ever grow.
        let (gh, gm) = ConditionBitmapCache::global_stats();
        let _ = cache.conjunction(&t, &p);
        let (gh2, gm2) = ConditionBitmapCache::global_stats();
        assert!(gh2 + gm2 > gh + gm);
    }

    #[test]
    fn from_conjunctive_expr_round_trips_predicate_shapes() {
        let t = table();
        let shapes = vec![
            ConjunctivePredicate::new(vec![Condition::equals("sensorid", 15)]),
            ConjunctivePredicate::new(vec![
                Condition::equals("sensorid", 15),
                Condition::above("temp", 120.0),
            ]),
            ConjunctivePredicate::new(vec![
                Condition::between("temp", 10.0, 130.0),
                Condition::not_equals("memo", "ok"),
            ]),
            ConjunctivePredicate::new(vec![Condition::in_set(
                "sensorid",
                vec![Value::Int(3), Value::Int(7)],
            )]),
            ConjunctivePredicate::new(vec![Condition::contains("memo", "spouse")]),
            ConjunctivePredicate::new(vec![Condition::at_most("voltage", 2.5)]),
        ];
        for p in shapes {
            let recovered = ConjunctivePredicate::from_conjunctive_expr(&p.to_expr())
                .unwrap_or_else(|| panic!("{p} should be recoverable"));
            assert_eq!(recovered.matching_rows(&t), p.matching_rows(&t), "{p}");
        }
        // A mirrored comparison (literal on the left) flips the operator.
        let mirrored = lit(120.0).lt(col("temp"));
        let recovered = ConjunctivePredicate::from_conjunctive_expr(&mirrored).unwrap();
        assert_eq!(
            recovered.matching_rows(&t),
            Condition::above("temp", 120.0).to_expr().filter(&t).unwrap()
        );
        // Constructs outside the conjunctive fragment are refused.
        for expr in [
            col("temp").gt(lit(1.0)).or(col("sensorid").eq(lit(3))),
            col("temp").gt(lit(1.0)).not(),
            col("temp").is_not_null(),
            col("temp").gt(col("voltage")),
            col("memo").lt(lit("z")),
            Expr::InList { expr: Box::new(col("sensorid")), list: vec![lit(1)], negated: true },
        ] {
            assert!(
                ConjunctivePredicate::from_conjunctive_expr(&expr).is_none(),
                "{expr:?} must fall back to the scalar path"
            );
        }
    }

    #[test]
    fn canonical_key_ignores_conjunct_order() {
        let a_and_b = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 100.0),
        ]);
        let b_and_a = ConjunctivePredicate::new(vec![
            Condition::above("temp", 100.0),
            Condition::equals("sensorid", 15),
        ]);
        assert_ne!(a_and_b.to_string(), b_and_a.to_string());
        assert_eq!(a_and_b.canonical_key(), b_and_a.canonical_key());
        // Different predicates keep different keys.
        let other = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 3)]);
        assert_ne!(a_and_b.canonical_key(), other.canonical_key());
        assert_eq!(ConjunctivePredicate::always_true().canonical_key(), "");
    }

    #[test]
    fn with_extends_predicate() {
        let p = ConjunctivePredicate::always_true()
            .with(Condition::equals("sensorid", 15))
            .with(Condition::at_least("voltage", 2.0));
        assert_eq!(p.complexity(), 2);
        let t = table();
        assert_eq!(p.matching_rows(&t), vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn range_to_expr_handles_open_ends() {
        let t = table();
        assert_eq!(Condition::at_most("temp", 22.0).to_expr().filter(&t).unwrap(), vec![RowId(2)]);
        assert_eq!(
            Condition::at_least("temp", 119.0).to_expr().filter(&t).unwrap(),
            vec![RowId(0), RowId(1)]
        );
        let unbounded = Condition::Range {
            column: "temp".into(),
            low: None,
            low_inclusive: false,
            high: None,
            high_inclusive: false,
        };
        assert_eq!(unbounded.to_expr().filter(&t).unwrap().len(), 4);
        assert_eq!(unbounded.to_string(), "temp IS NOT NULL");
    }
}

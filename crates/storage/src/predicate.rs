//! Human-readable conjunctive predicates.
//!
//! The Ranked Provenance System returns *predicates* such as
//! `sensorid = 15 AND time BETWEEN 11:00 AND 13:00` (paper §2.1). These are
//! deliberately restricted to conjunctions of per-attribute conditions so
//! they remain compact and interpretable; this module defines that
//! restricted form, its SQL rendering, and its conversion to the general
//! [`Expr`] language for evaluation and query rewriting.

use crate::column::Column;
use crate::error::StorageError;
use crate::expr::{col, lit, Expr};
use crate::table::{RowId, Table};
use crate::value::{DataType, Value};
use std::cmp::Ordering;
use std::fmt;

/// A single per-attribute condition inside a [`ConjunctivePredicate`].
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `column = value`
    Equals {
        /// Attribute name.
        column: String,
        /// Value compared against.
        value: Value,
    },
    /// `column <> value`
    NotEquals {
        /// Attribute name.
        column: String,
        /// Value compared against.
        value: Value,
    },
    /// A (possibly half-open) numeric range on `column`.
    ///
    /// Bounds are inclusive when the corresponding flag is set, mirroring
    /// the thresholds produced by decision-tree splits (`<=` / `>`).
    Range {
        /// Attribute name.
        column: String,
        /// Lower bound (`None` = unbounded below).
        low: Option<f64>,
        /// Whether the lower bound itself is included.
        low_inclusive: bool,
        /// Upper bound (`None` = unbounded above).
        high: Option<f64>,
        /// Whether the upper bound itself is included.
        high_inclusive: bool,
    },
    /// `column IN (values...)`
    InSet {
        /// Attribute name.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// Case-insensitive substring containment on a text attribute.
    Contains {
        /// Attribute name.
        column: String,
        /// Substring searched for.
        pattern: String,
    },
}

impl Condition {
    /// Builds an equality condition.
    pub fn equals(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::Equals { column: column.into(), value: value.into() }
    }

    /// Builds an inequality condition.
    pub fn not_equals(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Condition::NotEquals { column: column.into(), value: value.into() }
    }

    /// Builds a `column <= high` condition.
    pub fn at_most(column: impl Into<String>, high: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: None,
            low_inclusive: false,
            high: Some(high),
            high_inclusive: true,
        }
    }

    /// Builds a `column > low` condition.
    pub fn above(column: impl Into<String>, low: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: Some(low),
            low_inclusive: false,
            high: None,
            high_inclusive: false,
        }
    }

    /// Builds a `column >= low` condition.
    pub fn at_least(column: impl Into<String>, low: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: Some(low),
            low_inclusive: true,
            high: None,
            high_inclusive: false,
        }
    }

    /// Builds a closed range `low <= column <= high`.
    pub fn between(column: impl Into<String>, low: f64, high: f64) -> Self {
        Condition::Range {
            column: column.into(),
            low: Some(low),
            low_inclusive: true,
            high: Some(high),
            high_inclusive: true,
        }
    }

    /// Builds a set-membership condition.
    pub fn in_set(column: impl Into<String>, values: Vec<Value>) -> Self {
        Condition::InSet { column: column.into(), values }
    }

    /// Builds a substring-containment condition.
    pub fn contains(column: impl Into<String>, pattern: impl Into<String>) -> Self {
        Condition::Contains { column: column.into(), pattern: pattern.into() }
    }

    /// The attribute this condition constrains.
    pub fn column(&self) -> &str {
        match self {
            Condition::Equals { column, .. }
            | Condition::NotEquals { column, .. }
            | Condition::Range { column, .. }
            | Condition::InSet { column, .. }
            | Condition::Contains { column, .. } => column,
        }
    }

    /// Converts the condition into an evaluable [`Expr`].
    pub fn to_expr(&self) -> Expr {
        match self {
            Condition::Equals { column, value } => col(column.clone()).eq(lit(value.clone())),
            Condition::NotEquals { column, value } => {
                col(column.clone()).not_eq(lit(value.clone()))
            }
            Condition::Range { column, low, low_inclusive, high, high_inclusive } => {
                let c = || col(column.clone());
                let mut parts = Vec::new();
                if let Some(lo) = low {
                    parts.push(if *low_inclusive { c().gt_eq(lit(*lo)) } else { c().gt(lit(*lo)) });
                }
                if let Some(hi) = high {
                    parts.push(if *high_inclusive {
                        c().lt_eq(lit(*hi))
                    } else {
                        c().lt(lit(*hi))
                    });
                }
                Expr::conjunction(parts).unwrap_or_else(|| lit(true))
            }
            Condition::InSet { column, values } => {
                col(column.clone()).in_list(values.iter().map(|v| lit(v.clone())).collect())
            }
            Condition::Contains { column, pattern } => {
                col(column.clone()).contains(pattern.clone())
            }
        }
    }

    /// True when `other` can only match rows that this condition also
    /// matches (a conservative check used to drop redundant conditions).
    pub fn subsumes(&self, other: &Condition) -> bool {
        if self.column() != other.column() {
            return false;
        }
        match (self, other) {
            (a, b) if a == b => true,
            (
                Condition::Range { low: l1, high: h1, .. },
                Condition::Range { low: l2, high: h2, .. },
            ) => {
                let low_ok = match (l1, l2) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(a), Some(b)) => a <= b,
                };
                let high_ok = match (h1, h2) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some(a), Some(b)) => a >= b,
                };
                low_ok && high_ok
            }
            (Condition::InSet { values, .. }, Condition::Equals { value, .. }) => {
                values.contains(value)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Equals { column, value } => {
                write!(f, "{column} = {}", value.to_sql_literal())
            }
            Condition::NotEquals { column, value } => {
                write!(f, "{column} <> {}", value.to_sql_literal())
            }
            Condition::Range { column, low, low_inclusive, high, high_inclusive } => {
                match (low, high) {
                    (Some(lo), Some(hi)) if *low_inclusive && *high_inclusive => {
                        write!(f, "{column} BETWEEN {lo:.4} AND {hi:.4}")
                    }
                    (Some(lo), Some(hi)) => write!(
                        f,
                        "{column} {} {lo:.4} AND {column} {} {hi:.4}",
                        if *low_inclusive { ">=" } else { ">" },
                        if *high_inclusive { "<=" } else { "<" }
                    ),
                    (Some(lo), None) => {
                        write!(f, "{column} {} {lo:.4}", if *low_inclusive { ">=" } else { ">" })
                    }
                    (None, Some(hi)) => {
                        write!(f, "{column} {} {hi:.4}", if *high_inclusive { "<=" } else { "<" })
                    }
                    (None, None) => write!(f, "{column} IS NOT NULL"),
                }
            }
            Condition::InSet { column, values } => {
                let items: Vec<String> = values.iter().map(|v| v.to_sql_literal()).collect();
                write!(f, "{column} IN ({})", items.join(", "))
            }
            Condition::Contains { column, pattern } => {
                write!(f, "{column} LIKE '%{}%'", pattern.replace('\'', "''"))
            }
        }
    }
}

/// A conjunction of per-attribute [`Condition`]s — the "compact predicate"
/// DBWipes returns to the user.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConjunctivePredicate {
    conditions: Vec<Condition>,
}

impl ConjunctivePredicate {
    /// Creates a predicate from a list of conditions, dropping conditions
    /// made redundant by a more specific condition on the same attribute
    /// (in a conjunction, `temp > 100 AND temp > 120` is just `temp > 120`).
    pub fn new(conditions: Vec<Condition>) -> Self {
        let mut kept: Vec<Condition> = Vec::new();
        'outer: for cond in conditions {
            if kept.contains(&cond) {
                continue;
            }
            // If a kept condition is at least as specific as `cond`
            // (`cond` subsumes it), `cond` adds nothing to the conjunction.
            for k in &kept {
                if cond.subsumes(k) {
                    continue 'outer;
                }
            }
            // Conversely, drop kept conditions that `cond` makes redundant.
            kept.retain(|k| !k.subsumes(&cond));
            kept.push(cond);
        }
        ConjunctivePredicate { conditions: kept }
    }

    /// The always-true predicate (matches every row).
    pub fn always_true() -> Self {
        ConjunctivePredicate { conditions: Vec::new() }
    }

    /// The conditions of the conjunction.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Number of conjuncts — the "complexity" penalised by the Predicate
    /// Ranker (paper §2.2.2).
    pub fn complexity(&self) -> usize {
        self.conditions.len()
    }

    /// True when the predicate has no conditions (matches everything).
    pub fn is_trivial(&self) -> bool {
        self.conditions.is_empty()
    }

    /// The distinct attributes referenced.
    pub fn columns(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for c in &self.conditions {
            if !out.iter().any(|n| n == c.column()) {
                out.push(c.column().to_string());
            }
        }
        out
    }

    /// Adds a condition, returning the extended predicate.
    pub fn with(&self, condition: Condition) -> Self {
        let mut conds = self.conditions.clone();
        conds.push(condition);
        ConjunctivePredicate::new(conds)
    }

    /// A canonical form for deduplication: the rendered conditions, sorted.
    /// Conjunction is commutative, so `a AND b` and `b AND a` describe the
    /// same tuple set and share a key — unlike `to_string()`, which keeps
    /// the original conjunct order.
    pub fn canonical_key(&self) -> String {
        let mut parts: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
        parts.sort_unstable();
        parts.join(" AND ")
    }

    /// Converts to an evaluable [`Expr`] (the empty predicate becomes `TRUE`).
    pub fn to_expr(&self) -> Expr {
        Expr::conjunction(self.conditions.iter().map(|c| c.to_expr()).collect())
            .unwrap_or_else(|| lit(true))
    }

    /// The exclusion form used by clean-as-you-query: `NOT (predicate)`.
    pub fn to_exclusion_expr(&self) -> Expr {
        self.to_expr().not()
    }

    /// Evaluates the predicate against one row.
    pub fn matches(&self, table: &Table, row: RowId) -> bool {
        self.conditions.iter().all(|c| c.to_expr().matches(table, row).unwrap_or(false))
    }

    /// Compiles the predicate against a table: column indices are resolved
    /// and literals coerced once, so per-row evaluation is allocation-free
    /// typed comparisons instead of a recursive [`Expr`] walk. Fails when a
    /// condition's types do not line up with the schema (the same cases
    /// where [`Expr::validate`] or evaluation would fail); callers fall
    /// back to the expression path then.
    pub fn compile<'t>(&self, table: &'t Table) -> Result<CompiledPredicate<'t>, StorageError> {
        let conds = self
            .conditions
            .iter()
            .map(|c| CompiledCondition::compile(c, table))
            .collect::<Result<_, _>>()?;
        Ok(CompiledPredicate { conds })
    }

    /// Returns all visible rows matched by the predicate.
    pub fn matching_rows(&self, table: &Table) -> Vec<RowId> {
        if let Ok(compiled) = self.compile(table) {
            return table
                .visible_row_ids()
                .filter(|&r| compiled.matches(r) == Some(true))
                .collect();
        }
        table.visible_row_ids().filter(|&r| self.matches(table, r)).collect()
    }

    /// Fraction of the given rows matched by the predicate (0 when `rows` is
    /// empty).
    pub fn coverage(&self, table: &Table, rows: &[RowId]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let matched = rows.iter().filter(|&&r| self.matches(table, r)).count();
        matched as f64 / rows.len() as f64
    }

    /// Fraction of all visible rows matched — the predicate's selectivity.
    pub fn selectivity(&self, table: &Table) -> f64 {
        let total = table.visible_rows();
        if total == 0 {
            return 0.0;
        }
        self.matching_rows(table).len() as f64 / total as f64
    }
}

impl fmt::Display for ConjunctivePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conditions.is_empty() {
            return f.write_str("TRUE");
        }
        let parts: Vec<String> = self.conditions.iter().map(|c| c.to_string()).collect();
        f.write_str(&parts.join(" AND "))
    }
}

/// A [`ConjunctivePredicate`] compiled against one table (see
/// [`ConjunctivePredicate::compile`]). Evaluation implements the same SQL
/// three-valued logic as the predicate's [`Expr`] form, bit-for-bit: value
/// comparisons go through `f64::total_cmp` exactly like
/// [`Value::total_cmp`], and a NULL operand yields unknown (`None`).
#[derive(Debug, Clone)]
pub struct CompiledPredicate<'t> {
    conds: Vec<CompiledCondition<'t>>,
}

impl CompiledPredicate<'_> {
    /// Three-valued evaluation of the conjunction on one row:
    /// `Some(true)` / `Some(false)` / `None` (= SQL NULL, unknown). The
    /// trivial predicate is `TRUE` everywhere, matching its `Expr` form.
    pub fn matches(&self, row: RowId) -> Option<bool> {
        let mut saw_null = false;
        for c in &self.conds {
            match c.eval(row.index()) {
                Some(false) => return Some(false),
                None => saw_null = true,
                Some(true) => {}
            }
        }
        if saw_null {
            None
        } else {
            Some(true)
        }
    }
}

/// One compiled condition: a typed comparison bound to a column reference.
#[derive(Debug, Clone)]
enum CompiledCondition<'t> {
    /// Matches every row (the unbounded range compiles to `TRUE`, exactly
    /// like [`Condition::to_expr`]).
    True,
    /// Always NULL: a comparison against a NULL literal, or any condition
    /// on a column whose declared type is NULL.
    Unknown,
    /// `column = v` / `column <> v` on a numeric (or bool) column.
    NumEquals { column: &'t Column, value: f64, negate: bool },
    /// `column = v` / `column <> v` on a string column.
    StrEquals { column: &'t Column, value: String, negate: bool },
    /// A (half-)open numeric range; bound flag = inclusive.
    NumRange { column: &'t Column, low: Option<(f64, bool)>, high: Option<(f64, bool)> },
    /// `column IN (...)` against the numerically coercible set members.
    NumInSet { column: &'t Column, values: Vec<f64>, with_null: bool },
    /// `column IN (...)` against the string set members.
    StrInSet { column: &'t Column, values: Vec<String>, with_null: bool },
    /// Case-insensitive substring containment; the needle is pre-lowercased.
    StrContains { column: &'t Column, needle_lower: String },
}

impl<'t> CompiledCondition<'t> {
    fn compile(cond: &Condition, table: &'t Table) -> Result<Self, StorageError> {
        let idx = table.schema().resolve(cond.column())?;
        let dtype = table.schema().field_at(idx).expect("resolved").dtype;
        let column = table.column(idx).expect("resolved");
        if dtype == DataType::Null {
            // Every value of the column is NULL, so every comparison is
            // unknown — except the unbounded range, which is literally TRUE.
            return Ok(match cond {
                Condition::Range { low: None, high: None, .. } => CompiledCondition::True,
                _ => CompiledCondition::Unknown,
            });
        }
        let mismatch = |expected: &str| StorageError::TypeMismatch {
            expected: expected.into(),
            found: dtype,
            context: format!("condition on column '{}'", cond.column()),
        };
        match cond {
            Condition::Equals { value, .. } | Condition::NotEquals { value, .. } => {
                let negate = matches!(cond, Condition::NotEquals { .. });
                match (dtype, value) {
                    (_, Value::Null) => Ok(CompiledCondition::Unknown),
                    (DataType::Str, Value::Str(s)) => {
                        Ok(CompiledCondition::StrEquals { column, value: s.clone(), negate })
                    }
                    (DataType::Str, _) | (_, Value::Str(_)) => Err(mismatch("str")),
                    (DataType::Bool, Value::Bool(b)) => Ok(CompiledCondition::NumEquals {
                        column,
                        value: if *b { 1.0 } else { 0.0 },
                        negate,
                    }),
                    // `compare` refuses bool-vs-numeric, so compilation must too.
                    (DataType::Bool, _) | (_, Value::Bool(_)) => Err(mismatch("bool")),
                    (_, v) => Ok(CompiledCondition::NumEquals {
                        column,
                        value: v.as_f64().expect("numeric literal"),
                        negate,
                    }),
                }
            }
            Condition::Range { low, low_inclusive, high, high_inclusive, .. } => {
                if low.is_none() && high.is_none() {
                    return Ok(CompiledCondition::True);
                }
                if !dtype.is_numeric() {
                    return Err(mismatch("numeric"));
                }
                Ok(CompiledCondition::NumRange {
                    column,
                    low: low.map(|v| (v, *low_inclusive)),
                    high: high.map(|v| (v, *high_inclusive)),
                })
            }
            Condition::InSet { values, .. } => {
                let with_null = values.iter().any(|v| v.is_null());
                if dtype == DataType::Str {
                    // Only string members can equal a string value; the
                    // rest can never match and are dropped.
                    let values = values
                        .iter()
                        .filter_map(|v| match v {
                            Value::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .collect();
                    Ok(CompiledCondition::StrInSet { column, values, with_null })
                } else {
                    // IN uses `Value` equality, which coerces numerics and
                    // bools through f64 — mirror that.
                    let values = values.iter().filter_map(|v| v.as_f64()).collect();
                    Ok(CompiledCondition::NumInSet { column, values, with_null })
                }
            }
            Condition::Contains { pattern, .. } => {
                if dtype != DataType::Str {
                    return Err(mismatch("str"));
                }
                Ok(CompiledCondition::StrContains {
                    column,
                    needle_lower: pattern.to_ascii_lowercase(),
                })
            }
        }
    }

    /// Three-valued evaluation on one row index (`None` = NULL).
    fn eval(&self, row: usize) -> Option<bool> {
        match self {
            CompiledCondition::True => Some(true),
            CompiledCondition::Unknown => None,
            CompiledCondition::NumEquals { column, value, negate } => {
                let v = column.get_f64(row)?;
                Some((v.total_cmp(value) == Ordering::Equal) != *negate)
            }
            CompiledCondition::StrEquals { column, value, negate } => {
                let s = column.get_str(row)?;
                Some((s == value) != *negate)
            }
            CompiledCondition::NumRange { column, low, high } => {
                let v = column.get_f64(row)?;
                let low_ok = low.map_or(true, |(lo, incl)| {
                    let ord = v.total_cmp(&lo);
                    ord == Ordering::Greater || (incl && ord == Ordering::Equal)
                });
                let high_ok = high.map_or(true, |(hi, incl)| {
                    let ord = v.total_cmp(&hi);
                    ord == Ordering::Less || (incl && ord == Ordering::Equal)
                });
                Some(low_ok && high_ok)
            }
            CompiledCondition::NumInSet { column, values, with_null } => {
                let v = column.get_f64(row)?;
                if values.iter().any(|m| v.total_cmp(m) == Ordering::Equal) {
                    Some(true)
                } else if *with_null {
                    None
                } else {
                    Some(false)
                }
            }
            CompiledCondition::StrInSet { column, values, with_null } => {
                let s = column.get_str(row)?;
                if values.iter().any(|m| m == s) {
                    Some(true)
                } else if *with_null {
                    None
                } else {
                    Some(false)
                }
            }
            CompiledCondition::StrContains { column, needle_lower } => {
                let s = column.get_str(row)?;
                Some(contains_ignore_ascii_case(s, needle_lower))
            }
        }
    }
}

/// ASCII-case-insensitive substring search without allocating, equivalent
/// to `haystack.to_ascii_lowercase().contains(needle_lower)` for an
/// already-lowercased needle.
fn contains_ignore_ascii_case(haystack: &str, needle_lower: &str) -> bool {
    let n = needle_lower.as_bytes();
    if n.is_empty() {
        return true;
    }
    let h = haystack.as_bytes();
    if n.len() > h.len() {
        return false;
    }
    h.windows(n.len()).any(|w| w.iter().zip(n).all(|(a, b)| a.eq_ignore_ascii_case(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("voltage", DataType::Float),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("readings", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(15), Value::Float(122.0), Value::Float(2.1), Value::str("ok")],
            vec![Value::Int(15), Value::Float(119.0), Value::Float(2.0), Value::str("ok")],
            vec![Value::Int(3), Value::Float(21.0), Value::Float(2.7), Value::str("ok")],
            vec![
                Value::Int(7),
                Value::Float(22.5),
                Value::Float(2.6),
                Value::str("REATTRIBUTION TO SPOUSE"),
            ],
        ])
        .unwrap();
        t
    }

    #[test]
    fn display_matches_paper_style() {
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::at_least("temp", 100.0),
        ]);
        assert_eq!(p.to_string(), "sensorid = 15 AND temp >= 100.0000");
        assert_eq!(ConjunctivePredicate::always_true().to_string(), "TRUE");
        let c = Condition::between("temp", 10.0, 20.0);
        assert_eq!(c.to_string(), "temp BETWEEN 10.0000 AND 20.0000");
        let c = Condition::contains("memo", "SPOUSE");
        assert_eq!(c.to_string(), "memo LIKE '%SPOUSE%'");
        let c = Condition::in_set("sensorid", vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(c.to_string(), "sensorid IN (1, 2)");
        let c = Condition::not_equals("memo", "ok");
        assert_eq!(c.to_string(), "memo <> 'ok'");
    }

    #[test]
    fn matching_and_coverage() {
        let t = table();
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 120.0),
        ]);
        assert_eq!(p.matching_rows(&t), vec![RowId(0)]);
        assert!((p.selectivity(&t) - 0.25).abs() < 1e-12);
        assert!((p.coverage(&t, &[RowId(0), RowId(1)]) - 0.5).abs() < 1e-12);
        assert_eq!(p.coverage(&t, &[]), 0.0);

        let trivially_true = ConjunctivePredicate::always_true();
        assert!(trivially_true.is_trivial());
        assert_eq!(trivially_true.matching_rows(&t).len(), 4);
    }

    #[test]
    fn exclusion_expr_removes_matches() {
        let t = table();
        let p = ConjunctivePredicate::new(vec![Condition::contains("memo", "spouse")]);
        let keep = p.to_exclusion_expr().filter(&t).unwrap();
        assert_eq!(keep, vec![RowId(0), RowId(1), RowId(2)]);
    }

    #[test]
    fn subsumption_dedup() {
        // temp > 100 subsumes temp > 120 (the latter is more specific), so
        // when both appear the more specific one is kept.
        let p = ConjunctivePredicate::new(vec![
            Condition::above("temp", 100.0),
            Condition::above("temp", 120.0),
        ]);
        assert_eq!(p.complexity(), 1);
        assert_eq!(p.conditions()[0], Condition::above("temp", 120.0));

        // Identical conditions are deduplicated.
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::equals("sensorid", 15),
        ]);
        assert_eq!(p.complexity(), 1);

        // Conditions on different columns are all kept.
        let p = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 100.0),
        ]);
        assert_eq!(p.complexity(), 2);
        assert_eq!(p.columns(), vec!["sensorid".to_string(), "temp".to_string()]);
    }

    #[test]
    fn condition_subsumes() {
        assert!(Condition::above("t", 10.0).subsumes(&Condition::above("t", 20.0)));
        assert!(!Condition::above("t", 20.0).subsumes(&Condition::above("t", 10.0)));
        assert!(!Condition::above("t", 10.0).subsumes(&Condition::above("u", 20.0)));
        assert!(Condition::at_most("t", 30.0).subsumes(&Condition::between("t", 0.0, 20.0)));
        assert!(Condition::in_set("c", vec![Value::Int(1), Value::Int(2)])
            .subsumes(&Condition::equals("c", 1)));
        assert!(!Condition::in_set("c", vec![Value::Int(1)]).subsumes(&Condition::equals("c", 7)));
        assert!(Condition::equals("c", 1).subsumes(&Condition::equals("c", 1)));
        assert!(!Condition::equals("c", 1).subsumes(&Condition::equals("c", 2)));
    }

    #[test]
    fn compiled_matches_expression_three_valued_logic() {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("ok", DataType::Bool),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("r", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(15), Value::Float(122.0), Value::Bool(true), Value::str("fine")],
            vec![Value::Int(15), Value::Null, Value::Bool(false), Value::str("REATTRIBUTION")],
            vec![Value::Int(3), Value::Float(21.0), Value::Null, Value::Null],
            vec![Value::Null, Value::Float(-0.0), Value::Bool(true), Value::str("Reattribution x")],
        ])
        .unwrap();
        let conditions = vec![
            Condition::equals("sensorid", 15),
            Condition::not_equals("sensorid", 15),
            Condition::equals("temp", 122.0),
            Condition::equals("temp", 0.0), // -0.0 vs 0.0: total_cmp says unequal
            Condition::equals("ok", true),
            Condition::not_equals("memo", "fine"),
            Condition::equals("memo", Value::str("fine")),
            Condition::equals("sensorid", Value::Null),
            Condition::above("temp", 21.0),
            Condition::at_least("temp", 21.0),
            Condition::at_most("temp", 21.0),
            Condition::between("temp", 0.0, 122.0),
            Condition::Range {
                column: "temp".into(),
                low: None,
                low_inclusive: false,
                high: None,
                high_inclusive: false,
            },
            Condition::in_set("sensorid", vec![Value::Int(3), Value::Int(15)]),
            Condition::in_set("sensorid", vec![Value::Int(3), Value::Null]),
            Condition::in_set("memo", vec![Value::str("fine"), Value::Int(7)]),
            Condition::contains("memo", "REATTRIBUTION"),
            Condition::contains("memo", ""),
        ];
        // Every single condition and every pair must agree with the Expr
        // path on all rows, under three-valued logic.
        let mut predicates: Vec<ConjunctivePredicate> = Vec::new();
        for c in &conditions {
            predicates.push(ConjunctivePredicate { conditions: vec![c.clone()] });
            for d in &conditions {
                predicates.push(ConjunctivePredicate { conditions: vec![c.clone(), d.clone()] });
            }
        }
        for p in &predicates {
            let compiled = p.compile(&t).expect("all conditions are well-typed");
            let expr = p.to_expr();
            for r in t.visible_row_ids() {
                let via_expr = match expr.eval(&t, r).unwrap() {
                    Value::Bool(b) => Some(b),
                    Value::Null => None,
                    other => panic!("non-boolean predicate value {other:?}"),
                };
                assert_eq!(compiled.matches(r), via_expr, "{p} on row {r:?}");
            }
            // matching_rows (which now uses the compiled path) agrees with
            // the per-condition fallback.
            let fallback: Vec<RowId> = t.visible_row_ids().filter(|&r| p.matches(&t, r)).collect();
            assert_eq!(p.matching_rows(&t), fallback, "{p}");
        }
    }

    #[test]
    fn compile_rejects_mistyped_conditions() {
        let t = table();
        // String equality against a numeric column and vice versa.
        assert!(ConjunctivePredicate::new(vec![Condition::equals("temp", Value::str("x"))])
            .compile(&t)
            .is_err());
        assert!(ConjunctivePredicate::new(vec![Condition::equals("memo", 4)]).compile(&t).is_err());
        // Range and CONTAINS on a string column.
        assert!(ConjunctivePredicate::new(vec![Condition::above("memo", 1.0)])
            .compile(&t)
            .is_err());
        assert!(ConjunctivePredicate::new(vec![Condition::contains("temp", "x")])
            .compile(&t)
            .is_err());
        // Unknown column.
        assert!(ConjunctivePredicate::new(vec![Condition::equals("missing", 1)])
            .compile(&t)
            .is_err());
        // matching_rows falls back to the expression path and still answers.
        let p = ConjunctivePredicate::new(vec![Condition::equals("memo", 4)]);
        assert!(p.matching_rows(&t).is_empty());
    }

    #[test]
    fn canonical_key_ignores_conjunct_order() {
        let a_and_b = ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", 15),
            Condition::above("temp", 100.0),
        ]);
        let b_and_a = ConjunctivePredicate::new(vec![
            Condition::above("temp", 100.0),
            Condition::equals("sensorid", 15),
        ]);
        assert_ne!(a_and_b.to_string(), b_and_a.to_string());
        assert_eq!(a_and_b.canonical_key(), b_and_a.canonical_key());
        // Different predicates keep different keys.
        let other = ConjunctivePredicate::new(vec![Condition::equals("sensorid", 3)]);
        assert_ne!(a_and_b.canonical_key(), other.canonical_key());
        assert_eq!(ConjunctivePredicate::always_true().canonical_key(), "");
    }

    #[test]
    fn with_extends_predicate() {
        let p = ConjunctivePredicate::always_true()
            .with(Condition::equals("sensorid", 15))
            .with(Condition::at_least("voltage", 2.0));
        assert_eq!(p.complexity(), 2);
        let t = table();
        assert_eq!(p.matching_rows(&t), vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn range_to_expr_handles_open_ends() {
        let t = table();
        assert_eq!(Condition::at_most("temp", 22.0).to_expr().filter(&t).unwrap(), vec![RowId(2)]);
        assert_eq!(
            Condition::at_least("temp", 119.0).to_expr().filter(&t).unwrap(),
            vec![RowId(0), RowId(1)]
        );
        let unbounded = Condition::Range {
            column: "temp".into(),
            low: None,
            low_inclusive: false,
            high: None,
            high_inclusive: false,
        };
        assert_eq!(unbounded.to_expr().filter(&t).unwrap().len(), 4);
        assert_eq!(unbounded.to_string(), "temp IS NOT NULL");
    }
}

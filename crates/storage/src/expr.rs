//! Scalar expressions and filters over table rows.
//!
//! Expressions are the shared language between the SQL engine (WHERE
//! clauses, aggregate arguments), the provenance backend (exclusion
//! predicates produced by the Predicate Enumerator) and the dashboard
//! (query rewriting when a ranked predicate is clicked).
//!
//! Evaluation follows SQL three-valued logic: comparisons involving NULL
//! produce NULL, `AND`/`OR` propagate unknowns, and a WHERE filter keeps a
//! row only when the predicate evaluates to `TRUE` (not NULL).

use crate::error::StorageError;
use crate::table::{RowId, Table};
use crate::value::{DataType, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Equality (`=`).
    Eq,
    /// Inequality (`<>`).
    NotEq,
    /// Less than (`<`).
    Lt,
    /// Less than or equal (`<=`).
    LtEq,
    /// Greater than (`>`).
    Gt,
    /// Greater than or equal (`>=`).
    GtEq,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinaryOp {
    /// True for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// True for boolean connectives.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// True for arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div)
    }

    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// `IS NULL` test.
    IsNull,
    /// `IS NOT NULL` test.
    IsNotNull,
}

/// A scalar expression evaluated against a single row of a table.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name.
    Column(String),
    /// A constant value.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr BETWEEN low AND high` (inclusive on both ends).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// Case-insensitive substring containment test on strings
    /// (`memo CONTAINS 'REATTRIBUTION'`), the string predicate DBWipes'
    /// decision trees emit for text attributes.
    Contains {
        /// Expression producing the haystack string.
        expr: Box<Expr>,
        /// Needle to search for.
        pattern: String,
    },
}

/// Builds a column reference expression.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// Builds a literal expression.
pub fn lit(value: impl Into<Value>) -> Expr {
    Expr::Literal(value.into())
}

impl Expr {
    fn binary(self, op: BinaryOp, rhs: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(self), right: Box::new(rhs) }
    }

    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Eq, rhs)
    }
    /// `self <> rhs`
    pub fn not_eq(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::NotEq, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Lt, rhs)
    }
    /// `self <= rhs`
    pub fn lt_eq(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::LtEq, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Gt, rhs)
    }
    /// `self >= rhs`
    pub fn gt_eq(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::GtEq, rhs)
    }
    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::And, rhs)
    }
    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Or, rhs)
    }
    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::Unary { op: UnaryOp::IsNull, expr: Box::new(self) }
    }
    /// `self IS NOT NULL`
    pub fn is_not_null(self) -> Expr {
        Expr::Unary { op: UnaryOp::IsNotNull, expr: Box::new(self) }
    }
    /// `self BETWEEN low AND high`
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        Expr::Between { expr: Box::new(self), low: Box::new(low), high: Box::new(high) }
    }
    /// `self IN (list...)`
    pub fn in_list(self, list: Vec<Expr>) -> Expr {
        Expr::InList { expr: Box::new(self), list, negated: false }
    }
    /// `self NOT IN (list...)`
    pub fn not_in_list(self, list: Vec<Expr>) -> Expr {
        Expr::InList { expr: Box::new(self), list, negated: true }
    }
    /// `self CONTAINS pattern` (case-insensitive substring match).
    pub fn contains(self, pattern: impl Into<String>) -> Expr {
        Expr::Contains { expr: Box::new(self), pattern: pattern.into() }
    }

    /// Collects the distinct column names referenced by the expression,
    /// in first-appearance order.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                if !out.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                    out.push(name.clone());
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Between { expr, low, high } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::Contains { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Validates the expression against a schema, returning the type it
    /// produces. Unknown columns and obviously ill-typed operations are
    /// reported before any row is evaluated.
    pub fn validate(&self, schema: &crate::schema::Schema) -> Result<DataType, StorageError> {
        match self {
            Expr::Column(name) => {
                let idx = schema.resolve(name)?;
                Ok(schema.field_at(idx).expect("resolved").dtype)
            }
            Expr::Literal(v) => Ok(v.data_type()),
            Expr::Binary { op, left, right } => {
                let lt = left.validate(schema)?;
                let rt = right.validate(schema)?;
                if op.is_logical() {
                    for (side, t) in [("left", lt), ("right", rt)] {
                        if !matches!(t, DataType::Bool | DataType::Null) {
                            return Err(StorageError::TypeMismatch {
                                expected: "bool".into(),
                                found: t,
                                context: format!("{side} operand of {op}"),
                            });
                        }
                    }
                    Ok(DataType::Bool)
                } else if op.is_comparison() {
                    if DataType::unify(lt, rt).is_none() {
                        return Err(StorageError::TypeMismatch {
                            expected: lt.name().into(),
                            found: rt,
                            context: format!("comparison {op}"),
                        });
                    }
                    Ok(DataType::Bool)
                } else {
                    for t in [lt, rt] {
                        if !t.is_numeric() && t != DataType::Null {
                            return Err(StorageError::TypeMismatch {
                                expected: "numeric".into(),
                                found: t,
                                context: format!("arithmetic {op}"),
                            });
                        }
                    }
                    Ok(DataType::unify(lt, rt).unwrap_or(DataType::Float))
                }
            }
            Expr::Unary { op, expr } => {
                let t = expr.validate(schema)?;
                match op {
                    UnaryOp::Not => Ok(DataType::Bool),
                    UnaryOp::Neg => {
                        if t.is_numeric() || t == DataType::Null {
                            Ok(if t == DataType::Null { DataType::Float } else { t })
                        } else {
                            Err(StorageError::TypeMismatch {
                                expected: "numeric".into(),
                                found: t,
                                context: "unary minus".into(),
                            })
                        }
                    }
                    UnaryOp::IsNull | UnaryOp::IsNotNull => Ok(DataType::Bool),
                }
            }
            Expr::Between { expr, low, high } => {
                expr.validate(schema)?;
                low.validate(schema)?;
                high.validate(schema)?;
                Ok(DataType::Bool)
            }
            Expr::InList { expr, list, .. } => {
                expr.validate(schema)?;
                for e in list {
                    e.validate(schema)?;
                }
                Ok(DataType::Bool)
            }
            Expr::Contains { expr, .. } => {
                let t = expr.validate(schema)?;
                if t != DataType::Str && t != DataType::Null {
                    return Err(StorageError::TypeMismatch {
                        expected: "str".into(),
                        found: t,
                        context: "CONTAINS".into(),
                    });
                }
                Ok(DataType::Bool)
            }
        }
    }

    /// Evaluates the expression against row `row` of `table`.
    pub fn eval(&self, table: &Table, row: RowId) -> Result<Value, StorageError> {
        match self {
            Expr::Column(name) => table.value_by_name(row, name),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                let l = left.eval(table, row)?;
                let r = right.eval(table, row)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(table, row)?;
                match op {
                    UnaryOp::Not => Ok(match v {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => {
                            return Err(StorageError::Eval(format!(
                                "NOT applied to non-boolean {other}"
                            )))
                        }
                    }),
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(StorageError::Eval(format!("cannot negate {other}"))),
                    },
                    UnaryOp::IsNull => Ok(Value::Bool(v.is_null())),
                    UnaryOp::IsNotNull => Ok(Value::Bool(!v.is_null())),
                }
            }
            Expr::Between { expr, low, high } => {
                let v = expr.eval(table, row)?;
                let lo = low.eval(table, row)?;
                let hi = high.eval(table, row)?;
                let ge = eval_binary(BinaryOp::GtEq, &v, &lo)?;
                let le = eval_binary(BinaryOp::LtEq, &v, &hi)?;
                eval_binary(BinaryOp::And, &ge, &le)
            }
            Expr::InList { expr, list, negated } => {
                let v = expr.eval(table, row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                let mut found = false;
                for item in list {
                    let iv = item.eval(table, row)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if iv == v {
                        found = true;
                        break;
                    }
                }
                let result = if found {
                    Value::Bool(true)
                } else if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                };
                Ok(match (result, negated) {
                    (Value::Bool(b), true) => Value::Bool(!b),
                    (v, _) => v,
                })
            }
            Expr::Contains { expr, pattern } => {
                let v = expr.eval(table, row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Str(s) => Ok(Value::Bool(
                        s.to_ascii_lowercase().contains(&pattern.to_ascii_lowercase()),
                    )),
                    other => Err(StorageError::Eval(format!("CONTAINS applied to {other}"))),
                }
            }
        }
    }

    /// Evaluates the expression as a filter: returns `true` only when the
    /// expression evaluates to boolean `TRUE` (SQL semantics — NULL rows are
    /// filtered out).
    pub fn matches(&self, table: &Table, row: RowId) -> Result<bool, StorageError> {
        Ok(matches!(self.eval(table, row)?, Value::Bool(true)))
    }

    /// Returns the ids of visible rows satisfying the filter.
    ///
    /// When the expression compiles as a boolean tree
    /// ([`crate::predicate::CompiledBoolExpr`] — any nesting of
    /// `AND`/`OR`/`NOT` over per-attribute comparisons), the filter runs
    /// vectorized through the columnar kernels; a successful compile
    /// guarantees the scalar walk could not have errored, so the result is
    /// identical — bit for bit — to [`Expr::filter_scalar`].
    pub fn filter(&self, table: &Table) -> Result<Vec<RowId>, StorageError> {
        if let Ok(compiled) = crate::predicate::CompiledBoolExpr::compile(self, table) {
            crate::predicate::note_bool_vectorized();
            return Ok(compiled.eval_columns().trues.and(&table.visible_row_set()).to_row_ids());
        }
        crate::predicate::note_bool_fallback();
        self.filter_scalar(table)
    }

    /// The scalar reference path of [`Expr::filter`]: a per-row
    /// three-valued expression walk. Public as the oracle the property
    /// tests pin the vectorized path against.
    pub fn filter_scalar(&self, table: &Table) -> Result<Vec<RowId>, StorageError> {
        let mut out = Vec::new();
        for rid in table.visible_row_ids() {
            if self.matches(table, rid)? {
                out.push(rid);
            }
        }
        Ok(out)
    }

    /// Conjoins a list of expressions, returning `None` for an empty list.
    pub fn conjunction(exprs: Vec<Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(|a, b| a.and(b))
    }
}

// The arithmetic and logical-negation builders are real operator-trait
// impls, so `col("a") + lit(1)` and `!expr` build AST nodes with plain
// operator syntax.

/// `self + rhs` (builds the AST node; SQL typing applies at eval time).
impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Add, rhs)
    }
}

/// `self - rhs`
impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Sub, rhs)
    }
}

/// `self * rhs`
impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Mul, rhs)
    }
}

/// `self / rhs`
impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        self.binary(BinaryOp::Div, rhs)
    }
}

/// `-self`
impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary { op: UnaryOp::Neg, expr: Box::new(self) }
    }
}

/// `NOT self`
impl std::ops::Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        Expr::Unary { op: UnaryOp::Not, expr: Box::new(self) }
    }
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value, StorageError> {
    use BinaryOp::*;
    if op.is_logical() {
        // SQL three-valued logic.
        let lb = logical_operand(l)?;
        let rb = logical_operand(r)?;
        return Ok(match op {
            And => match (lb, rb) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            Or => match (lb, rb) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            _ => unreachable!(),
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = compare(l, r)?;
        let b = match op {
            Eq => ord == std::cmp::Ordering::Equal,
            NotEq => ord != std::cmp::Ordering::Equal,
            Lt => ord == std::cmp::Ordering::Less,
            LtEq => ord != std::cmp::Ordering::Greater,
            Gt => ord == std::cmp::Ordering::Greater,
            GtEq => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Bool(b));
    }
    // Arithmetic.
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            Add => Ok(Value::Int(a.wrapping_add(*b))),
            Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            Div => {
                if *b == 0 {
                    Err(StorageError::Eval("division by zero".into()))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(StorageError::Eval(format!(
                        "arithmetic {op} on non-numeric operands {l} and {r}"
                    )))
                }
            };
            let v = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(StorageError::Eval("division by zero".into()));
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
    }
}

fn logical_operand(v: &Value) -> Result<Option<bool>, StorageError> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(StorageError::Eval(format!("boolean operator applied to {other}"))),
    }
}

fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering, StorageError> {
    match (l, r) {
        (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
        (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
        (Value::Str(_), _) | (_, Value::Str(_)) | (Value::Bool(_), _) | (_, Value::Bool(_)) => {
            Err(StorageError::Eval(format!("cannot compare {l} with {r}")))
        }
        _ => {
            let a = l.as_f64().expect("numeric");
            let b = r.as_f64().expect("numeric");
            Ok(a.total_cmp(&b))
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => f.write_str(name),
            Expr::Literal(v) => f.write_str(&v.to_sql_literal()),
            Expr::Binary { op, left, right } => {
                if op.is_logical() {
                    write!(f, "({left} {op} {right})")
                } else {
                    write!(f, "{left} {op} {right}")
                }
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "NOT ({expr})"),
                UnaryOp::Neg => write!(f, "-({expr})"),
                UnaryOp::IsNull => write!(f, "{expr} IS NULL"),
                UnaryOp::IsNotNull => write!(f, "{expr} IS NOT NULL"),
            },
            Expr::Between { expr, low, high } => write!(f, "{expr} BETWEEN {low} AND {high}"),
            Expr::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(f, "{expr} {}IN ({})", if *negated { "NOT " } else { "" }, items.join(", "))
            }
            Expr::Contains { expr, pattern } => {
                write!(f, "{expr} LIKE '%{}%'", pattern.replace('\'', "''"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;
    use std::ops::{Add as _, Div as _, Mul as _, Neg as _, Not as _, Sub as _};

    fn table() -> Table {
        let schema = Schema::of(&[
            ("sensorid", DataType::Int),
            ("temp", DataType::Float),
            ("memo", DataType::Str),
            ("ok", DataType::Bool),
        ]);
        let mut t = Table::new("t", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(1), Value::Float(20.0), Value::str("normal"), Value::Bool(true)],
            vec![
                Value::Int(15),
                Value::Float(120.0),
                Value::str("REATTRIBUTION TO SPOUSE"),
                Value::Bool(false),
            ],
            vec![Value::Int(3), Value::Null, Value::str("refund issued"), Value::Bool(true)],
        ])
        .unwrap();
        t
    }

    #[test]
    fn comparisons_and_filter() {
        let t = table();
        let p = col("temp").gt(lit(100.0));
        assert_eq!(p.filter(&t).unwrap(), vec![RowId(1)]);
        // NULL temp row is excluded, not an error.
        let p = col("temp").lt_eq(lit(200.0));
        assert_eq!(p.filter(&t).unwrap(), vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn three_valued_logic() {
        let t = table();
        // NULL AND false => false; NULL AND true => NULL.
        let null_cmp = col("temp").gt(lit(0.0)); // NULL on row 2
        let and_false = null_cmp.clone().and(lit(false));
        assert_eq!(and_false.eval(&t, RowId(2)).unwrap(), Value::Bool(false));
        let and_true = null_cmp.clone().and(lit(true));
        assert_eq!(and_true.eval(&t, RowId(2)).unwrap(), Value::Null);
        let or_true = null_cmp.clone().or(lit(true));
        assert_eq!(or_true.eval(&t, RowId(2)).unwrap(), Value::Bool(true));
        let or_false = null_cmp.or(lit(false));
        assert_eq!(or_false.eval(&t, RowId(2)).unwrap(), Value::Null);
        // NOT NULL => NULL
        let not_null = col("temp").gt(lit(0.0)).not();
        assert_eq!(not_null.eval(&t, RowId(2)).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let t = table();
        let e = col("temp").mul(lit(2)).add(lit(1.0));
        assert_eq!(e.eval(&t, RowId(0)).unwrap(), Value::Float(41.0));
        let e = col("sensorid").add(lit(1));
        assert_eq!(e.eval(&t, RowId(0)).unwrap(), Value::Int(2));
        let e = col("sensorid").div(lit(0));
        assert!(e.eval(&t, RowId(0)).is_err());
        let e = col("temp").div(lit(0.0));
        assert!(e.eval(&t, RowId(0)).is_err());
        let e = lit(7).sub(lit(2)).eval(&t, RowId(0)).unwrap();
        assert_eq!(e, Value::Int(5));
        let neg = col("temp").neg().eval(&t, RowId(0)).unwrap();
        assert_eq!(neg, Value::Float(-20.0));
    }

    #[test]
    fn null_propagates_through_comparison_and_arithmetic() {
        let t = table();
        assert_eq!(col("temp").gt(lit(1.0)).eval(&t, RowId(2)).unwrap(), Value::Null);
        assert_eq!(col("temp").add(lit(1.0)).eval(&t, RowId(2)).unwrap(), Value::Null);
        assert_eq!(col("temp").neg().eval(&t, RowId(2)).unwrap(), Value::Null);
    }

    #[test]
    fn is_null_checks() {
        let t = table();
        assert_eq!(col("temp").is_null().eval(&t, RowId(2)).unwrap(), Value::Bool(true));
        assert_eq!(col("temp").is_not_null().eval(&t, RowId(2)).unwrap(), Value::Bool(false));
        assert_eq!(col("temp").is_null().eval(&t, RowId(0)).unwrap(), Value::Bool(false));
    }

    #[test]
    fn between_and_in_list() {
        let t = table();
        let p = col("sensorid").between(lit(1), lit(5));
        assert_eq!(p.filter(&t).unwrap(), vec![RowId(0), RowId(2)]);
        let p = col("sensorid").in_list(vec![lit(15), lit(99)]);
        assert_eq!(p.filter(&t).unwrap(), vec![RowId(1)]);
        let p = col("sensorid").not_in_list(vec![lit(15), lit(99)]);
        assert_eq!(p.filter(&t).unwrap(), vec![RowId(0), RowId(2)]);
        // NULL handling inside IN.
        let p = col("temp").in_list(vec![lit(1.0)]);
        assert_eq!(p.eval(&t, RowId(2)).unwrap(), Value::Null);
        let p = col("sensorid").in_list(vec![lit(Value::Null), lit(3)]);
        assert_eq!(p.eval(&t, RowId(0)).unwrap(), Value::Null);
        assert_eq!(p.eval(&t, RowId(2)).unwrap(), Value::Bool(true));
    }

    #[test]
    fn contains_is_case_insensitive() {
        let t = table();
        let p = col("memo").contains("reattribution");
        assert_eq!(p.filter(&t).unwrap(), vec![RowId(1)]);
        assert!(col("sensorid").contains("x").eval(&t, RowId(0)).is_err());
    }

    #[test]
    fn validate_catches_type_errors_and_unknown_columns() {
        let t = table();
        let schema = t.schema();
        assert!(col("missing").gt(lit(1)).validate(schema).is_err());
        assert!(col("memo").add(lit(1)).validate(schema).is_err());
        assert!(col("memo").gt(lit(1)).validate(schema).is_err());
        assert!(col("sensorid").and(lit(true)).validate(schema).is_err());
        assert!(col("sensorid").contains("x").validate(schema).is_err());
        assert!(col("memo").neg().validate(schema).is_err());
        assert_eq!(col("temp").gt(lit(1)).validate(schema).unwrap(), DataType::Bool);
        assert_eq!(col("sensorid").add(lit(1)).validate(schema).unwrap(), DataType::Int);
        assert_eq!(col("sensorid").add(lit(1.5)).validate(schema).unwrap(), DataType::Float);
        assert_eq!(col("ok").and(lit(true)).validate(schema).unwrap(), DataType::Bool);
        assert_eq!(col("memo").contains("x").validate(schema).unwrap(), DataType::Bool);
    }

    #[test]
    fn columns_are_collected_in_order_without_duplicates() {
        let e = col("a").gt(lit(1)).and(col("b").lt(col("A"))).or(col("c").is_null());
        assert_eq!(e.columns(), vec!["a".to_string(), "b".to_string(), "c".to_string()]);
    }

    #[test]
    fn display_renders_sql() {
        let e = col("temp").gt_eq(lit(100.0)).and(col("memo").contains("SPOUSE"));
        assert_eq!(e.to_string(), "(temp >= 100.0 AND memo LIKE '%SPOUSE%')");
        let e = col("sensorid").in_list(vec![lit(1), lit(2)]);
        assert_eq!(e.to_string(), "sensorid IN (1, 2)");
        let e = col("sensorid").between(lit(1), lit(2)).not();
        assert_eq!(e.to_string(), "NOT (sensorid BETWEEN 1 AND 2)");
        let e = col("x").is_not_null();
        assert_eq!(e.to_string(), "x IS NOT NULL");
    }

    #[test]
    fn conjunction_helper() {
        assert!(Expr::conjunction(vec![]).is_none());
        let e = Expr::conjunction(vec![col("a").eq(lit(1)), col("b").eq(lit(2))]).unwrap();
        assert_eq!(e.to_string(), "(a = 1 AND b = 2)");
    }
}

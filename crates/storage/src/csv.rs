//! Minimal CSV import/export for tables.
//!
//! The original DBWipes demo loads the FEC dump and the Intel Lab trace from
//! flat files. The synthetic generators in `dbwipes-data` normally build
//! tables in memory, but examples and users can still round-trip tables
//! through CSV with this module. The dialect is deliberately simple:
//! comma-separated, `"`-quoted fields with `""` escapes, a header row, and
//! the literal empty string for NULL.

use crate::error::StorageError;
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Serialises the visible rows of a table as CSV with a header row.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names = table.schema().names();
    out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for rid in table.visible_row_ids() {
        let row = table.row(rid).expect("visible row");
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => quote(s),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV text (with a header row) into a table, inferring each column's
/// type from its values: `Int` if every non-empty cell parses as an integer,
/// else `Float` if every non-empty cell parses as a number, else `Bool` if
/// every cell is true/false, else `Str`. Empty cells become NULL.
pub fn from_csv(name: &str, text: &str) -> Result<Table, StorageError> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err(StorageError::Csv("missing header row".into()));
    }
    let header = records.remove(0);
    if header.is_empty() {
        return Err(StorageError::Csv("empty header row".into()));
    }
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != header.len() {
            return Err(StorageError::Csv(format!(
                "row {} has {} fields, expected {}",
                i + 1,
                rec.len(),
                header.len()
            )));
        }
    }

    let mut dtypes = Vec::with_capacity(header.len());
    for c in 0..header.len() {
        dtypes.push(infer_type(records.iter().map(|r| r[c].as_str())));
    }
    let schema = Schema::new(
        header
            .iter()
            .zip(dtypes.iter())
            .map(|(n, t)| crate::schema::Field::nullable(n.clone(), *t))
            .collect(),
    )?;
    let mut table = Table::new(name, schema)?;
    for rec in records {
        let mut row = Vec::with_capacity(rec.len());
        for (cell, dtype) in rec.iter().zip(dtypes.iter()) {
            row.push(parse_cell(cell, *dtype)?);
        }
        table.push_row(row)?;
    }
    Ok(table)
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn infer_type<'a>(cells: impl Iterator<Item = &'a str>) -> DataType {
    let mut saw_value = false;
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    for cell in cells {
        if cell.is_empty() {
            continue;
        }
        saw_value = true;
        if cell.parse::<i64>().is_err() {
            all_int = false;
        }
        if cell.parse::<f64>().is_err() {
            all_float = false;
        }
        if !cell.eq_ignore_ascii_case("true") && !cell.eq_ignore_ascii_case("false") {
            all_bool = false;
        }
    }
    if !saw_value {
        return DataType::Str;
    }
    if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else if all_bool {
        DataType::Bool
    } else {
        DataType::Str
    }
}

fn parse_cell(cell: &str, dtype: DataType) -> Result<Value, StorageError> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    let err = |msg: String| StorageError::Csv(msg);
    Ok(match dtype {
        DataType::Int => Value::Int(cell.parse().map_err(|_| err(format!("bad int: {cell}")))?),
        DataType::Float => {
            Value::Float(cell.parse().map_err(|_| err(format!("bad float: {cell}")))?)
        }
        DataType::Bool => Value::Bool(cell.eq_ignore_ascii_case("true")),
        DataType::Timestamp => {
            Value::Timestamp(cell.parse().map_err(|_| err(format!("bad timestamp: {cell}")))?)
        }
        DataType::Str | DataType::Null => Value::Str(cell.to_string()),
    })
}

/// Splits CSV text into records of unescaped fields.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>, StorageError> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record = Vec::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut saw_any = false;
    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                    saw_any = true;
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(StorageError::Csv("unterminated quoted field".into()));
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    // Drop completely empty trailing records produced by trailing newlines.
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn table() -> Table {
        let schema = Schema::of(&[
            ("id", DataType::Int),
            ("amount", DataType::Float),
            ("memo", DataType::Str),
        ]);
        let mut t = Table::new("donations", schema).unwrap();
        t.push_rows(vec![
            vec![Value::Int(1), Value::Float(250.0), Value::str("first, with comma")],
            vec![Value::Int(2), Value::Null, Value::str("says \"hi\"")],
            vec![Value::Int(3), Value::Float(-100.5), Value::str("REATTRIBUTION TO SPOUSE")],
        ])
        .unwrap();
        t
    }

    #[test]
    fn round_trip_preserves_values_and_nulls() {
        let t = table();
        let csv = to_csv(&t);
        let back = from_csv("donations", &csv).unwrap();
        assert_eq!(back.num_rows(), 3);
        assert_eq!(back.schema().field("id").unwrap().dtype, DataType::Int);
        assert_eq!(back.schema().field("amount").unwrap().dtype, DataType::Float);
        assert_eq!(back.schema().field("memo").unwrap().dtype, DataType::Str);
        assert_eq!(back.value_by_name(crate::table::RowId(1), "amount").unwrap(), Value::Null);
        assert_eq!(
            back.value_by_name(crate::table::RowId(0), "memo").unwrap(),
            Value::str("first, with comma")
        );
        assert_eq!(
            back.value_by_name(crate::table::RowId(1), "memo").unwrap(),
            Value::str("says \"hi\"")
        );
        assert_eq!(
            back.value_by_name(crate::table::RowId(2), "amount").unwrap(),
            Value::Float(-100.5)
        );
    }

    #[test]
    fn type_inference() {
        let csv = "a,b,c,d\n1,1.5,true,x\n2,2,false,y\n";
        let t = from_csv("t", csv).unwrap();
        assert_eq!(t.schema().field("a").unwrap().dtype, DataType::Int);
        assert_eq!(t.schema().field("b").unwrap().dtype, DataType::Float);
        assert_eq!(t.schema().field("c").unwrap().dtype, DataType::Bool);
        assert_eq!(t.schema().field("d").unwrap().dtype, DataType::Str);
        assert_eq!(t.value_by_name(crate::table::RowId(1), "c").unwrap(), Value::Bool(false));
    }

    #[test]
    fn empty_column_defaults_to_string() {
        let csv = "a,b\n1,\n2,\n";
        let t = from_csv("t", csv).unwrap();
        assert_eq!(t.schema().field("b").unwrap().dtype, DataType::Str);
        assert_eq!(t.value_by_name(crate::table::RowId(0), "b").unwrap(), Value::Null);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_csv("t", "").is_err());
        assert!(from_csv("t", "a,b\n1\n").is_err());
        assert!(from_csv("t", "a,b\n\"unterminated,1\n").is_err());
    }

    #[test]
    fn deleted_rows_are_not_exported() {
        let mut t = table();
        t.delete_row(crate::table::RowId(1)).unwrap();
        let csv = to_csv(&t);
        assert_eq!(csv.lines().count(), 3); // header + 2 rows
        assert!(!csv.contains("says"));
    }
}

//! Deterministic storage fault injection for chaos tests.
//!
//! A [`FaultInjectingBackend`] wraps any [`StorageBackend`] and injects
//! failures into the *write* path (`save_table` / `save_sidecar`)
//! according to a scripted [`FaultPlan`]. Reads always pass through
//! untouched — recovery code is exercised against real persisted bytes,
//! while the write path sees exactly the failures the plan scripts.
//!
//! Every write attempt (process-wide per backend, 1-based) is matched
//! against the plan's clauses in order; the first matching clause fires.
//! Because the decision is a pure function of the attempt number, the
//! per-target flaky history, and the plan's seed, a failing chaos run
//! reproduces exactly from its plan string.
//!
//! ## Plan grammar
//!
//! A plan is `;`-separated clauses:
//!
//! ```text
//! seed:<u64>                    # seeds the `random` trigger (default 0)
//! every:<n>:<kind>              # attempts n, 2n, 3n, ...
//! at:<n>:<kind>                 # exactly attempt n
//! range:<a>:<b>:<kind>          # attempts a..=b
//! random:<permille>:<kind>      # seeded pseudo-random per attempt
//! ```
//!
//! with `<kind>` one of:
//!
//! * `io` — a transient [`StorageError::Io`] (retry succeeds if the
//!   trigger stops matching),
//! * `enospc` — an out-of-space error, classified *permanent* by
//!   [`StorageError::is_transient`],
//! * `torn@<k>` — the write "crashes" after `k` bytes: when the wrapped
//!   backend is a filesystem directory, a literally truncated snapshot is
//!   left on disk (bypassing the atomic rename, exactly what a power cut
//!   mid-`write(2)` leaves behind), then the error is reported,
//! * `slow@<ms>` — the write succeeds after an injected latency,
//! * `flaky` — transient-then-succeed: the first attempt *per distinct
//!   target* fails with a transient error, every later attempt on the
//!   same target passes through — the canonical retry-loop exercise.
//!
//! Example: `seed:7;at:4:enospc;every:3:io` fails every third write with
//! a transient fault, except attempt 4 which reports a full disk.

use crate::error::StorageError;
use crate::persist::{encode_table, Manifest, StorageBackend};
use crate::table::Table;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a firing clause does to the write it intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with a transient I/O error.
    Io,
    /// Fail with a permanent out-of-space error.
    Enospc,
    /// Crash the write after this many payload bytes, leaving a torn
    /// artifact behind when the inner backend exposes a directory.
    Torn(usize),
    /// Succeed, but only after sleeping this many milliseconds.
    Slow(u64),
    /// Fail the first attempt per distinct target, then succeed.
    Flaky,
}

/// When a clause fires, in terms of the backend's 1-based global write
/// attempt counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Attempts n, 2n, 3n, ...
    Every(u64),
    /// Exactly attempt n.
    At(u64),
    /// Attempts a..=b inclusive.
    Range(u64, u64),
    /// Seeded pseudo-random with this permille probability.
    Random(u64),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Clause {
    trigger: Trigger,
    kind: FaultKind,
}

/// A parsed, deterministic fault schedule. See the module docs for the
/// plan grammar.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    seed: u64,
    clauses: Vec<Clause>,
}

/// SplitMix64: tiny, seedable, and plenty for scheduling faults.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn plan_err(spec: &str, why: &str) -> StorageError {
    StorageError::Eval(format!("bad fault plan clause '{spec}': {why}"))
}

fn parse_num(spec: &str, part: &str) -> Result<u64, StorageError> {
    part.parse::<u64>().map_err(|_| plan_err(spec, &format!("'{part}' is not a number")))
}

fn parse_kind(spec: &str, part: &str) -> Result<FaultKind, StorageError> {
    match part {
        "io" => Ok(FaultKind::Io),
        "enospc" => Ok(FaultKind::Enospc),
        "flaky" => Ok(FaultKind::Flaky),
        other => {
            if let Some(k) = other.strip_prefix("torn@") {
                Ok(FaultKind::Torn(parse_num(spec, k)? as usize))
            } else if let Some(ms) = other.strip_prefix("slow@") {
                Ok(FaultKind::Slow(parse_num(spec, ms)?))
            } else {
                Err(plan_err(spec, &format!("unknown fault kind '{other}'")))
            }
        }
    }
}

impl FaultPlan {
    /// Parses a plan string (see the module docs for the grammar). The
    /// empty string parses to a plan that never fires.
    pub fn parse(plan: &str) -> Result<FaultPlan, StorageError> {
        let mut parsed = FaultPlan::default();
        for spec in plan.split(';') {
            let spec = spec.trim();
            if spec.is_empty() {
                continue;
            }
            let parts: Vec<&str> = spec.split(':').collect();
            match parts.as_slice() {
                ["seed", v] => parsed.seed = parse_num(spec, v)?,
                ["every", n, kind] => {
                    let n = parse_num(spec, n)?;
                    if n == 0 {
                        return Err(plan_err(spec, "every:0 would never fire"));
                    }
                    parsed
                        .clauses
                        .push(Clause { trigger: Trigger::Every(n), kind: parse_kind(spec, kind)? });
                }
                ["at", n, kind] => parsed.clauses.push(Clause {
                    trigger: Trigger::At(parse_num(spec, n)?),
                    kind: parse_kind(spec, kind)?,
                }),
                ["range", a, b, kind] => {
                    let (a, b) = (parse_num(spec, a)?, parse_num(spec, b)?);
                    if a > b {
                        return Err(plan_err(spec, "range start exceeds end"));
                    }
                    parsed.clauses.push(Clause {
                        trigger: Trigger::Range(a, b),
                        kind: parse_kind(spec, kind)?,
                    });
                }
                ["random", permille, kind] => {
                    let p = parse_num(spec, permille)?;
                    if p > 1000 {
                        return Err(plan_err(spec, "permille exceeds 1000"));
                    }
                    parsed.clauses.push(Clause {
                        trigger: Trigger::Random(p),
                        kind: parse_kind(spec, kind)?,
                    });
                }
                _ => return Err(plan_err(spec, "unrecognized clause shape")),
            }
        }
        Ok(parsed)
    }

    /// The fault (if any) scheduled for 1-based write `attempt`. Pure:
    /// the same plan and attempt always decide the same way.
    fn fault_for(&self, attempt: u64) -> Option<FaultKind> {
        self.clauses
            .iter()
            .find(|c| match c.trigger {
                Trigger::Every(n) => attempt % n == 0,
                Trigger::At(n) => attempt == n,
                Trigger::Range(a, b) => (a..=b).contains(&attempt),
                Trigger::Random(permille) => splitmix64(self.seed ^ attempt) % 1000 < permille,
            })
            .map(|c| c.kind)
    }
}

/// A [`StorageBackend`] decorator that injects scripted faults into the
/// write path. See the module docs.
#[derive(Debug)]
pub struct FaultInjectingBackend {
    inner: Box<dyn StorageBackend>,
    plan: FaultPlan,
    /// When the inner backend is a filesystem directory, torn writes
    /// leave a literally truncated artifact here.
    torn_dir: Option<PathBuf>,
    /// Global 1-based write attempt counter (tables + sidecars).
    writes: AtomicU64,
    /// Writes that were failed or delayed by the plan.
    injected: AtomicU64,
    /// Targets whose first (flaky) attempt has already been burned.
    flaky_seen: Mutex<HashMap<String, u64>>,
}

impl FaultInjectingBackend {
    /// Wraps an arbitrary backend. Torn faults report the error but
    /// cannot leave a truncated artifact (use [`Self::with_torn_dir`] or
    /// wrap an [`FsBackend`](crate::FsBackend) whose directory you pass).
    pub fn new(inner: Box<dyn StorageBackend>, plan: FaultPlan) -> FaultInjectingBackend {
        FaultInjectingBackend {
            inner,
            plan,
            torn_dir: None,
            writes: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            flaky_seen: Mutex::new(HashMap::new()),
        }
    }

    /// Like [`Self::new`], but torn table writes additionally leave a
    /// truncated `t<id>.tbl` in `dir` — simulating a power cut during
    /// `write(2)` that bypassed the atomic rename — so recovery code must
    /// survive a checksum-failing snapshot, not just a missing one.
    pub fn with_torn_dir(
        inner: Box<dyn StorageBackend>,
        plan: FaultPlan,
        dir: impl Into<PathBuf>,
    ) -> FaultInjectingBackend {
        let mut backend = FaultInjectingBackend::new(inner, plan);
        backend.torn_dir = Some(dir.into());
        backend
    }

    /// Write attempts seen so far (injected or not).
    pub fn writes_attempted(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Writes the plan failed or delayed.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decides the fate of one write attempt against `target`. Returns
    /// `Ok(())` when the write should proceed (possibly after an injected
    /// delay), or the scripted error.
    fn intercept(&self, target: &str, payload: Option<&[u8]>) -> Result<(), StorageError> {
        let attempt = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        let Some(kind) = self.plan.fault_for(attempt) else { return Ok(()) };
        match kind {
            FaultKind::Io => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(StorageError::Io(format!(
                    "injected transient fault on write #{attempt} ({target})"
                )))
            }
            FaultKind::Enospc => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(StorageError::Io(format!(
                    "injected fault on write #{attempt} ({target}): \
                     No space left on device (os error 28)"
                )))
            }
            FaultKind::Torn(k) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                if let (Some(dir), Some(bytes)) = (&self.torn_dir, payload) {
                    let torn = &bytes[..k.min(bytes.len())];
                    let _ = std::fs::write(dir.join(target), torn);
                }
                Err(StorageError::Io(format!(
                    "injected torn write on #{attempt} ({target}): crashed after {k} bytes"
                )))
            }
            FaultKind::Slow(ms) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
            FaultKind::Flaky => {
                let mut seen = self.flaky_seen.lock().unwrap_or_else(|poison| poison.into_inner());
                let tries = seen.entry(target.to_string()).or_insert(0);
                *tries += 1;
                if *tries == 1 {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    Err(StorageError::Io(format!(
                        "injected flaky fault on write #{attempt} ({target}): \
                         retry will succeed"
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl StorageBackend for FaultInjectingBackend {
    fn save_table(&self, table: &Table) -> Result<u64, StorageError> {
        let target = format!("t{}.tbl", table.id());
        // Encode lazily only when a torn artifact may be needed; the
        // inner backend re-encodes on the success path.
        let payload = if self.torn_dir.is_some() { Some(encode_table(table)) } else { None };
        self.intercept(&target, payload.as_deref())?;
        self.inner.save_table(table)
    }

    fn load_table(&self, table_id: u64) -> Result<Table, StorageError> {
        self.inner.load_table(table_id)
    }

    fn list_manifest(&self) -> Result<Manifest, StorageError> {
        self.inner.list_manifest()
    }

    fn evict(&self, table_id: u64) -> Result<(), StorageError> {
        self.inner.evict(table_id)
    }

    fn save_sidecar(
        &self,
        table_id: u64,
        version: u64,
        kind: &str,
        bytes: &[u8],
    ) -> Result<u64, StorageError> {
        self.intercept(&format!("s{table_id}-{version}-{kind}.bin"), Some(bytes))?;
        self.inner.save_sidecar(table_id, version, kind, bytes)
    }

    fn load_sidecar(
        &self,
        table_id: u64,
        version: u64,
        kind: &str,
    ) -> Result<Option<Vec<u8>>, StorageError> {
        self.inner.load_sidecar(table_id, version, kind)
    }

    fn bytes_on_disk(&self) -> Result<u64, StorageError> {
        self.inner.bytes_on_disk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::FsBackend;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};
    use std::fs;
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static TEST_DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> TempDir {
            let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("dbwipes-faults-{}-{n}", std::process::id()));
            fs::create_dir_all(&path).unwrap();
            TempDir(path)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn small_table() -> Table {
        let mut t = Table::new(
            "readings",
            Schema::of(&[("sensorid", DataType::Int), ("temp", DataType::Float)]),
        )
        .unwrap();
        for i in 0..32i64 {
            t.push_row(vec![Value::Int(i % 4), Value::Float(20.0 + i as f64)]).unwrap();
        }
        t
    }

    fn faulty(dir: &Path, plan: &str) -> FaultInjectingBackend {
        let inner = FsBackend::open(dir).unwrap();
        FaultInjectingBackend::with_torn_dir(Box::new(inner), FaultPlan::parse(plan).unwrap(), dir)
    }

    #[test]
    fn plan_parser_accepts_the_documented_grammar() {
        let plan = FaultPlan::parse(
            "seed:7; every:3:io; at:4:enospc; range:10:12:torn@16; random:250:slow@5",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.clauses.len(), 4);
        assert_eq!(plan.clauses[0], Clause { trigger: Trigger::Every(3), kind: FaultKind::Io });
        assert_eq!(plan.clauses[1], Clause { trigger: Trigger::At(4), kind: FaultKind::Enospc });
        assert_eq!(
            plan.clauses[2],
            Clause { trigger: Trigger::Range(10, 12), kind: FaultKind::Torn(16) }
        );
        assert_eq!(
            plan.clauses[3],
            Clause { trigger: Trigger::Random(250), kind: FaultKind::Slow(5) }
        );
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse("  ;; ").unwrap(), FaultPlan::default());
    }

    #[test]
    fn plan_parser_rejects_malformed_clauses() {
        for bad in
            ["every:0:io", "every:x:io", "at:3:unknown", "range:9:3:io", "random:1001:io", "nope"]
        {
            assert!(FaultPlan::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn every_nth_write_fails_deterministically() {
        let dir = TempDir::new();
        let backend = faulty(dir.path(), "every:3:io");
        let t = small_table();
        let mut outcomes = Vec::new();
        for _ in 0..9 {
            outcomes.push(backend.save_table(&t).is_ok());
        }
        assert_eq!(outcomes, vec![true, true, false, true, true, false, true, true, false]);
        assert_eq!(backend.writes_attempted(), 9);
        assert_eq!(backend.faults_injected(), 3);
        // The injected error is transient: a retry (attempt 10) succeeds.
        assert!(backend.save_table(&t).is_ok());
    }

    #[test]
    fn seeded_random_schedule_reproduces_exactly() {
        let decide = |plan: &str| {
            let plan = FaultPlan::parse(plan).unwrap();
            (1..=64).map(|a| plan.fault_for(a).is_some()).collect::<Vec<bool>>()
        };
        let a = decide("seed:42;random:300:io");
        assert_eq!(a, decide("seed:42;random:300:io"), "same seed, same schedule");
        assert_ne!(a, decide("seed:43;random:300:io"), "different seed, different schedule");
        let fired = a.iter().filter(|f| **f).count();
        assert!((5..=35).contains(&fired), "~30% of 64 attempts, got {fired}");
    }

    #[test]
    fn enospc_is_permanent_and_io_is_transient() {
        let dir = TempDir::new();
        let backend = faulty(dir.path(), "at:1:io;at:2:enospc");
        let t = small_table();
        let io = backend.save_table(&t).unwrap_err();
        assert!(io.is_transient(), "plain io fault should be retryable: {io}");
        let enospc = backend.save_table(&t).unwrap_err();
        assert!(!enospc.is_transient(), "enospc must be permanent: {enospc}");
        assert!(enospc.to_string().contains("No space left"));
    }

    #[test]
    fn torn_write_leaves_truncated_snapshot_that_fails_decode() {
        let dir = TempDir::new();
        let t = small_table();
        let backend = faulty(dir.path(), "at:2:torn@16");
        backend.save_table(&t).unwrap();
        let whole = fs::read(dir.path().join(format!("t{}.tbl", t.id()))).unwrap();
        assert!(whole.len() > 16);

        let mut t2 = t.clone();
        t2.push_row(vec![Value::Int(9), Value::Float(9.0)]).unwrap();
        let err = backend.save_table(&t2).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let torn = fs::read(dir.path().join(format!("t{}.tbl", t.id()))).unwrap();
        assert_eq!(torn.len(), 16, "the torn artifact is literally truncated");
        assert!(crate::persist::decode_table(&torn).is_err(), "torn bytes must not decode");
        // The manifest still references the pre-crash state; a recovery
        // that trusts checksums will reject the torn file instead of
        // serving half a table.
        assert!(backend.load_table(t.id()).is_err());
    }

    #[test]
    fn flaky_fails_once_per_target_then_succeeds() {
        let dir = TempDir::new();
        let backend = faulty(dir.path(), "every:1:flaky");
        let t = small_table();
        assert!(backend.save_table(&t).is_err(), "first attempt on the table fails");
        assert!(backend.save_table(&t).is_ok(), "retry on the same target succeeds");
        assert!(backend.save_sidecar(t.id(), t.version(), "aggs", b"x").is_err());
        assert!(backend.save_sidecar(t.id(), t.version(), "aggs", b"x").is_ok());
    }

    #[test]
    fn slow_faults_delay_but_do_not_fail() {
        let dir = TempDir::new();
        let backend = faulty(dir.path(), "every:1:slow@5");
        let t = small_table();
        let start = std::time::Instant::now();
        backend.save_table(&t).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(5));
        assert_eq!(backend.faults_injected(), 1);
    }

    #[test]
    fn reads_pass_through_even_when_every_write_fails() {
        let dir = TempDir::new();
        let t = small_table();
        // Persist cleanly first, then wrap with an always-fail plan.
        FsBackend::open(dir.path()).unwrap().save_table(&t).unwrap();
        let backend = faulty(dir.path(), "every:1:io");
        assert!(backend.save_table(&t).is_err());
        let restored = backend.load_table(t.id()).unwrap();
        assert_eq!(restored.num_rows(), t.num_rows());
        assert_eq!(backend.list_manifest().unwrap().entries.len(), 1);
        assert!(backend.bytes_on_disk().unwrap() > 0);
    }
}

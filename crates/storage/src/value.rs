//! Dynamically typed scalar values and their data types.
//!
//! DBWipes operates over relational tables whose cells are [`Value`]s. The
//! value model is intentionally small — it covers exactly the types used by
//! the paper's two demo datasets (FEC campaign contributions and the Intel
//! Lab sensor readings): 64-bit integers, 64-bit floats, UTF-8 strings,
//! booleans, timestamps (seconds since an arbitrary epoch) and SQL `NULL`.
//!
//! Values implement a *total* ordering and hashing so that they can be used
//! directly as group-by keys: floats are compared by their IEEE-754 total
//! order (NaN compares equal to itself and sorts last), and `NULL` sorts
//! before every non-null value.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The logical type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// SQL NULL with no further type information.
    Null,
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Str,
    /// Timestamp measured in whole seconds since an arbitrary epoch.
    Timestamp,
}

impl DataType {
    /// Returns true if the type is numeric (`Int`, `Float` or `Timestamp`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Timestamp)
    }

    /// Returns the name used when pretty-printing schemas.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Null => "null",
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Timestamp => "timestamp",
        }
    }

    /// The common super-type of two types when used together in an
    /// arithmetic or comparison expression, if one exists.
    pub fn unify(a: DataType, b: DataType) -> Option<DataType> {
        use DataType::*;
        if a == b {
            return Some(a);
        }
        match (a, b) {
            (Null, other) | (other, Null) => Some(other),
            (Int, Float) | (Float, Int) => Some(Float),
            (Int, Timestamp) | (Timestamp, Int) => Some(Timestamp),
            (Float, Timestamp) | (Timestamp, Float) => Some(Float),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Timestamp in whole seconds since an arbitrary epoch.
    Timestamp(i64),
}

impl Value {
    /// Returns the [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
            Value::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a float if it is numeric.
    ///
    /// Integers and timestamps are widened losslessly (for the magnitudes
    /// used here); `NULL` and non-numeric values return `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Timestamp(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interprets the value as an integer if it is an integer or timestamp.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Timestamp(v) => Some(*v),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Interprets the value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Interprets the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Builds a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Compares two values using the total order described in the module
    /// docs. Values of different numeric types are compared numerically;
    /// otherwise values are ordered by type first
    /// (`Null < Bool < numeric < Str`).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.total_cmp(&b),
                _ => self.type_rank().cmp(&other.type_rank()),
            },
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Renders the value as it would appear inside a SQL literal.
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format_float(*v),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Timestamp(v) => v.to_string(),
        }
    }
}

/// Formats a float without superfluous trailing zeros but always with a
/// decimal point so that it round-trips as a float literal.
pub(crate) fn format_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        let s = format!("{v}");
        s
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Integers and floats that compare equal must hash equally,
            // so hash every numeric value through its f64 bit pattern.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                let canon = if v.is_nan() { f64::NAN } else { *v };
                // Normalise -0.0 and +0.0 to the same bucket.
                let canon = if canon == 0.0 { 0.0 } else { canon };
                canon.to_bits().hash(state);
            }
            Value::Timestamp(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => f.write_str(&format_float(*v)),
            Value::Str(s) => f.write_str(s),
            Value::Timestamp(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_type_names() {
        assert_eq!(DataType::Int.name(), "int");
        assert_eq!(DataType::Float.to_string(), "float");
        assert_eq!(DataType::Str.name(), "str");
    }

    #[test]
    fn numeric_types_are_numeric() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(DataType::Timestamp.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn unify_coerces_numerics() {
        assert_eq!(DataType::unify(DataType::Int, DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::unify(DataType::Null, DataType::Str), Some(DataType::Str));
        assert_eq!(DataType::unify(DataType::Str, DataType::Int), None);
        assert_eq!(DataType::unify(DataType::Int, DataType::Int), Some(DataType::Int));
    }

    #[test]
    fn int_and_float_compare_numerically() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(-1.0) < Value::Int(0));
    }

    #[test]
    fn equal_numerics_hash_equally() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Float(42.0)));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Str(String::new()));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn nan_is_self_equal() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(hash_of(&Value::Float(f64::NAN)), hash_of(&Value::Float(f64::NAN)));
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::str("apple") < Value::str("banana"));
        assert!(Value::Int(7) < Value::str(""));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Timestamp(9).as_i64(), Some(9));
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_f64(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn sql_literals() {
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Int(3).to_sql_literal(), "3");
        assert_eq!(Value::Float(3.5).to_sql_literal(), "3.5");
        assert_eq!(Value::Float(3.0).to_sql_literal(), "3.0");
        assert_eq!(Value::str("O'Brien").to_sql_literal(), "'O''Brien'");
        assert_eq!(Value::Bool(true).to_sql_literal(), "TRUE");
    }

    #[test]
    fn display_round_trips_reasonably() {
        assert_eq!(Value::Int(12).to_string(), "12");
        assert_eq!(Value::Float(1.25).to_string(), "1.25");
        assert_eq!(Value::str("hello").to_string(), "hello");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.0f64), Value::Float(2.0));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from("s".to_string()), Value::str("s"));
    }
}

//! Typed columnar storage.
//!
//! A [`Column`] stores one attribute of a table in a dense, typed vector
//! with a parallel validity mask for NULLs. Keeping columns typed (rather
//! than `Vec<Value>`) keeps aggregate scans cache friendly, which matters
//! for the provenance-overhead experiments where the same table is scanned
//! many times.

use crate::error::StorageError;
use crate::value::{DataType, Value};

/// Typed backing storage of a column.
///
/// Crate-visible so the vectorized condition kernels in
/// [`crate::predicate`] can scan the typed vectors directly instead of
/// dispatching on the variant per row.
#[derive(Debug, Clone)]
pub(crate) enum ColumnData {
    Bool(Vec<bool>),
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<String>),
    Timestamp(Vec<i64>),
}

/// A single column of a table: a typed vector plus a validity mask.
#[derive(Debug, Clone)]
pub struct Column {
    dtype: DataType,
    data: ColumnData,
    /// `validity[i]` is false when row `i` is NULL in this column.
    validity: Vec<bool>,
}

impl Column {
    /// Creates an empty column of the given type.
    ///
    /// `DataType::Null` columns are not supported; use a nullable column of
    /// a concrete type instead.
    pub fn new(dtype: DataType) -> Result<Self, StorageError> {
        let data = match dtype {
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Timestamp => ColumnData::Timestamp(Vec::new()),
            DataType::Null => {
                return Err(StorageError::TypeMismatch {
                    expected: "a concrete column type".into(),
                    found: DataType::Null,
                    context: "Column::new".into(),
                })
            }
        };
        Ok(Column { dtype, data, validity: Vec::new() })
    }

    /// Creates an empty column with pre-reserved capacity.
    pub fn with_capacity(dtype: DataType, cap: usize) -> Result<Self, StorageError> {
        let mut c = Column::new(dtype)?;
        match &mut c.data {
            ColumnData::Bool(v) => v.reserve(cap),
            ColumnData::Int(v) => v.reserve(cap),
            ColumnData::Float(v) => v.reserve(cap),
            ColumnData::Str(v) => v.reserve(cap),
            ColumnData::Timestamp(v) => v.reserve(cap),
        }
        c.validity.reserve(cap);
        Ok(c)
    }

    /// The column's data type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Number of entries (including NULLs).
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True when the column has no entries.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Appends a value, coercing integers to floats (and vice versa when
    /// lossless) so that generators can be sloppy about `3` vs `3.0`.
    pub fn push(&mut self, value: Value) -> Result<(), StorageError> {
        if value.is_null() {
            self.push_null();
            return Ok(());
        }
        let mismatch = |found: DataType, dtype: DataType| StorageError::TypeMismatch {
            expected: dtype.name().to_string(),
            found,
            context: "Column::push".into(),
        };
        match (&mut self.data, &value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v.push(*b),
            (ColumnData::Int(v), Value::Int(i)) => v.push(*i),
            (ColumnData::Int(v), Value::Float(f)) if f.fract() == 0.0 => v.push(*f as i64),
            (ColumnData::Float(v), Value::Float(f)) => v.push(*f),
            (ColumnData::Float(v), Value::Int(i)) => v.push(*i as f64),
            (ColumnData::Str(v), Value::Str(s)) => v.push(s.clone()),
            (ColumnData::Timestamp(v), Value::Timestamp(t)) => v.push(*t),
            (ColumnData::Timestamp(v), Value::Int(i)) => v.push(*i),
            (_, other) => return Err(mismatch(other.data_type(), self.dtype)),
        }
        self.validity.push(true);
        Ok(())
    }

    /// Appends a NULL entry.
    pub fn push_null(&mut self) {
        match &mut self.data {
            ColumnData::Bool(v) => v.push(false),
            ColumnData::Int(v) => v.push(0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Str(v) => v.push(String::new()),
            ColumnData::Timestamp(v) => v.push(0),
        }
        self.validity.push(false);
    }

    /// Returns the value at `row`, or `None` when out of bounds.
    pub fn get(&self, row: usize) -> Option<Value> {
        if row >= self.validity.len() {
            return None;
        }
        if !self.validity[row] {
            return Some(Value::Null);
        }
        Some(match &self.data {
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
            ColumnData::Timestamp(v) => Value::Timestamp(v[row]),
        })
    }

    /// Returns the value at `row` as an `f64` when the column is numeric and
    /// the entry is non-NULL. This is the hot path used by aggregates.
    #[inline]
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        if row >= self.validity.len() || !self.validity[row] {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[row] as f64),
            ColumnData::Float(v) => Some(v[row]),
            ColumnData::Timestamp(v) => Some(v[row] as f64),
            ColumnData::Bool(v) => Some(if v[row] { 1.0 } else { 0.0 }),
            ColumnData::Str(_) => None,
        }
    }

    /// Returns the string at `row` without cloning when the column is a
    /// string column and the entry is non-NULL.
    #[inline]
    pub fn get_str(&self, row: usize) -> Option<&str> {
        if row >= self.validity.len() || !self.validity[row] {
            return None;
        }
        match &self.data {
            ColumnData::Str(v) => Some(v[row].as_str()),
            _ => None,
        }
    }

    /// True when the entry at `row` is NULL (out-of-bounds counts as NULL).
    pub fn is_null(&self, row: usize) -> bool {
        self.validity.get(row).map(|v| !v).unwrap_or(true)
    }

    /// Number of non-NULL entries.
    pub fn non_null_count(&self) -> usize {
        self.validity.iter().filter(|v| **v).count()
    }

    /// Iterates over all values (including NULLs) in row order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("in bounds"))
    }

    /// The typed backing vector (for the columnar kernels).
    pub(crate) fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity mask (`false` = NULL), aligned with the data vector.
    pub(crate) fn validity(&self) -> &[bool] {
        &self.validity
    }

    /// Reassembles a column from decoded snapshot parts, validating that
    /// the data variant matches `dtype` and that data and validity vectors
    /// are the same length (the persistence layer's restore path).
    pub(crate) fn from_parts(
        dtype: DataType,
        data: ColumnData,
        validity: Vec<bool>,
    ) -> Result<Self, StorageError> {
        let (variant, len) = match &data {
            ColumnData::Bool(v) => (DataType::Bool, v.len()),
            ColumnData::Int(v) => (DataType::Int, v.len()),
            ColumnData::Float(v) => (DataType::Float, v.len()),
            ColumnData::Str(v) => (DataType::Str, v.len()),
            ColumnData::Timestamp(v) => (DataType::Timestamp, v.len()),
        };
        if variant != dtype {
            return Err(StorageError::Corrupt(format!(
                "column segment holds {} data but declares dtype {}",
                variant.name(),
                dtype.name()
            )));
        }
        if len != validity.len() {
            return Err(StorageError::Corrupt(format!(
                "column segment has {len} values but {} validity bits",
                validity.len()
            )));
        }
        Ok(Column { dtype, data, validity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut c = Column::new(DataType::Int).unwrap();
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(-7)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Some(Value::Int(1)));
        assert_eq!(c.get(1), Some(Value::Null));
        assert_eq!(c.get(2), Some(Value::Int(-7)));
        assert_eq!(c.get(3), None);
        assert_eq!(c.non_null_count(), 2);
        assert!(c.is_null(1));
        assert!(!c.is_null(0));
        assert!(c.is_null(99));
    }

    #[test]
    fn numeric_coercion_on_push() {
        let mut f = Column::new(DataType::Float).unwrap();
        f.push(Value::Int(3)).unwrap();
        assert_eq!(f.get(0), Some(Value::Float(3.0)));

        let mut i = Column::new(DataType::Int).unwrap();
        i.push(Value::Float(4.0)).unwrap();
        assert_eq!(i.get(0), Some(Value::Int(4)));
        assert!(i.push(Value::Float(4.5)).is_err());

        let mut t = Column::new(DataType::Timestamp).unwrap();
        t.push(Value::Int(100)).unwrap();
        assert_eq!(t.get(0), Some(Value::Timestamp(100)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::new(DataType::Str).unwrap();
        assert!(c.push(Value::Int(1)).is_err());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn null_column_type_rejected() {
        assert!(Column::new(DataType::Null).is_err());
    }

    #[test]
    fn get_f64_and_get_str_fast_paths() {
        let mut c = Column::new(DataType::Float).unwrap();
        c.push(Value::Float(2.5)).unwrap();
        c.push_null();
        assert_eq!(c.get_f64(0), Some(2.5));
        assert_eq!(c.get_f64(1), None);
        assert_eq!(c.get_str(0), None);

        let mut s = Column::new(DataType::Str).unwrap();
        s.push(Value::str("hi")).unwrap();
        assert_eq!(s.get_str(0), Some("hi"));
        assert_eq!(s.get_f64(0), None);

        let mut b = Column::new(DataType::Bool).unwrap();
        b.push(Value::Bool(true)).unwrap();
        assert_eq!(b.get_f64(0), Some(1.0));
    }

    #[test]
    fn iter_visits_all_rows() {
        let mut c = Column::with_capacity(DataType::Int, 4).unwrap();
        for i in 0..4 {
            c.push(Value::Int(i)).unwrap();
        }
        let collected: Vec<Value> = c.iter().collect();
        assert_eq!(collected, vec![Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(3)]);
    }
}

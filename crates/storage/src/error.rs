//! Error type shared by the storage layer.

use crate::value::DataType;
use std::fmt;

/// Errors produced by the storage layer (tables, columns, expressions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A schema contained two columns with the same name.
    DuplicateColumn(String),
    /// A referenced column does not exist in the schema.
    UnknownColumn {
        /// The column name that failed to resolve.
        column: String,
        /// The columns that are actually available.
        available: Vec<String>,
    },
    /// A value's type did not match the column or expression type.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        found: DataType,
        /// Where the mismatch occurred (column name, operator, ...).
        context: String,
    },
    /// A row had the wrong number of values for the table schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The offending row index.
        row: usize,
        /// The number of rows in the table.
        len: usize,
    },
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// An expression could not be evaluated (division by zero, bad operand
    /// types discovered at runtime, ...).
    Eval(String),
    /// CSV parsing or serialization failure.
    Csv(String),
    /// An operating-system I/O failure in the persistence layer. Carries
    /// the rendered message (not the `std::io::Error` itself) so the error
    /// type stays `Clone + PartialEq`.
    Io(String),
    /// A persisted snapshot failed structural validation: bad magic bytes,
    /// unsupported format version, truncated data, or a checksum mismatch.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::DuplicateColumn(name) => write!(f, "duplicate column name: {name}"),
            StorageError::UnknownColumn { column, available } => {
                write!(f, "unknown column '{column}' (available: {})", available.join(", "))
            }
            StorageError::TypeMismatch { expected, found, context } => {
                write!(f, "type mismatch in {context}: expected {expected}, found {found}")
            }
            StorageError::ArityMismatch { expected, found } => {
                write!(f, "row has {found} values but schema has {expected} columns")
            }
            StorageError::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds for table with {len} rows")
            }
            StorageError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            StorageError::TableExists(name) => write!(f, "table already exists: {name}"),
            StorageError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            StorageError::Csv(msg) => write!(f, "csv error: {msg}"),
            StorageError::Io(msg) => write!(f, "io error: {msg}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl StorageError {
    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// The persistence retry loop uses this to separate *transient* faults
    /// (interrupted writes, flaky devices — generic [`StorageError::Io`])
    /// from *permanent* ones that retrying cannot fix: a full disk
    /// (ENOSPC stays full on the retry timescale), structural corruption,
    /// and every logical error (schema, arity, unknown table, ...).
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io(msg) => {
                let lower = msg.to_ascii_lowercase();
                !(lower.contains("no space left") || lower.contains("enospc"))
            }
            _ => false,
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = StorageError::UnknownColumn {
            column: "x".into(),
            available: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("unknown column 'x'"));
        assert!(e.to_string().contains("a, b"));

        let e = StorageError::TypeMismatch {
            expected: "numeric".into(),
            found: DataType::Str,
            context: "avg(temp)".into(),
        };
        assert!(e.to_string().contains("avg(temp)"));
        assert!(e.to_string().contains("str"));

        assert!(StorageError::ArityMismatch { expected: 3, found: 2 }
            .to_string()
            .contains("2 values"));
        assert!(StorageError::RowOutOfBounds { row: 9, len: 3 }.to_string().contains("9"));
        assert!(StorageError::UnknownTable("t".into()).to_string().contains("t"));
        assert!(StorageError::TableExists("t".into()).to_string().contains("exists"));
        assert!(StorageError::Eval("bad".into()).to_string().contains("bad"));
        assert!(StorageError::Csv("bad".into()).to_string().contains("csv"));
        assert!(StorageError::DuplicateColumn("c".into()).to_string().contains("c"));
        assert!(StorageError::Io("disk full".into()).to_string().contains("disk full"));
        assert!(StorageError::Corrupt("bad magic".into()).to_string().contains("bad magic"));
    }

    #[test]
    fn transient_classification_separates_io_from_permanent_faults() {
        assert!(StorageError::Io("writing /tmp/x: interrupted".into()).is_transient());
        assert!(StorageError::Io("device flaked".into()).is_transient());
        // A full disk stays full on the retry timescale.
        assert!(!StorageError::Io("No space left on device (os error 28)".into()).is_transient());
        assert!(!StorageError::Io("injected ENOSPC".into()).is_transient());
        // Corruption and logical errors never heal by retrying.
        assert!(!StorageError::Corrupt("checksum mismatch".into()).is_transient());
        assert!(!StorageError::UnknownTable("t".into()).is_transient());
        assert!(!StorageError::Eval("div by zero".into()).is_transient());
    }
}

//! Table schemas: ordered collections of named, typed fields.

use crate::error::StorageError;
use crate::value::DataType;
use std::fmt;

/// A single column definition inside a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name. Names are compared case-insensitively by the query
    /// engine but stored with the case given at creation.
    pub name: String,
    /// Logical data type of the column.
    pub dtype: DataType,
    /// Whether the column admits NULL values.
    pub nullable: bool,
}

impl Field {
    /// Creates a non-nullable field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype, nullable: false }
    }

    /// Creates a nullable field.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Self {
        Field { name: name.into(), dtype, nullable: true }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}{}", self.name, self.dtype, if self.nullable { " NULL" } else { "" })
    }
}

/// An ordered list of [`Field`]s describing a table or a query result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from a list of fields.
    ///
    /// Returns an error if two fields share a (case-insensitive) name.
    pub fn new(fields: Vec<Field>) -> Result<Self, StorageError> {
        for (i, f) in fields.iter().enumerate() {
            for other in &fields[i + 1..] {
                if f.name.eq_ignore_ascii_case(&other.name) {
                    return Err(StorageError::DuplicateColumn(f.name.clone()));
                }
            }
        }
        Ok(Schema { fields })
    }

    /// Convenience constructor used pervasively in tests and generators:
    /// builds a schema from `(name, type)` pairs, panicking on duplicates.
    pub fn of(fields: &[(&str, DataType)]) -> Self {
        Schema::new(fields.iter().map(|(n, t)| Field::new(*n, *t)).collect())
            .expect("duplicate column name in Schema::of")
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Looks up a field index by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Looks up a field by case-insensitive name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Returns the field at `idx`.
    pub fn field_at(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Resolves a column name to its index, producing a descriptive error
    /// when the column does not exist.
    pub fn resolve(&self, name: &str) -> Result<usize, StorageError> {
        self.index_of(name).ok_or_else(|| StorageError::UnknownColumn {
            column: name.to_string(),
            available: self.fields.iter().map(|f| f.name.clone()).collect(),
        })
    }

    /// Returns the names of all columns in declaration order.
    pub fn names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }

    /// Returns the names of all columns with a numeric data type.
    pub fn numeric_columns(&self) -> Vec<String> {
        self.fields.iter().filter(|f| f.dtype.is_numeric()).map(|f| f.name.clone()).collect()
    }

    /// Returns the names of all string-typed (categorical) columns.
    pub fn string_columns(&self) -> Vec<String> {
        self.fields.iter().filter(|f| f.dtype == DataType::Str).map(|f| f.name.clone()).collect()
    }

    /// Appends a field, returning a new schema.
    pub fn with_field(&self, field: Field) -> Result<Self, StorageError> {
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.fields.iter().map(|fl| fl.to_string()).collect();
        write!(f, "({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::of(&[("id", DataType::Int), ("temp", DataType::Float), ("name", DataType::Str)])
    }

    #[test]
    fn index_lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("TEMP"), Some(1));
        assert_eq!(s.index_of("Id"), Some(0));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err =
            Schema::new(vec![Field::new("a", DataType::Int), Field::new("A", DataType::Float)])
                .unwrap_err();
        assert!(matches!(err, StorageError::DuplicateColumn(_)));
    }

    #[test]
    fn resolve_reports_available_columns() {
        let s = sample();
        match s.resolve("nope") {
            Err(StorageError::UnknownColumn { column, available }) => {
                assert_eq!(column, "nope");
                assert_eq!(available.len(), 3);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn numeric_and_string_column_listing() {
        let s = sample();
        assert_eq!(s.numeric_columns(), vec!["id".to_string(), "temp".to_string()]);
        assert_eq!(s.string_columns(), vec!["name".to_string()]);
    }

    #[test]
    fn with_field_appends() {
        let s = sample().with_field(Field::nullable("extra", DataType::Bool)).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.field("extra").unwrap().nullable);
        assert!(sample().with_field(Field::new("id", DataType::Int)).is_err());
    }

    #[test]
    fn display_formats() {
        let s = Schema::of(&[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a int)");
        assert_eq!(Field::nullable("b", DataType::Str).to_string(), "b str NULL");
    }

    #[test]
    fn empty_schema() {
        let s = Schema::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}

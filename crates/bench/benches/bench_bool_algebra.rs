//! Criterion bench for the vectorized boolean algebra: filtering a 16k-row
//! table through a pool of *disjunctive* predicates — OR-of-conjunctions,
//! `NOT` branches, `NOT IN`, and nested AND-OR-NOT trees — via (a) the
//! scalar per-row three-valued walk, (b) [`CompiledBoolExpr`]'s word-level
//! Kleene fold over fresh kernel scans, and (c) the condition-bitmap cache
//! that shares leaf kernels across the whole pool.
//!
//! All three strategies are asserted row-identical before any is timed,
//! and the printed summary asserts the tentpole claim: the vectorized fold
//! must beat the scalar walk by at least 2x on the disjunctive workload.

use criterion::{criterion_group, criterion_main, Criterion};
use dbwipes_storage::{
    col, lit, CompiledBoolExpr, ConditionBitmapCache, DataType, Expr, Schema, Table, Value,
};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Sensor-style table with NULLs sprinkled into `temp` so the Kleene
/// UNKNOWN lane is exercised, not just the TRUE lane.
fn table(rows: usize) -> Table {
    let schema = Schema::of(&[
        ("sensorid", DataType::Int),
        ("voltage", DataType::Float),
        ("temp", DataType::Float),
        ("room", DataType::Str),
    ]);
    let mut t = Table::new("readings", schema).unwrap();
    for i in 0..rows as i64 {
        let sensor = i % 20;
        let temp = if i % 13 == 0 {
            Value::Null
        } else if sensor == 15 {
            Value::Float(110.0 + (i % 10) as f64)
        } else {
            Value::Float(18.0 + (i % 8) as f64)
        };
        let room = match i % 4 {
            0 => "lab",
            1 => "kitchen",
            2 => "office",
            _ => "LAB ANNEX",
        };
        t.push_row(vec![
            Value::Int(sensor),
            Value::Float(2.0 + (i % 7) as f64 * 0.1),
            temp,
            Value::str(room),
        ])
        .unwrap();
    }
    t
}

/// `sensorid = s AND temp > 100` — the per-sensor anomaly conjunction the
/// disjunctions are assembled from. Sharing leaves across the pool is what
/// the bitmap cache exploits.
fn anomaly(s: i64) -> Expr {
    col("sensorid").eq(lit(s)).and(col("temp").gt(lit(100.0)))
}

/// The disjunctive workload: OR-of-conjunction candidates, negated
/// candidates, `NOT IN`, and a nested AND-OR-NOT tree — the shapes the
/// boolean algebra added beyond the conjunctive fragment.
fn workload() -> Vec<Expr> {
    let mut out = Vec::new();
    // OR-of-conjunctions over sliding sensor windows (heavy leaf sharing).
    for s in 0..16i64 {
        out.push(anomaly(s).or(anomaly(s + 1)).or(anomaly(s + 2)));
    }
    // Negated candidates: "everything but this suspect slice".
    for s in 0..8i64 {
        out.push(!anomaly(s));
    }
    // NOT IN, and a nested tree with NOT over an OR branch.
    out.push(col("room").not_in_list(vec![lit("kitchen"), lit("office")]));
    out.push(
        col("voltage")
            .between(lit(2.1), lit(2.5))
            .and(!(col("room").contains("lab").or(col("temp").gt(lit(105.0))))),
    );
    out
}

/// Scalar baseline: the pre-vectorization path — a per-row three-valued
/// expression walk per predicate.
fn score_scalar(t: &Table, pool: &[Expr]) -> usize {
    pool.iter().map(|e| e.filter_scalar(t).expect("well-typed workload").len()).sum()
}

/// Vectorized: compile each tree, run one columnar kernel per distinct
/// leaf, fold word-level AND/OR/NOT.
fn score_vectorized(t: &Table, pool: &[Expr]) -> usize {
    let visible = t.visible_row_set();
    let mut total = 0usize;
    for e in pool {
        let compiled = CompiledBoolExpr::compile(e, t).expect("vectorizable workload");
        total += compiled.eval_columns().trues.intersection_count(&visible);
    }
    total
}

/// Cached bitmaps: each **distinct** leaf condition's kernel runs once for
/// the whole pool; every tree after that is a pure bitmap fold.
fn score_cached(t: &Table, cache: &ConditionBitmapCache, pool: &[Expr]) -> usize {
    let mut total = 0usize;
    for e in pool {
        let tri = cache.bool_expr(t, e).expect("vectorizable workload");
        total += tri.trues.intersection_count(cache.visible());
    }
    total
}

fn mean_wall(samples: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    start.elapsed() / samples as u32
}

fn bench_bool_algebra(c: &mut Criterion) {
    let pool = workload();
    let rows = 16_000usize;
    let t = table(rows);
    let cache = ConditionBitmapCache::new(&t);

    // All three strategies must agree before any of them is timed.
    let expected = score_scalar(&t, &pool);
    assert_eq!(score_vectorized(&t, &pool), expected, "vectorized != scalar at {rows}");
    assert_eq!(score_cached(&t, &cache, &pool), expected, "cached != scalar at {rows}");

    let mut group = c.benchmark_group("bool_algebra");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function(format!("scalar/{rows}"), |b| {
        b.iter(|| black_box(score_scalar(&t, &pool)))
    });
    group.bench_function(format!("vectorized/{rows}"), |b| {
        b.iter(|| black_box(score_vectorized(&t, &pool)))
    });
    group.bench_function(format!("cached/{rows}"), |b| {
        b.iter(|| black_box(score_cached(&t, &cache, &pool)))
    });
    group.finish();

    // The tentpole claim, measured outside criterion so it can be diffed
    // and asserted: the vectorized Kleene fold must be at least 2x faster
    // than the scalar walk on the disjunctive workload (the real margin
    // is several-fold; 2x leaves room for scheduler noise on shared
    // runners).
    let scalar = mean_wall(5, || {
        black_box(score_scalar(&t, &pool));
    });
    let vectorized = mean_wall(5, || {
        black_box(score_vectorized(&t, &pool));
    });
    println!(
        "bool_algebra 16k: scalar {scalar:?} vs vectorized {vectorized:?} ({:.2}x)",
        scalar.as_secs_f64() / vectorized.as_secs_f64().max(f64::EPSILON)
    );
    assert!(
        vectorized.mul_f64(2.0) <= scalar,
        "vectorized boolean filtering ({vectorized:?}) must be at least 2x faster than the \
         scalar walk ({scalar:?})"
    );
}

criterion_group!(benches, bench_bool_algebra);
criterion_main!(benches);

//! Criterion bench for E4: the individual backend components (Preprocessor,
//! Dataset Enumerator, Predicate Enumerator, Ranker) in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use dbwipes_bench::{hot_readings, run_query, sensor_dataset, suspicious_windows};
use dbwipes_core::{
    enumerate_candidates, enumerate_predicates, rank_influence, rank_predicates, EnumeratorConfig,
    ErrorMetric, PredicateEnumConfig, RankerConfig,
};
use dbwipes_learn::FeatureSpace;
use std::hint::black_box;
use std::time::Duration;

fn bench_components(c: &mut Criterion) {
    let dataset = sensor_dataset(16_200);
    let result = run_query(&dataset.table, &dataset.window_query());
    let suspicious = suspicious_windows(&result, 8.0);
    let metric = ErrorMetric::too_high("std_temp", 5.0);
    let examples = hot_readings(&dataset, &result, &suspicious);
    let influence = rank_influence(&dataset.table, &result, &suspicious, &metric).unwrap();
    let f_rows = influence.inputs();
    let space =
        FeatureSpace::build_excluding(&dataset.table, &["temp".into(), "window".into()], &f_rows);
    let candidates = enumerate_candidates(
        &dataset.table,
        &space,
        &examples,
        &influence,
        &EnumeratorConfig::default(),
    );
    let predicates: Vec<_> = candidates
        .iter()
        .flat_map(|cand| {
            enumerate_predicates(
                &dataset.table,
                &space,
                &f_rows,
                cand,
                &PredicateEnumConfig::default(),
            )
        })
        .collect();

    let mut group = c.benchmark_group("components");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("preprocessor_influence", |b| {
        b.iter(|| black_box(rank_influence(&dataset.table, &result, &suspicious, &metric).unwrap()))
    });
    group.bench_function("dataset_enumerator", |b| {
        b.iter(|| {
            black_box(enumerate_candidates(
                &dataset.table,
                &space,
                &examples,
                &influence,
                &EnumeratorConfig::default(),
            ))
        })
    });
    group.bench_function("predicate_enumerator", |b| {
        b.iter(|| {
            black_box(
                candidates
                    .iter()
                    .flat_map(|cand| {
                        enumerate_predicates(
                            &dataset.table,
                            &space,
                            &f_rows,
                            cand,
                            &PredicateEnumConfig::default(),
                        )
                    })
                    .count(),
            )
        })
    });
    group.bench_function("predicate_ranker", |b| {
        b.iter(|| {
            black_box(
                rank_predicates(
                    &dataset.table,
                    &result,
                    &suspicious,
                    &examples,
                    &metric,
                    predicates.clone(),
                    &RankerConfig::default(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);

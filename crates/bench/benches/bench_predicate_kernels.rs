//! Criterion bench for the vectorized predicate path: scoring a pool of
//! candidate conjunctions against a table via (a) the scalar per-row
//! compiled walk, (b) the vectorized column kernels, and (c) the
//! condition-bitmap cache that shares kernels across candidates, at three
//! table sizes.
//!
//! The printed summary asserts the tentpole claim — vectorized evaluation
//! must not be slower than the scalar walk it replaced — at the largest
//! size, where per-row dispatch overhead dominates.

use criterion::{criterion_group, criterion_main, Criterion};
use dbwipes_storage::{
    Condition, ConditionBitmapCache, ConjunctivePredicate, DataType, Schema, Table, Value,
};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Sensor-style table with NULLs sprinkled into `temp` and a text column
/// for the `Contains`/`InSet` string kernels.
fn table(rows: usize) -> Table {
    let schema = Schema::of(&[
        ("sensorid", DataType::Int),
        ("voltage", DataType::Float),
        ("temp", DataType::Float),
        ("room", DataType::Str),
    ]);
    let mut t = Table::new("readings", schema).unwrap();
    for i in 0..rows as i64 {
        let sensor = i % 20;
        let temp = if i % 13 == 0 {
            Value::Null
        } else if sensor == 15 {
            Value::Float(110.0 + (i % 10) as f64)
        } else {
            Value::Float(18.0 + (i % 8) as f64)
        };
        let room = match i % 4 {
            0 => "lab",
            1 => "kitchen",
            2 => "office",
            _ => "LAB ANNEX",
        };
        t.push_row(vec![
            Value::Int(sensor),
            Value::Float(2.0 + (i % 7) as f64 * 0.1),
            temp,
            Value::str(room),
        ])
        .unwrap();
    }
    t
}

/// The candidate pool: conjunctions that heavily share conditions drawn
/// from one pool, like the Predicate Enumerator's tree- and text-derived
/// candidates do.
fn candidates() -> Vec<ConjunctivePredicate> {
    let mut out = Vec::new();
    for s in 0..20i64 {
        out.push(ConjunctivePredicate::new(vec![Condition::equals("sensorid", s)]));
        out.push(ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", s),
            Condition::above("temp", 100.0),
        ]));
        out.push(ConjunctivePredicate::new(vec![
            Condition::equals("sensorid", s),
            Condition::between("voltage", 2.1, 2.5),
            Condition::contains("room", "lab"),
        ]));
    }
    out.push(ConjunctivePredicate::new(vec![Condition::in_set(
        "room",
        vec![Value::str("kitchen"), Value::str("office")],
    )]));
    out.push(ConjunctivePredicate::new(vec![Condition::not_equals("room", "lab")]));
    out
}

/// Scalar baseline: the pre-vectorization path — compile, then evaluate
/// row by row over the visible rows.
fn score_scalar(t: &Table, pool: &[ConjunctivePredicate]) -> usize {
    let mut total = 0usize;
    for p in pool {
        let compiled = p.compile(t).expect("well-typed candidate");
        total += t.visible_row_ids().filter(|&r| compiled.matches(r) == Some(true)).count();
    }
    total
}

/// Vectorized: one columnar kernel scan per condition per candidate.
fn score_vectorized(t: &Table, pool: &[ConjunctivePredicate]) -> usize {
    let visible = t.visible_row_set();
    let mut total = 0usize;
    for p in pool {
        let compiled = p.compile(t).expect("well-typed candidate");
        total += compiled.eval_columns().trues.intersection_count(&visible);
    }
    total
}

/// Cached bitmaps: each **distinct** condition's kernel runs once; every
/// candidate after that is pure bitmap intersection.
fn score_cached(t: &Table, cache: &ConditionBitmapCache, pool: &[ConjunctivePredicate]) -> usize {
    let mut total = 0usize;
    for p in pool {
        let tri = cache.conjunction(t, p).expect("well-typed candidate");
        total += tri.trues.intersection_count(cache.visible());
    }
    total
}

fn mean_wall(samples: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    start.elapsed() / samples as u32
}

fn bench_predicate_kernels(c: &mut Criterion) {
    let pool = candidates();
    let mut group = c.benchmark_group("predicate_kernels");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for rows in [4_000usize, 16_000, 64_000] {
        let t = table(rows);
        // All three strategies must agree before any of them is timed.
        let cache = ConditionBitmapCache::new(&t);
        let expected = score_scalar(&t, &pool);
        assert_eq!(score_vectorized(&t, &pool), expected, "vectorized != scalar at {rows}");
        assert_eq!(score_cached(&t, &cache, &pool), expected, "cached != scalar at {rows}");

        group.bench_function(format!("scalar/{rows}"), |b| {
            b.iter(|| black_box(score_scalar(&t, &pool)))
        });
        group.bench_function(format!("vectorized/{rows}"), |b| {
            b.iter(|| black_box(score_vectorized(&t, &pool)))
        });
        group.bench_function(format!("cached/{rows}"), |b| {
            b.iter(|| black_box(score_cached(&t, &cache, &pool)))
        });
    }
    group.finish();

    // The tentpole claim, measured outside criterion so it can be diffed
    // and asserted: vectorized scoring must not be slower than the scalar
    // walk. 1.25x slack absorbs scheduler noise on shared runners; the
    // real margin is several-fold.
    let t = table(64_000);
    let scalar = mean_wall(5, || {
        black_box(score_scalar(&t, &pool));
    });
    let vectorized = mean_wall(5, || {
        black_box(score_vectorized(&t, &pool));
    });
    println!(
        "predicate_kernels 64k: scalar {scalar:?} vs vectorized {vectorized:?} ({:.2}x)",
        scalar.as_secs_f64() / vectorized.as_secs_f64().max(f64::EPSILON)
    );
    assert!(
        vectorized <= scalar.mul_f64(1.25),
        "vectorized candidate scoring ({vectorized:?}) must not be slower than the scalar walk \
         ({scalar:?})"
    );
}

criterion_group!(benches, bench_predicate_kernels);
criterion_main!(benches);

//! Streamed-batch absorb vs. cold re-execution: the catch-up path the
//! streaming-ingestion subsystem exists for.
//!
//! When a `stream_append` batch lands, a server session showing a query
//! result has two ways to get current: re-execute the statement over the
//! grown table (the cold path — a full scan, per-row expression
//! evaluation, and hash grouping of *every* row), or fast-forward the
//! retained [`GroupedAggregateCache`] through `absorb_append` (filter,
//! group and fold only the appended suffix). This bench measures both
//! over a 256Ki-row sensor workload absorbing 1024-row batches — the
//! default `DBWIPES_APPEND_BATCH` granularity.
//!
//! Before anything is timed, the absorbed cache is asserted
//! **bit-identical** to a cold build over the grown table: same full
//! result, same per-group exclusion answers. The printed summary then
//! asserts the point of the subsystem: absorbing a streamed batch must
//! be at least 5x faster than the cold re-execution it replaces (in
//! practice the gap is orders of magnitude — absorb work scales with the
//! batch, re-execution with the table).
//!
//! The timed `absorb_1024` entry walks a pre-built chain of append
//! descendants (one +1024-row snapshot per iteration, warm-up included),
//! so every timed iteration performs one real absorb — never a no-op
//! fast-path that would flatter the mean.

use criterion::{criterion_group, Criterion};
use dbwipes_engine::{parse_select, ExclusionQuery, GroupedAggregateCache};
use dbwipes_storage::{DataType, RowId, Schema, Table, Value};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: usize = 262_144;
const SENSORS: i64 = 1024;
const BATCH: usize = 1024;
// Enough +1024-row snapshots to cover the timed entry's warm-up plus
// samples; running out mid-bench panics rather than silently timing
// no-op absorbs.
const CHAIN: usize = 24;
// Same stance as bench_snapshot_recovery: the WHERE clause keeps nearly
// every row but makes the cold path evaluate it per row — what real
// dashboards' windowed statements pay, and what absorb pays only for the
// appended suffix.
const SQL: &str = "SELECT window, avg(temp), stddev(temp) FROM readings \
                   WHERE sensorid >= 0 AND temp > 0 GROUP BY window";

/// A 256Ki-row sensor table on the dyadic grid (temperatures are
/// multiples of 1/32), so absorbed and rebuilt aggregate states agree
/// bit for bit, not approximately.
fn sensor_table() -> Table {
    let schema = Schema::of(&[
        ("sensorid", DataType::Int),
        ("window", DataType::Int),
        ("temp", DataType::Float),
    ]);
    let mut t = Table::new("readings", schema).unwrap();
    for i in 0..ROWS {
        t.push_row(reading(i)).unwrap();
    }
    t
}

fn reading(i: usize) -> Vec<Value> {
    let sensor = (i as i64) % SENSORS;
    let window = ((i / 16_384) % 16) as i64; // 16 windows of 16Ki readings
    let temp = 16.0 + ((i * 7) % 64) as f64 / 32.0;
    vec![Value::Int(sensor), Value::Int(window), Value::Float(temp)]
}

/// `base` plus one streamed batch of `BATCH` rows.
fn append_batch(base: &Table, offset: usize) -> Table {
    let mut grown = base.clone();
    for i in 0..BATCH {
        grown.push_row(reading(offset + i)).unwrap();
    }
    grown
}

fn mean_wall(iters: u32, mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters
}

fn bench_stream_append(c: &mut Criterion) {
    let base = Arc::new(sensor_table());
    let stmt = parse_select(SQL).unwrap();

    // A chain of append descendants: chain[k] = base + (k+1) streamed
    // batches, each epoch an append descendant of the one before.
    let mut chain: Vec<Arc<Table>> = Vec::with_capacity(CHAIN);
    for k in 0..CHAIN {
        let prev: &Table = if k == 0 { &base } else { &chain[k - 1] };
        chain.push(Arc::new(append_batch(prev, ROWS + k * BATCH)));
    }
    let grown = Arc::clone(&chain[0]);

    // ── Equivalence gate, before a single iteration is timed. ──
    let mut absorbed = GroupedAggregateCache::build_shared(Arc::clone(&base), &stmt).unwrap();
    assert_eq!(absorbed.absorb_append_shared(Arc::clone(&grown)).unwrap(), BATCH);
    let rebuilt = GroupedAggregateCache::build_shared(Arc::clone(&grown), &stmt).unwrap();
    assert_eq!(absorbed.fingerprint(), rebuilt.fingerprint());
    assert_eq!(absorbed.full_result().rows, rebuilt.full_result().rows);
    assert_eq!(absorbed.full_result().group_keys, rebuilt.full_result().group_keys);
    // Exclusions straddling the old/new row boundary answer identically.
    let excluded: Vec<RowId> = (ROWS - 500..ROWS + 500).map(RowId).collect();
    assert_eq!(
        absorbed.result(&ExclusionQuery::new().excluding_rows(&excluded)).rows,
        rebuilt.result(&ExclusionQuery::new().excluding_rows(&excluded)).rows,
        "absorbed cache must answer exclusions bit-identically"
    );

    let mut group = c.benchmark_group("stream_append");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function(format!("cold_reexec/{}", grown.num_rows()), |b| {
        b.iter(|| {
            black_box(GroupedAggregateCache::build_shared(Arc::clone(&grown), &stmt).unwrap())
        })
    });
    {
        let mut cache = GroupedAggregateCache::build_shared(Arc::clone(&base), &stmt).unwrap();
        let mut next = chain.iter();
        group.bench_function(format!("absorb_{BATCH}/{}", grown.num_rows()), |b| {
            b.iter(|| {
                let snapshot = next.next().expect("snapshot chain exhausted — raise CHAIN");
                let n = cache.absorb_append_shared(Arc::clone(snapshot)).unwrap();
                assert_eq!(n, BATCH, "a timed iteration must absorb one full batch");
                black_box(n)
            })
        });
    }
    group.finish();

    // The claim the subsystem is built on, asserted outside criterion:
    // absorbing one streamed batch must beat re-executing the statement
    // by at least 5x. One cache fast-forwards through successive
    // snapshots — the production shape: a session's retained cache
    // absorbs each arriving batch in turn, so per-group capacity growth
    // amortises exactly as it does on a live server.
    let reexec = mean_wall(5, || {
        black_box(GroupedAggregateCache::build_shared(Arc::clone(&grown), &stmt).unwrap());
    });
    let mut cache = GroupedAggregateCache::build_shared(Arc::clone(&base), &stmt).unwrap();
    let mut total = Duration::ZERO;
    const ABSORB_ITERS: usize = 5;
    for snapshot in chain.iter().take(ABSORB_ITERS) {
        let start = Instant::now();
        let n = black_box(cache.absorb_append_shared(Arc::clone(snapshot)).unwrap());
        total += start.elapsed();
        assert_eq!(n, BATCH, "a timed sample must absorb one full batch");
    }
    let absorb = total / ABSORB_ITERS as u32;
    let speedup = reexec.as_secs_f64() / absorb.as_secs_f64().max(f64::EPSILON);
    println!(
        "stream_append 256Ki rows + {BATCH}: cold re-execution {reexec:?} vs absorb {absorb:?} \
         ({speedup:.1}x)"
    );
    assert!(
        speedup >= 5.0,
        "absorbing a streamed batch ({absorb:?}) must be >=5x faster than cold re-execution \
         ({reexec:?}), got {speedup:.1}x"
    );
}

criterion_group!(benches, bench_stream_append);

fn main() {
    benches();
}

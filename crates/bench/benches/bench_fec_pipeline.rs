//! Criterion bench for E1: the full FEC walkthrough pipeline (query +
//! explanation) at small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbwipes_bench::{fec_dataset, fec_explanation};
use dbwipes_core::ExplainConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_fec_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fec_pipeline");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for &n in &[5_000usize, 10_000] {
        let dataset = fec_dataset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dataset, |b, ds| {
            b.iter(|| black_box(fec_explanation(ds, ExplainConfig::standard())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fec_pipeline);
criterion_main!(benches);

//! Criterion bench for E5: the baseline explanation strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use dbwipes_bench::{corrupted_dataset, run_query};
use dbwipes_core::baselines::{
    fine_grained_provenance, greedy_responsibility, single_attribute_predicates, top_k_influence,
    SingleAttributeConfig,
};
use dbwipes_core::{rank_influence, ErrorMetric};
use std::hint::black_box;
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let dataset = corrupted_dataset(8_000);
    let result = run_query(&dataset.table, &dataset.group_avg_query());
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > 65.0)
        .collect();
    let metric = ErrorMetric::too_high("avg_value", 60.0);
    let influence = rank_influence(&dataset.table, &result, &suspicious, &metric).unwrap();

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("fine_grained_provenance", |b| {
        b.iter(|| black_box(fine_grained_provenance(&result, &suspicious)))
    });
    group.bench_function("leave_one_out_influence", |b| {
        b.iter(|| black_box(rank_influence(&dataset.table, &result, &suspicious, &metric).unwrap()))
    });
    group.bench_function("top_k_influence", |b| {
        b.iter(|| black_box(top_k_influence(&influence, 500)))
    });
    group.bench_function("greedy_responsibility", |b| {
        b.iter(|| black_box(greedy_responsibility(&influence)))
    });
    group.bench_function("single_attribute_predicates", |b| {
        b.iter(|| {
            black_box(
                single_attribute_predicates(
                    &dataset.table,
                    &result,
                    &suspicious,
                    &[],
                    &metric,
                    &SingleAttributeConfig::default(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);

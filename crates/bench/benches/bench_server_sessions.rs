//! Load-generates the `dbwipes-server` session service: N concurrent
//! scripted sessions drive the full Figure-1 loop through the line
//! protocol over one [`SessionManager`], reporting p50/p95 per-command
//! latency and the shared cache registry's hit rate.
//!
//! The timed micro-benches isolate the tentpole claim: `explain_cold` is a
//! session's *first* `debug` (the registry must build the aggregate
//! cache — one full statement execution), `explain_cached` is a repeated
//! `debug` on the unchanged statement (served from the registry). The
//! printed summary asserts the repeat is actually faster and the hit rate
//! is non-zero, so the "second explain is near-free" claim is measured,
//! not assumed.

use criterion::{criterion_group, criterion_main, Criterion};
use dbwipes_core::effective_parallelism;
use dbwipes_data::{generate_sensor, SensorConfig};
use dbwipes_server::{Json, SessionManager};
use dbwipes_storage::Catalog;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SESSIONS: usize = 4;
const READINGS: usize = 5_400;

fn fresh_manager() -> Arc<SessionManager> {
    let data = generate_sensor(&SensorConfig {
        num_readings: READINGS,
        failing_sensors: vec![15],
        ..SensorConfig::small()
    });
    let mut catalog = Catalog::new();
    catalog.register(data.table.clone()).expect("register demo table");
    Arc::new(SessionManager::new(catalog))
}

/// The sensor walkthrough's window query (`SensorDataset::window_query`).
fn window_query() -> String {
    generate_sensor(&SensorConfig { num_readings: 120, ..SensorConfig::small() }).window_query()
}

fn send_ok(manager: &SessionManager, line: &str) -> Json {
    let reply = manager.handle_line(line);
    let parsed = Json::parse(&reply).expect("valid JSON reply");
    assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)), "{line} -> {reply}");
    parsed
}

/// The per-session command script (label, request line), through `debug`.
fn script(session: u64, query: &str) -> Vec<(&'static str, String)> {
    vec![
        ("run_query", format!(r#"{{"cmd":"run_query","session":{session},"sql":"{query}"}}"#)),
        ("plot", format!(r#"{{"cmd":"plot","session":{session},"x":"window","y":"std_temp"}}"#)),
        (
            "brush_outputs",
            format!(
                r#"{{"cmd":"brush_outputs","session":{session},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
            ),
        ),
        ("zoom", format!(r#"{{"cmd":"zoom","session":{session},"x":"sensorid","y":"temp"}}"#)),
        (
            "brush_inputs",
            format!(
                r#"{{"cmd":"brush_inputs","session":{session},"x":"sensorid","y":"temp","brush":{{"y_min":100}}}}"#
            ),
        ),
        (
            "set_metric",
            format!(
                r#"{{"cmd":"set_metric","session":{session},"kind":"too_high","column":"std_temp","value":4}}"#
            ),
        ),
        ("debug (first)", format!(r#"{{"cmd":"debug","session":{session}}}"#)),
        ("debug (repeat)", format!(r#"{{"cmd":"debug","session":{session}}}"#)),
        (
            "click_predicate",
            format!(r#"{{"cmd":"click_predicate","session":{session},"index":0}}"#),
        ),
        ("undo", format!(r#"{{"cmd":"undo","session":{session}}}"#)),
        // Undo cleared the selections (the metric survives): re-brush, then
        // debug the restored base statement — which the registry still holds.
        (
            "brush_outputs",
            format!(
                r#"{{"cmd":"brush_outputs","session":{session},"x":"window","y":"std_temp","brush":{{"y_min":8}}}}"#
            ),
        ),
        ("debug (after undo)", format!(r#"{{"cmd":"debug","session":{session}}}"#)),
    ]
}

/// Opens a session and advances it to the brink of `debug` (query run,
/// S and D′ brushed, ε picked).
fn prepared_session(manager: &SessionManager, query: &str) -> u64 {
    let session = send_ok(manager, r#"{"cmd":"open_session"}"#)
        .get("session")
        .and_then(Json::as_u64)
        .expect("session id");
    for (label, line) in script(session, query).into_iter().take(6) {
        let _ = label;
        send_ok(manager, &line);
    }
    session
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn bench_server_sessions(c: &mut Criterion) {
    println!(
        "server_sessions: {} threads effective (DBWIPES_THREADS to override), \
         {SESSIONS} concurrent sessions, {READINGS} readings",
        effective_parallelism()
    );
    let query = window_query();

    // --- Timed micro-benches: cold vs cached explain. -------------------
    let mut group = c.benchmark_group("server_sessions");
    group.sample_size(10);

    // Cold: every iteration debugs a *fresh* manager (empty registry), so
    // the measured time includes the aggregate-cache build. Sessions are
    // prepared outside the timed closure.
    let cold_pool: RefCell<Vec<(Arc<SessionManager>, u64)>> = RefCell::new(
        (0..12)
            .map(|_| {
                let manager = fresh_manager();
                let session = prepared_session(&manager, &query);
                (manager, session)
            })
            .collect(),
    );
    group.bench_function("explain_cold", |b| {
        b.iter(|| {
            let (manager, session) = cold_pool.borrow_mut().pop().unwrap_or_else(|| {
                let manager = fresh_manager();
                let session = prepared_session(&manager, &query);
                (manager, session)
            });
            let reply = send_ok(&manager, &format!(r#"{{"cmd":"debug","session":{session}}}"#));
            assert_eq!(reply.get("cache_hit"), Some(&Json::Bool(false)));
        })
    });

    // Cached: one manager, registry warmed by a first debug; every
    // iteration re-debugs the unchanged statement.
    let manager = fresh_manager();
    let session = prepared_session(&manager, &query);
    send_ok(&manager, &format!(r#"{{"cmd":"debug","session":{session}}}"#));
    group.bench_function("explain_cached", |b| {
        b.iter(|| {
            let reply = send_ok(&manager, &format!(r#"{{"cmd":"debug","session":{session}}}"#));
            assert_eq!(reply.get("cache_hit"), Some(&Json::Bool(true)));
        })
    });
    group.finish();

    // --- Load generation: concurrent scripted sessions. ------------------
    let manager = fresh_manager();
    let samples: Vec<(&'static str, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SESSIONS)
            .map(|_| {
                let manager = Arc::clone(&manager);
                let query = query.clone();
                scope.spawn(move || {
                    let session = send_ok(&manager, r#"{"cmd":"open_session"}"#)
                        .get("session")
                        .and_then(Json::as_u64)
                        .expect("session id");
                    let mut timings = Vec::new();
                    for (label, line) in script(session, &query) {
                        let start = Instant::now();
                        send_ok(&manager, &line);
                        timings.push((label, start.elapsed()));
                    }
                    timings
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("session thread panicked")).collect()
    });

    let mut by_command: BTreeMap<&'static str, Vec<Duration>> = BTreeMap::new();
    for (label, duration) in &samples {
        by_command.entry(label).or_default().push(*duration);
    }
    println!("server_sessions load: {SESSIONS} sessions, per-command latency:");
    println!("  {:<20} {:>5} {:>12} {:>12}", "command", "n", "p50", "p95");
    for (label, durations) in &mut by_command {
        durations.sort_unstable();
        println!(
            "  {:<20} {:>5} {:>12?} {:>12?}",
            label,
            durations.len(),
            percentile(durations, 0.50),
            percentile(durations, 0.95),
        );
    }

    // The tentpole claim, measured: a repeated explain on the unchanged
    // statement hits the registry (here its explanation tier — the
    // identical request replays the memoized answer) and beats the first.
    let stats = send_ok(&manager, r#"{"cmd":"stats"}"#);
    let cache = stats.get("cache").expect("cache stats").clone();
    let cache_hit_rate = cache.get("hit_rate").and_then(Json::as_f64).expect("hit rate");
    let memo_hit_rate =
        cache.get("explanation_hit_rate").and_then(Json::as_f64).expect("memo hit rate");
    let first: Vec<Duration> = by_command["debug (first)"].clone();
    let repeat: Vec<Duration> = by_command["debug (repeat)"].clone();
    let mean = |xs: &[Duration]| xs.iter().sum::<Duration>() / xs.len() as u32;
    let (first_mean, repeat_mean) = (mean(&first), mean(&repeat));
    println!(
        "server_sessions cache: aggregate-cache hit_rate {:.0}% ({} hits / {} misses), \
         explanation hit_rate {:.0}% ({} hits / {} misses)",
        cache_hit_rate * 100.0,
        cache.get("hits").and_then(Json::as_u64).unwrap_or(0),
        cache.get("misses").and_then(Json::as_u64).unwrap_or(0),
        memo_hit_rate * 100.0,
        cache.get("explanation_hits").and_then(Json::as_u64).unwrap_or(0),
        cache.get("explanation_misses").and_then(Json::as_u64).unwrap_or(0),
    );
    println!(
        "server_sessions repeat explain: first debug mean {:?} -> repeat debug mean {:?} \
         ({:.1}x faster)",
        first_mean,
        repeat_mean,
        first_mean.as_secs_f64() / repeat_mean.as_secs_f64().max(f64::EPSILON),
    );
    assert!(
        cache_hit_rate > 0.0 && memo_hit_rate > 0.0,
        "repeated explains must hit the registry (cache {cache_hit_rate}, memo {memo_hit_rate})"
    );
    assert!(
        repeat_mean < first_mean,
        "a cached explain ({repeat_mean:?}) must beat the cold one ({first_mean:?})"
    );
}

criterion_group!(benches, bench_server_sessions);
criterion_main!(benches);

//! Races the bounded worker-pool TCP executor against the thread-per-
//! connection baseline it replaced, and the `batch` command against the
//! equivalent command-per-line replay.
//!
//! Timed entries (gated by `BENCH_BASELINE.json`):
//!
//! * `server_pool/pooled/{1,4,16}` — wall time for N concurrent TCP
//!   clients to complete 50 commands each against the pooled executor;
//! * `server_pool/thread_per_conn/16` — the same 16-client load against
//!   the unbounded baseline accept loop;
//! * `server_pool/line_replay/50` / `server_pool/batch_replay/50` — a
//!   50-command scripted session replay sent as 50 lines (50 round trips,
//!   50 session-lock acquisitions) vs one `batch` line (one round trip,
//!   one lock acquisition).
//!
//! The printed summary asserts the tentpole claims: the pool at 16
//! clients is not slower than thread-per-connection at equal load, and
//! the batched replay beats the per-line one.

use criterion::{criterion_group, criterion_main, Criterion};
use dbwipes_core::effective_parallelism;
use dbwipes_data::{generate_sensor, SensorConfig};
use dbwipes_server::{
    serve_pooled, serve_thread_per_connection, Json, LineClient, PoolConfig, SessionManager,
};
use dbwipes_storage::Catalog;
use std::net::TcpListener;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const COMMANDS_PER_CLIENT: usize = 50;
const REPLAY_COMMANDS: usize = 50;

fn fresh_manager() -> Arc<SessionManager> {
    let data = generate_sensor(&SensorConfig {
        num_readings: 1_350,
        failing_sensors: vec![15],
        ..SensorConfig::small()
    });
    let mut catalog = Catalog::new();
    catalog.register(data.table).expect("register demo table");
    Arc::new(SessionManager::new(catalog))
}

/// A server front-end running in a background thread; stopped (and
/// joined) via the manager's shutdown flag.
struct Server {
    manager: Arc<SessionManager>,
    addr: String,
    serving: Option<JoinHandle<()>>,
}

impl Server {
    fn pooled(config: PoolConfig) -> Self {
        Server::start(|manager, listener| {
            let _ = serve_pooled(manager, listener, config);
        })
    }

    fn thread_per_conn() -> Self {
        Server::start(|manager, listener| {
            let _ = serve_thread_per_connection(manager, listener, PoolConfig::default());
        })
    }

    fn start<F>(serve: F) -> Self
    where
        F: FnOnce(Arc<SessionManager>, TcpListener) + Send + 'static,
    {
        let manager = fresh_manager();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
        let addr = listener.local_addr().expect("local addr").to_string();
        let serving = {
            let manager = Arc::clone(&manager);
            Some(std::thread::spawn(move || serve(manager, listener)))
        };
        Server { manager, addr, serving }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.manager.request_shutdown();
        if let Some(serving) = self.serving.take() {
            let _ = serving.join();
        }
    }
}

fn connect(addr: &str) -> LineClient {
    LineClient::connect(addr, Duration::from_secs(30)).expect("connect")
}

fn roundtrip_ok(client: &mut LineClient, line: &str) -> Json {
    let reply = client.roundtrip(line).expect("roundtrip");
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{line} -> {reply}");
    reply
}

/// The measured unit of load: `clients` concurrent connections, each
/// sending `commands` pipelined pings (write them all, then read every
/// reply), from connect to last reply.
///
/// Pipelining keeps the comparison throughput-shaped on any core count.
/// With lock-step round trips the load is pure latency: the pool serves a
/// connection to completion, so N clients over W workers run as N/W
/// sequential waves of idle waiting, while thread-per-connection overlaps
/// all N waits — a comparison of idle time, not executors. Pipelined, both
/// sides are bound by the same aggregate command work.
fn run_load(addr: &str, clients: usize, commands: usize) {
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                let mut client = connect(addr);
                for i in 0..commands {
                    client.send(&format!(r#"{{"cmd":"ping","id":{i}}}"#)).expect("send");
                }
                for i in 0..commands {
                    let reply = client.read_reply().expect("read").expect("reply before close");
                    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)), "{reply}");
                    assert_eq!(reply.get("id").and_then(Json::as_u64), Some(i as u64), "{reply}");
                }
            });
        }
    });
}

fn mean_wall(samples: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    start.elapsed() / samples as u32
}

/// Opens a session on `addr` and returns (client, the 50 per-line replay
/// commands, the single batch line carrying the same replay).
fn replay_fixture(addr: &str) -> (LineClient, Vec<String>, String) {
    let mut client = connect(addr);
    let session = roundtrip_ok(&mut client, r#"{"cmd":"open_session"}"#)
        .get("session")
        .and_then(Json::as_u64)
        .unwrap();
    let lines: Vec<String> = (0..REPLAY_COMMANDS)
        .map(|i| format!(r#"{{"cmd":"state","session":{session},"id":{i}}}"#))
        .collect();
    let batch = format!(r#"{{"cmd":"batch","commands":[{}]}}"#, lines.join(","));
    (client, lines, batch)
}

fn bench_server_pool(c: &mut Criterion) {
    println!(
        "server_pool: {} threads effective (DBWIPES_THREADS to override), \
         {COMMANDS_PER_CLIENT} commands per client",
        effective_parallelism()
    );
    let pool_config = PoolConfig::default().normalized();
    println!(
        "server_pool: pooled executor with {} workers, queue depth {}, cap {}",
        pool_config.workers, pool_config.queue_depth, pool_config.max_connections
    );
    let pooled = Server::pooled(pool_config);
    let baseline = Server::thread_per_conn();

    // --- The tentpole claim, measured outside criterion so we can diff:
    // at 16 concurrent clients the bounded pool must not be slower than
    // the unbounded thread-per-connection loop it replaced.
    let pooled_16 = mean_wall(5, || run_load(&pooled.addr, 16, COMMANDS_PER_CLIENT));
    let baseline_16 = mean_wall(5, || run_load(&baseline.addr, 16, COMMANDS_PER_CLIENT));
    println!(
        "server_pool 16-client load: pooled {pooled_16:?} vs thread-per-conn {baseline_16:?} \
         ({:.2}x)",
        baseline_16.as_secs_f64() / pooled_16.as_secs_f64().max(f64::EPSILON)
    );
    // 1.25x slack absorbs scheduler noise on shared runners; at parity or
    // better the bounded pool wins outright (it also caps memory).
    assert!(
        pooled_16 <= baseline_16.mul_f64(1.25),
        "pooled executor ({pooled_16:?}) must not be slower than thread-per-conn \
         ({baseline_16:?}) at equal load"
    );

    // --- Timed entries for the baseline gate. Round-trip-bound wall
    // times this small (sub-ms) jitter with scheduler wakeup latency, so
    // sample well past criterion's default to keep the gate's means
    // stable run to run.
    let mut group = c.benchmark_group("server_pool");
    group.sample_size(30);
    for clients in [1usize, 4, 16] {
        group.bench_function(format!("pooled/{clients}"), |b| {
            b.iter(|| run_load(&pooled.addr, clients, COMMANDS_PER_CLIENT))
        });
    }
    group.bench_function("thread_per_conn/16", |b| {
        b.iter(|| run_load(&baseline.addr, 16, COMMANDS_PER_CLIENT))
    });

    // --- Batch vs command-per-line replay over one admitted connection.
    let (mut replay_client, lines, batch) = replay_fixture(&pooled.addr);
    group.bench_function(format!("line_replay/{REPLAY_COMMANDS}"), |b| {
        b.iter(|| {
            for line in &lines {
                roundtrip_ok(&mut replay_client, line);
            }
        })
    });
    group.bench_function(format!("batch_replay/{REPLAY_COMMANDS}"), |b| {
        b.iter(|| {
            let reply = roundtrip_ok(&mut replay_client, &batch);
            assert_eq!(reply.get("count").and_then(Json::as_u64), Some(REPLAY_COMMANDS as u64));
        })
    });
    group.finish();

    let line_mean = mean_wall(10, || {
        for line in &lines {
            roundtrip_ok(&mut replay_client, line);
        }
    });
    let batch_mean = mean_wall(10, || {
        roundtrip_ok(&mut replay_client, &batch);
    });
    println!(
        "server_pool {REPLAY_COMMANDS}-command replay: per-line {line_mean:?} vs batch \
         {batch_mean:?} ({:.1}x faster batched)",
        line_mean.as_secs_f64() / batch_mean.as_secs_f64().max(f64::EPSILON)
    );
    assert!(
        batch_mean < line_mean,
        "a batched replay ({batch_mean:?}) must beat {REPLAY_COMMANDS} round trips \
         ({line_mean:?})"
    );
}

criterion_group!(benches, bench_server_pool);
criterion_main!(benches);

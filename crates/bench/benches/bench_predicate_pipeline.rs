//! Criterion bench for E3: the Dataset Enumerator + Predicate Enumerator +
//! Ranker pipeline on the sensor scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use dbwipes_bench::{sensor_dataset, sensor_explanation};
use dbwipes_core::ExplainConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_predicate_pipeline(c: &mut Criterion) {
    let dataset = sensor_dataset(16_200);
    let mut group = c.benchmark_group("predicate_pipeline");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    group.bench_function("sensor_16k", |b| {
        b.iter(|| black_box(sensor_explanation(&dataset, ExplainConfig::standard())))
    });
    group.finish();
}

criterion_group!(benches, bench_predicate_pipeline);
criterion_main!(benches);

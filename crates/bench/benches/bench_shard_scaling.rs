//! Shard-parallel ranking vs. the single-table path on a 1M-row sensor
//! workload.
//!
//! The candidate pool is dominated by `sensorid = k` equalities — the
//! shape the paper's sensor scenario actually debugs with — and the table
//! is hash-sharded on `sensorid`, so zone-map pruning
//! ([`ShardedTable::condition_may_match`]) pins each equality's kernel to
//! exactly one of the four shards. That is a raw-work reduction, not a
//! thread-count effect: it holds on a single core, and `DBWIPES_THREADS`
//! is pinned to 4 here so the run is reproducible either way.
//!
//! Temperatures lie on the 1/32 grid (every partial sum and
//! sum-of-squares exact in an `f64`), so before anything is timed the
//! sharded rankings at 1 and 4 shards are asserted **bit-identical** —
//! scores included — to the unsharded ranking. The printed summary then
//! asserts the tentpole claim: ≥2.5× at 4 shards over 1 shard.

use criterion::{criterion_group, Criterion};
use dbwipes_core::{
    rank_predicates_sharded, rank_predicates_with_cache, ErrorMetric, RankedPredicate, RankerConfig,
};
use dbwipes_engine::{execute, parse_select, ExecOptions, ShardedAggregateCache};
use dbwipes_engine::{GroupedAggregateCache, QueryResult};
use dbwipes_storage::{
    Condition, ConjunctivePredicate, DataType, Schema, ShardedTable, Table, Value,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: usize = 1_048_576;
const SENSORS: i64 = 4096;
const BROKEN_SENSOR: i64 = 7;
const CANDIDATE_SENSORS: i64 = 128;
const SQL: &str = "SELECT window, avg(temp), stddev(temp) FROM readings GROUP BY window";

/// A 1M-row sensor table on the dyadic grid: 4096 sensors reporting
/// temperatures that are multiples of 1/32, with one sensor reading far too
/// hot in the last window (the anomaly the ranker is asked to explain).
fn sensor_table() -> Table {
    let schema = Schema::of(&[
        ("sensorid", DataType::Int),
        ("window", DataType::Int),
        ("temp", DataType::Float),
    ]);
    let mut t = Table::new("readings", schema).unwrap();
    for i in 0..ROWS {
        let sensor = (i as i64) % SENSORS;
        let window = (i / 65_536) as i64; // 16 windows of 64Ki readings
        let base = 16.0 + ((i * 7) % 64) as f64 / 32.0;
        let temp = if sensor == BROKEN_SENSOR && window >= 15 { base + 4096.0 } else { base };
        t.push_row(vec![Value::Int(sensor), Value::Int(window), Value::Float(temp)]).unwrap();
    }
    t
}

/// The candidate pool: one equality per low-numbered sensor (the prunable
/// shape — each pins to one shard under hash partitioning) plus a few
/// temperature ranges that touch every shard.
fn candidates() -> Vec<ConjunctivePredicate> {
    let mut pool: Vec<ConjunctivePredicate> = (0..CANDIDATE_SENSORS)
        .map(|k| ConjunctivePredicate::new(vec![Condition::equals("sensorid", k)]))
        .collect();
    pool.push(ConjunctivePredicate::new(vec![Condition::above("temp", 64.0)]));
    pool.push(ConjunctivePredicate::new(vec![Condition::between("temp", 16.0, 18.0)]));
    pool.push(ConjunctivePredicate::new(vec![
        Condition::equals("sensorid", BROKEN_SENSOR),
        Condition::above("temp", 64.0),
    ]));
    pool
}

fn ranking_question(table: &Table) -> (QueryResult, Vec<usize>, ErrorMetric) {
    let stmt = parse_select(SQL).unwrap();
    let result = execute(table, &stmt, ExecOptions { capture_lineage: true }).unwrap();
    // The broken sensor's 16 readings of ~+4096 lift its window's average
    // by exactly 1.0 (dyadic) over the ~16.98 baseline.
    let selected: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_temp").unwrap().unwrap_or(0.0) > 17.5)
        .collect();
    assert_eq!(selected.len(), 1, "exactly the spiked window must cross the line");
    (result, selected, ErrorMetric::too_high("avg_temp", 17.5))
}

/// `(predicate, score, matched)` triples — the full evidence the
/// equivalence assertion compares bit-for-bit.
fn fingerprint(ranked: &[RankedPredicate]) -> Vec<(String, f64, usize)> {
    ranked.iter().map(|r| (r.predicate.to_string(), r.score, r.matched_rows)).collect()
}

fn mean_wall(samples: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..samples {
        f();
    }
    start.elapsed() / samples as u32
}

fn bench_shard_scaling(c: &mut Criterion) {
    let table = sensor_table();
    let (result, selected, metric) = ranking_question(&table);
    let pool = candidates();
    let config = RankerConfig { max_results: 100, ..RankerConfig::default() };

    // Everything buildable once is built outside the timed region — the
    // partitions, the per-shard aggregate caches and the unsharded cache.
    // Condition-bitmap caches are created *inside* every ranking call, so
    // each timed iteration pays the kernel scans (that is the work being
    // measured; a warm bitmap cache would reduce all three variants to
    // popcounts and hide the pruning effect).
    let unsharded = GroupedAggregateCache::build(&table, &result.statement).unwrap();
    let one = Arc::new(ShardedTable::hash(&table, "sensorid", 1).unwrap());
    let four = Arc::new(ShardedTable::hash(&table, "sensorid", 4).unwrap());
    let cache_one = ShardedAggregateCache::build(one, &result.statement).unwrap();
    let cache_four = ShardedAggregateCache::build(four, &result.statement).unwrap();

    let rank_unsharded = || {
        rank_predicates_with_cache(
            &unsharded,
            &result,
            &selected,
            &[],
            &metric,
            pool.clone(),
            &config,
        )
        .unwrap()
    };
    let rank_at = |cache: &ShardedAggregateCache| {
        rank_predicates_sharded(cache, &result, &selected, &[], &metric, pool.clone(), &config)
            .unwrap()
    };

    // The equivalence gate: both shard counts must reproduce the
    // unsharded ranking exactly (dyadic data — any difference is a bug,
    // not float noise) before a single iteration is timed.
    let expected = fingerprint(&rank_unsharded());
    assert!(!expected.is_empty());
    assert_eq!(fingerprint(&rank_at(&cache_one)), expected, "1-shard ranking != unsharded");
    assert_eq!(fingerprint(&rank_at(&cache_four)), expected, "4-shard ranking != unsharded");

    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("unsharded/1048576", |b| b.iter(|| black_box(rank_unsharded())));
    group.bench_function("shards_1/1048576", |b| b.iter(|| black_box(rank_at(&cache_one))));
    group.bench_function("shards_4/1048576", |b| b.iter(|| black_box(rank_at(&cache_four))));
    group.finish();

    // The tentpole claim, measured outside criterion so it can be
    // asserted: hash pruning must buy ≥2.5× at 4 shards over 1 shard.
    // ~54/57 candidates scan 1/4 of the rows, so the expected ratio is
    // ~3.4×; the 2.5× floor absorbs scheduler noise on shared runners.
    let single = mean_wall(5, || {
        black_box(rank_at(&cache_one));
    });
    let sharded = mean_wall(5, || {
        black_box(rank_at(&cache_four));
    });
    let speedup = single.as_secs_f64() / sharded.as_secs_f64().max(f64::EPSILON);
    println!("shard_scaling 1M rows: 1 shard {single:?} vs 4 shards {sharded:?} ({speedup:.2}x)");
    assert!(
        speedup >= 2.5,
        "4-shard ranking ({sharded:?}) must be >=2.5x faster than 1 shard ({single:?}), got \
         {speedup:.2}x"
    );
}

criterion_group!(benches, bench_shard_scaling);

fn main() {
    // Pin the fan-out width so the measurement is about pruning, not the
    // runner's core count; the speedup holds at DBWIPES_THREADS=1 too.
    std::env::set_var("DBWIPES_THREADS", "4");
    benches();
}

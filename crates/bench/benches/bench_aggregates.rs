//! Criterion bench for E7: aggregate execution with and without lineage
//! capture, across the supported aggregate functions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbwipes_bench::{run_query, run_query_without_lineage, sensor_dataset};
use std::hint::black_box;
use std::time::Duration;

fn bench_aggregates(c: &mut Criterion) {
    let dataset = sensor_dataset(27_000);
    let mut group = c.benchmark_group("aggregates");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for agg in ["avg(temp)", "sum(temp)", "count(*)", "min(temp)", "max(temp)", "stddev(temp)"] {
        let sql = format!("SELECT window, {agg} FROM readings GROUP BY window");
        group.bench_with_input(BenchmarkId::new("with_lineage", agg), &sql, |b, sql| {
            b.iter(|| black_box(run_query(&dataset.table, sql)))
        });
        group.bench_with_input(BenchmarkId::new("no_lineage", agg), &sql, |b, sql| {
            b.iter(|| black_box(run_query_without_lineage(&dataset.table, sql)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aggregates);
criterion_main!(benches);

//! Criterion bench for E6: the Predicate Ranker's per-predicate what-if
//! re-execution as the candidate pool grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbwipes_bench::{corrupted_dataset, run_query};
use dbwipes_core::{rank_predicates, ErrorMetric, RankerConfig};
use dbwipes_storage::{Condition, ConjunctivePredicate};
use std::hint::black_box;
use std::time::Duration;

fn bench_ranker(c: &mut Criterion) {
    let dataset = corrupted_dataset(8_000);
    let result = run_query(&dataset.table, &dataset.group_avg_query());
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > 65.0)
        .collect();
    let metric = ErrorMetric::too_high("avg_value", 60.0);

    let mut group = c.benchmark_group("ranker");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n_predicates in &[4usize, 16, 64] {
        let predicates: Vec<ConjunctivePredicate> = (0..n_predicates)
            .map(|i| ConjunctivePredicate::new(vec![Condition::equals("device", (i % 20) as i64)]))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n_predicates),
            &predicates,
            |b, preds| {
                b.iter(|| {
                    black_box(
                        rank_predicates(
                            &dataset.table,
                            &result,
                            &suspicious,
                            &[],
                            &metric,
                            preds.clone(),
                            &RankerConfig { max_results: 100, ..RankerConfig::default() },
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ranker);
criterion_main!(benches);

//! Criterion bench for E2: the Figure-4 window-statistics query at several
//! dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbwipes_bench::{run_query, sensor_dataset};
use std::hint::black_box;
use std::time::Duration;

fn bench_sensor_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensor_window_query");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[13_500usize, 27_000, 54_000] {
        let dataset = sensor_dataset(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &dataset, |b, ds| {
            b.iter(|| black_box(run_query(&ds.table, &ds.window_query())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sensor_query);
criterion_main!(benches);

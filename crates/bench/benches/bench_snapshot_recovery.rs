//! Snapshot restore vs. cold rebuild: the recovery path the durable
//! storage subsystem exists for.
//!
//! A restarted server has two ways to get a warm [`GroupedAggregateCache`]
//! back: re-execute the statement over the restored table (the cold
//! rebuild — a full scan, per-row expression evaluation, and hash
//! grouping), or decode the cache image persisted at the last flush (a
//! validation-only deserialization pass). This bench measures both over
//! the same 256Ki-row sensor workload, plus the table restore itself
//! (`decode_table` from the on-disk snapshot bytes).
//!
//! Before anything is timed, the restored artifacts are asserted
//! **bit-identical** to their cold counterparts: the decoded table must
//! equal the original column-for-column (identity stamps included), and
//! the decoded cache's full result and per-group exclusion answers must
//! match the cold build exactly. The printed summary then asserts the
//! point of the subsystem: restoring must beat rebuilding.

use criterion::{criterion_group, Criterion};
use dbwipes_engine::{
    decode_cache, encode_cache, parse_select, ExclusionQuery, GroupedAggregateCache,
};
use dbwipes_storage::persist::{decode_table, encode_table};
use dbwipes_storage::{DataType, RowId, Schema, Table, Value};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: usize = 262_144;
const SENSORS: i64 = 1024;
// The WHERE clause keeps nearly every row (sensorid is never negative)
// but makes the cold path evaluate it per row — exactly what real
// dashboards' windowed statements pay and a decode never does.
const SQL: &str = "SELECT window, avg(temp), stddev(temp) FROM readings \
                   WHERE sensorid >= 0 AND temp > 0 GROUP BY window";

/// A 256Ki-row sensor table on the dyadic grid (temperatures are
/// multiples of 1/32), so every aggregate state round-trips exactly and
/// "identical" means bit-identical, not approximately equal.
fn sensor_table() -> Table {
    let schema = Schema::of(&[
        ("sensorid", DataType::Int),
        ("window", DataType::Int),
        ("temp", DataType::Float),
    ]);
    let mut t = Table::new("readings", schema).unwrap();
    for i in 0..ROWS {
        let sensor = (i as i64) % SENSORS;
        let window = (i / 16_384) as i64; // 16 windows of 16Ki readings
        let temp = 16.0 + ((i * 7) % 64) as f64 / 32.0;
        t.push_row(vec![Value::Int(sensor), Value::Int(window), Value::Float(temp)]).unwrap();
    }
    t
}

fn mean_wall(iters: u32, mut f: impl FnMut()) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters
}

fn bench_snapshot_recovery(c: &mut Criterion) {
    let table = Arc::new(sensor_table());
    let stmt = parse_select(SQL).unwrap();
    let cold = GroupedAggregateCache::build_shared(Arc::clone(&table), &stmt).unwrap();

    let table_image = encode_table(&table);
    let cache_image = encode_cache(&cold);

    // ── Equivalence gates, before a single iteration is timed. ──
    let restored_table = decode_table(&table_image).unwrap();
    assert_eq!(restored_table.id(), table.id(), "identity must survive the snapshot");
    assert_eq!(restored_table.version(), table.version());
    assert_eq!(restored_table.num_rows(), table.num_rows());
    let restored = decode_cache(&cache_image, Arc::clone(&table)).unwrap();
    assert_eq!(restored.fingerprint(), cold.fingerprint());
    assert_eq!(restored.full_result().rows, cold.full_result().rows);
    let excluded: Vec<RowId> = (0..1000).map(RowId).collect();
    assert_eq!(
        restored.result(&ExclusionQuery::new().excluding_rows(&excluded)).rows,
        cold.result(&ExclusionQuery::new().excluding_rows(&excluded)).rows,
        "restored cache must answer exclusions bit-identically"
    );

    let mut group = c.benchmark_group("snapshot_recovery");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function("cold_rebuild/262144", |b| {
        b.iter(|| {
            black_box(GroupedAggregateCache::build_shared(Arc::clone(&table), &stmt).unwrap())
        })
    });
    group.bench_function("restore_cache/262144", |b| {
        b.iter(|| black_box(decode_cache(&cache_image, Arc::clone(&table)).unwrap()))
    });
    group.bench_function("restore_table/262144", |b| {
        b.iter(|| black_box(decode_table(&table_image).unwrap()))
    });
    group.finish();

    // The claim the subsystem is built on, asserted outside criterion:
    // restoring the cache must beat re-executing the statement. The
    // decode is a sequential byte walk; the rebuild scans, evaluates and
    // hash-groups every row — the floor absorbs runner noise.
    let rebuild = mean_wall(5, || {
        black_box(GroupedAggregateCache::build_shared(Arc::clone(&table), &stmt).unwrap());
    });
    let restore = mean_wall(5, || {
        black_box(decode_cache(&cache_image, Arc::clone(&table)).unwrap());
    });
    let speedup = rebuild.as_secs_f64() / restore.as_secs_f64().max(f64::EPSILON);
    println!(
        "snapshot_recovery 256Ki rows: rebuild {rebuild:?} vs restore {restore:?} ({speedup:.2}x)"
    );
    assert!(
        speedup >= 1.2,
        "restoring ({restore:?}) must be faster than rebuilding ({rebuild:?}), got {speedup:.2}x"
    );
}

criterion_group!(benches, bench_snapshot_recovery);

fn main() {
    benches();
}

//! Criterion bench for E8: the Dataset Enumerator's cleaning strategies and
//! subgroup extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbwipes_bench::{corrupted_dataset, run_query};
use dbwipes_core::{
    enumerate_candidates, rank_influence, CleaningStrategy, EnumeratorConfig, ErrorMetric,
};
use dbwipes_learn::FeatureSpace;
use dbwipes_storage::RowId;
use std::hint::black_box;
use std::time::Duration;

fn bench_enumerator(c: &mut Criterion) {
    let dataset = corrupted_dataset(8_000);
    let result = run_query(&dataset.table, &dataset.group_avg_query());
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > 65.0)
        .collect();
    let metric = ErrorMetric::too_high("avg_value", 60.0);
    let influence = rank_influence(&dataset.table, &result, &suspicious, &metric).unwrap();
    let f_rows = influence.inputs();
    let space =
        FeatureSpace::build_excluding(&dataset.table, &["value".into(), "grp".into()], &f_rows);
    let examples: Vec<RowId> = dataset.truth.error_rows.iter().copied().take(20).collect();

    let mut group = c.benchmark_group("dataset_enumerator");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let variants = [
        ("no_cleaning_no_subgroups", CleaningStrategy::None, false),
        ("kmeans_with_subgroups", CleaningStrategy::KMeans, true),
        ("naive_bayes_with_subgroups", CleaningStrategy::NaiveBayes, true),
    ];
    for (name, cleaning, extend) in variants {
        let config =
            EnumeratorConfig { cleaning, extend_with_subgroups: extend, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, cfg| {
            b.iter(|| {
                black_box(enumerate_candidates(&dataset.table, &space, &examples, &influence, cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumerator);
criterion_main!(benches);

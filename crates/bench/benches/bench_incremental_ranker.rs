//! Incremental re-aggregation vs. per-candidate full re-execution.
//!
//! The Predicate Ranker used to re-execute the full statement (with `AND
//! NOT predicate` conjoined) once per candidate. It now asks a
//! [`GroupedAggregateCache`] built once per ranking. This bench times both
//! strategies on the sensor workload and prints the speedup, which the
//! scheduled CI bench job records as an artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbwipes_bench::{run_query, sensor_dataset, suspicious_windows};
use dbwipes_core::ranker::error_over_keys;
use dbwipes_core::{rank_predicates, ErrorMetric, RankerConfig};
use dbwipes_engine::{execute, ExecOptions, QueryResult};
use dbwipes_storage::{Condition, ConjunctivePredicate, RowId, Table, Value};
use std::collections::BTreeSet;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The pre-incremental ranker, reproduced verbatim as the baseline: for
/// every candidate, rewrite the statement with `AND NOT predicate` and
/// re-execute it from scratch.
fn rank_by_full_reexecution(
    table: &Table,
    result: &QueryResult,
    selected: &[usize],
    examples: &[RowId],
    metric: &ErrorMetric,
    predicates: &[ConjunctivePredicate],
    config: &RankerConfig,
) -> Vec<(String, f64)> {
    let error_before = metric.evaluate_result(result, selected);
    let f_set: BTreeSet<RowId> = result.inputs_of_rows(selected).into_iter().collect();
    let example_set: BTreeSet<RowId> = examples.iter().copied().collect();
    let selected_keys: Vec<Vec<Value>> =
        selected.iter().filter_map(|&i| result.group_keys.get(i).cloned()).collect();

    let mut ranked = Vec::new();
    for predicate in predicates {
        let matched = predicate.matching_rows(table);
        let cleaned_stmt = result.statement.with_additional_filter(predicate.to_exclusion_expr());
        let cleaned =
            execute(table, &cleaned_stmt, ExecOptions { capture_lineage: false }).unwrap();
        let error_after = error_over_keys(&cleaned, &selected_keys, metric);
        let improvement = if error_before > 0.0 {
            ((error_before - error_after) / error_before).clamp(-1.0, 1.0)
        } else {
            0.0
        };
        let matched_in_f: Vec<RowId> =
            matched.iter().filter(|r| f_set.contains(r)).copied().collect();
        let tp = matched_in_f.iter().filter(|r| example_set.contains(r)).count() as f64;
        let precision = if matched_in_f.is_empty() { 0.0 } else { tp / matched_in_f.len() as f64 };
        let recall = if example_set.is_empty() { 0.0 } else { tp / example_set.len() as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        let score = config.weight_error * improvement + config.weight_accuracy * f1
            - config.weight_complexity * (predicate.complexity().saturating_sub(1)) as f64;
        ranked.push((predicate.to_string(), score));
    }
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    ranked
}

fn candidate_pool(n: usize) -> Vec<ConjunctivePredicate> {
    (0..n)
        .map(|i| ConjunctivePredicate::new(vec![Condition::equals("sensorid", (i % 54) as i64)]))
        .collect()
}

fn bench_incremental_ranker(c: &mut Criterion) {
    println!(
        "incremental_ranker: {} threads effective (DBWIPES_THREADS to override)",
        dbwipes_core::effective_parallelism()
    );
    let dataset = sensor_dataset(16_200);
    let result = run_query(&dataset.table, &dataset.window_query());
    let suspicious = suspicious_windows(&result, 8.0);
    let examples: Vec<RowId> = dataset.error_rows().into_iter().take(16).collect();
    let metric = ErrorMetric::too_high("std_temp", 4.0);
    let config = RankerConfig { max_results: 100, ..RankerConfig::default() };

    let mut group = c.benchmark_group("incremental_ranker");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for &n in &[8usize, 32] {
        let predicates = candidate_pool(n);
        group.bench_with_input(BenchmarkId::new("incremental", n), &predicates, |b, preds| {
            b.iter(|| {
                black_box(
                    rank_predicates(
                        &dataset.table,
                        &result,
                        &suspicious,
                        &examples,
                        &metric,
                        preds.clone(),
                        &config,
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("full_reexecution", n), &predicates, |b, preds| {
            b.iter(|| {
                black_box(rank_by_full_reexecution(
                    &dataset.table,
                    &result,
                    &suspicious,
                    &examples,
                    &metric,
                    preds,
                    &config,
                ))
            })
        });
    }
    group.finish();

    // Explicit speedup line for the CI artifact (and the acceptance
    // criterion): one timed pass over the 32-candidate pool per strategy.
    let predicates = candidate_pool(32);
    let start = Instant::now();
    let incremental = rank_predicates(
        &dataset.table,
        &result,
        &suspicious,
        &examples,
        &metric,
        predicates.clone(),
        &config,
    )
    .unwrap();
    let incremental_time = start.elapsed();
    let start = Instant::now();
    let baseline = rank_by_full_reexecution(
        &dataset.table,
        &result,
        &suspicious,
        &examples,
        &metric,
        &predicates,
        &config,
    );
    let baseline_time = start.elapsed();
    // Same candidate pool (all distinct), same scores, same order.
    assert_eq!(incremental.len(), baseline.len());
    for (inc, (name, score)) in incremental.iter().zip(&baseline) {
        assert_eq!(&inc.predicate.to_string(), name);
        assert!((inc.score - score).abs() < 1e-9, "{name}: {} vs {score}", inc.score);
    }
    println!(
        "incremental_ranker speedup: {:.1}x (incremental {:?} vs full re-execution {:?}, \
         32 candidates, sensor workload)",
        baseline_time.as_secs_f64() / incremental_time.as_secs_f64(),
        incremental_time,
        baseline_time,
    );
}

criterion_group!(benches, bench_incremental_ranker);
criterion_main!(benches);

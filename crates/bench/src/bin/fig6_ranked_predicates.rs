//! Figure 6 reproduction (experiment E3): the ranked list of predicates for
//! the Intel sensor query, scored against ground truth.

use dbwipes_bench::{fmt, print_table, sensor_dataset, sensor_explanation};
use dbwipes_core::ExplainConfig;

fn main() {
    let dataset = sensor_dataset(108_000);
    let (_, explanation) = sensor_explanation(&dataset, ExplainConfig::standard());

    let mut rows = Vec::new();
    for (i, p) in explanation.predicates.iter().enumerate() {
        let score = dataset.truth.score_predicate(&dataset.table, &p.predicate);
        rows.push(vec![
            (i + 1).to_string(),
            p.predicate.to_string(),
            fmt(p.score),
            fmt(p.improvement),
            fmt(p.example_f1),
            p.matched_rows.to_string(),
            fmt(score.precision),
            fmt(score.recall),
        ]);
    }
    print_table(
        "Figure 6 / E3: ranked predicates for the sensor query (108k readings, 3 failing sensors)",
        &[
            "rank",
            "predicate",
            "score",
            "improvement",
            "D'_f1",
            "removes",
            "gt_precision",
            "gt_recall",
        ],
        &rows,
    );
    println!("\nbase error over the selected windows: {:.2}", explanation.base_error);
    println!(
        "candidate datasets produced by the Dataset Enumerator: {}",
        explanation.candidates.len()
    );
    println!("\nPaper expectation: the top predicates isolate the failing sensors (their ids /");
    println!(
        "collapsed battery voltage) and clicking one removes the inflated windows; predicates"
    );
    println!("lower in the list remove progressively less of the error.");
}

//! Experiment E8: ablation of the Dataset Enumerator (paper §2.2.2) — how
//! much do D′ cleaning (k-means / naive Bayes) and subgroup-discovery
//! extension matter when the user's example selection is noisy or tiny?

use dbwipes_bench::{
    config_with_enumerator, corrupted_dataset, corrupted_explanation, fmt, print_table,
};
use dbwipes_core::CleaningStrategy;
use dbwipes_storage::RowId;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

fn main() {
    let dataset = corrupted_dataset(12_000);
    let mut rng = StdRng::seed_from_u64(11);
    let error_rows: Vec<RowId> = dataset.truth.error_rows.iter().copied().collect();
    let clean_rows: Vec<RowId> =
        dataset.table.visible_row_ids().filter(|r| !dataset.truth.is_error(*r)).collect();

    // D' with a controlled noise rate: `1 - noise` of the examples are true
    // errors, `noise` are accidental selections of clean rows.
    let make_examples = |rng: &mut StdRng, size: usize, noise: f64| -> Vec<RowId> {
        (0..size)
            .map(|_| {
                if rng.gen_bool(noise) {
                    *clean_rows.choose(rng).expect("clean rows")
                } else {
                    *error_rows.choose(rng).expect("error rows")
                }
            })
            .collect()
    };

    let strategies = [
        ("no cleaning, no extension", CleaningStrategy::None, false),
        ("no cleaning, + subgroups", CleaningStrategy::None, true),
        ("k-means cleaning, + subgroups", CleaningStrategy::KMeans, true),
        ("naive Bayes cleaning, + subgroups", CleaningStrategy::NaiveBayes, true),
    ];
    let noise_rates = [0.0, 0.2, 0.4];

    let mut rows = Vec::new();
    for &noise in &noise_rates {
        for (name, cleaning, extend) in strategies {
            let examples = make_examples(&mut rng, 20, noise);
            let config = config_with_enumerator(cleaning, extend);
            let (_, explanation) = corrupted_explanation(&dataset, examples, config);
            let best = explanation.best();
            let (predicate, improvement, gt_f1) = match best {
                Some(b) => (
                    b.predicate.to_string(),
                    b.improvement,
                    dataset.truth.score_predicate(&dataset.table, &b.predicate).f1,
                ),
                None => ("(none)".to_string(), 0.0, 0.0),
            };
            rows.push(vec![
                format!("{:.0}%", noise * 100.0),
                name.to_string(),
                explanation.candidates.len().to_string(),
                explanation.predicates.len().to_string(),
                predicate,
                fmt(improvement),
                fmt(gt_f1),
            ]);
        }
    }
    print_table(
        "E8: Dataset Enumerator ablation — D' noise vs. cleaning/extension strategy (12k rows, |D'| = 20)",
        &["D'_noise", "enumerator", "candidates", "predicates", "top predicate", "improvement", "gt_f1"],
        &rows,
    );
    println!(
        "\nPaper expectation: with a clean D' every variant finds the right predicate; as the"
    );
    println!(
        "selection gets noisier, the cleaning step (k-means / classifier) keeps the candidate"
    );
    println!("datasets coherent and the subgroup extension recovers error tuples the user missed,");
    println!("so the variants with cleaning + extension degrade the least.");
}

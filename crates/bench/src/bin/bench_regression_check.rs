//! Diffs a timed `cargo bench -p dbwipes-bench` run against the checked-in
//! `BENCH_BASELINE.json` and fails loudly on regressions, closing the
//! ROADMAP's "diff against stored baselines instead of eyeballing
//! artifacts" item.
//!
//! ```text
//! bench_regression_check <bench-results.txt> <BENCH_BASELINE.json> \
//!     [--write] [--filter <prefix>[,<prefix>...]]
//! ```
//!
//! * default mode: every baseline entry must appear in the results with a
//!   mean within `tolerance_pct` (default 25%) of the recorded mean;
//!   slower means a regression, a missing bench means a silently-dropped
//!   measurement — both exit non-zero with a table of verdicts. Benches
//!   present in the results but absent from the baseline are listed as
//!   additions (not failures) with a hint to `--write`.
//! * `--write`: regenerate the baseline file from the results (run this on
//!   the reference machine after intentional perf changes; baselines are
//!   wall-clock means, so they are only comparable on similar hardware).
//! * `--filter`: restrict the gate to baseline entries whose label starts
//!   with one of the comma-separated prefixes (e.g.
//!   `--filter ranker/,predicate_kernels/`). This is how the fast
//!   ranker/predicate bench families gate pull requests without running —
//!   or demanding results for — the whole timed suite. Incompatible with
//!   `--write` (a filtered run must never shrink the stored baseline).
//!
//! Input lines are the offline criterion shim's timed format:
//! `bench <label>: mean <dur> / min <dur> / max <dur> over N iterations`.

use dbwipes_server::Json;
use std::process::ExitCode;

/// One measured bench: label and mean nanoseconds.
#[derive(Debug, Clone, PartialEq)]
struct Measurement {
    label: String,
    mean_ns: f64,
}

/// Parses a humanized `Duration` debug rendering (`12.5ms`, `980ns`,
/// `3.2µs`, `1.04s`) into nanoseconds.
fn parse_duration_ns(text: &str) -> Option<f64> {
    let text = text.trim();
    let split = text.find(|c: char| !(c.is_ascii_digit() || c == '.'))?;
    let (number, unit) = text.split_at(split);
    let value: f64 = number.parse().ok()?;
    let scale = match unit {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some(value * scale)
}

/// Extracts the timed measurements from a bench-results capture, ignoring
/// narration lines and smoke-mode output.
fn parse_results(text: &str) -> Vec<Measurement> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("bench ") else { continue };
        let Some((label, tail)) = rest.split_once(": mean ") else { continue };
        let Some((mean_text, _)) = tail.split_once(" / ") else { continue };
        if let Some(mean_ns) = parse_duration_ns(mean_text) {
            out.push(Measurement { label: label.to_string(), mean_ns });
        }
    }
    out
}

/// Gate configuration stored alongside the baseline means.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Gate {
    /// Relative slack: a bench regresses only when it is more than this
    /// many percent slower than its baseline mean.
    tolerance_pct: f64,
    /// Absolute slack: ...and the absolute slowdown also exceeds this many
    /// nanoseconds. Micro-benches (a few µs) routinely jitter far beyond
    /// any percentage tolerance across runner generations and
    /// noisy-neighbor load; the floor keeps sub-noise deltas from failing
    /// the gate while a real regression (µs → ms) still trips it.
    min_delta_ns: f64,
}

fn load_baseline(text: &str) -> Result<(Gate, Vec<Measurement>), String> {
    let value = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let tolerance_pct = value
        .get("tolerance_pct")
        .and_then(Json::as_f64)
        .ok_or("baseline is missing numeric `tolerance_pct`")?;
    let min_delta_ns = value.get("min_delta_ns").and_then(Json::as_f64).unwrap_or(50_000.0);
    let gate = Gate { tolerance_pct, min_delta_ns };
    let benches = match value.get("benches") {
        Some(Json::Obj(map)) => map,
        _ => return Err("baseline is missing object `benches`".to_string()),
    };
    let mut entries = Vec::new();
    for (label, entry) in benches {
        let mean_ns = entry
            .get("mean_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("baseline entry `{label}` is missing numeric `mean_ns`"))?;
        entries.push(Measurement { label: label.clone(), mean_ns });
    }
    Ok((gate, entries))
}

fn render_baseline(gate: Gate, measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"comment\": \"Timed-bench means recorded by bench_regression_check --write; wall-clock values are machine-specific, so regenerate from a run on the machine that enforces the gate (for CI: a bench-results artifact) and after intentional perf changes.\",\n");
    out.push_str(&format!("  \"tolerance_pct\": {},\n", gate.tolerance_pct));
    out.push_str(&format!("  \"min_delta_ns\": {},\n", gate.min_delta_ns));
    out.push_str("  \"benches\": {\n");
    let mut sorted: Vec<&Measurement> = measurements.iter().collect();
    sorted.sort_by(|a, b| a.label.cmp(&b.label));
    for (i, m) in sorted.iter().enumerate() {
        let comma = if i + 1 == sorted.len() { "" } else { "," };
        out.push_str(&format!(
            "    {}: {{\"mean_ns\": {:.0}}}{comma}\n",
            Json::str(m.label.clone()),
            m.mean_ns
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Restricts both measurement lists to the labels starting with one of the
/// comma-separated prefixes (the PR gate's fast ranker/predicate families).
fn apply_filter(
    baseline: &mut Vec<Measurement>,
    current: &mut Vec<Measurement>,
    prefixes: &str,
) -> Result<(), String> {
    let prefixes: Vec<&str> =
        prefixes.split(',').map(str::trim).filter(|p| !p.is_empty()).collect();
    if prefixes.is_empty() {
        return Err("--filter requires at least one non-empty prefix".to_string());
    }
    let matches = |label: &str| prefixes.iter().any(|p| label.starts_with(p));
    baseline.retain(|m| matches(&m.label));
    current.retain(|m| matches(&m.label));
    if baseline.is_empty() {
        return Err(format!("--filter {} matches no baseline entry", prefixes.join(",")));
    }
    Ok(())
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn check(gate: Gate, baseline: &[Measurement], current: &[Measurement]) -> bool {
    let mut ok = true;
    println!(
        "{:<44} {:>10} {:>10} {:>8}  verdict (tolerance {}% and > {})",
        "bench",
        "baseline",
        "current",
        "delta",
        gate.tolerance_pct,
        human(gate.min_delta_ns),
    );
    for base in baseline {
        match current.iter().find(|m| m.label == base.label) {
            None => {
                ok = false;
                println!(
                    "{:<44} {:>10} {:>10} {:>8}  MISSING — bench disappeared from timed run",
                    base.label,
                    human(base.mean_ns),
                    "-",
                    "-"
                );
            }
            Some(now) => {
                let delta_pct = (now.mean_ns - base.mean_ns) / base.mean_ns * 100.0;
                let regressed = delta_pct > gate.tolerance_pct
                    && now.mean_ns - base.mean_ns > gate.min_delta_ns;
                if regressed {
                    ok = false;
                }
                println!(
                    "{:<44} {:>10} {:>10} {:>+7.1}%  {}",
                    base.label,
                    human(base.mean_ns),
                    human(now.mean_ns),
                    delta_pct,
                    if regressed { "REGRESSION" } else { "ok" }
                );
            }
        }
    }
    for now in current {
        if !baseline.iter().any(|b| b.label == now.label) {
            println!(
                "{:<44} {:>10} {:>10} {:>8}  new bench (add with --write)",
                now.label,
                "-",
                human(now.mean_ns),
                "-"
            );
        }
    }
    ok
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    const USAGE: &str = "usage: bench_regression_check <bench-results.txt> \
                         <BENCH_BASELINE.json> [--write] [--filter <prefix>[,<prefix>...]]";
    let (results_path, baseline_path, write, filter) = match args.as_slice() {
        [results, baseline] => (results, baseline, false, None),
        [results, baseline, flag] if flag == "--write" => (results, baseline, true, None),
        [results, baseline, flag, prefixes] if flag == "--filter" => {
            (results, baseline, false, Some(prefixes.clone()))
        }
        _ => return Err(USAGE.to_string()),
    };
    let results_text = std::fs::read_to_string(results_path)
        .map_err(|e| format!("cannot read {results_path}: {e}"))?;
    let mut current = parse_results(&results_text);
    if current.is_empty() {
        return Err(format!(
            "{results_path} contains no timed bench lines — was the run made with `cargo bench` \
             (not `cargo test`)?"
        ));
    }

    if write {
        let gate = std::fs::read_to_string(baseline_path)
            .ok()
            .and_then(|t| load_baseline(&t).ok())
            .map(|(gate, _)| gate)
            .unwrap_or(Gate { tolerance_pct: 25.0, min_delta_ns: 50_000.0 });
        std::fs::write(baseline_path, render_baseline(gate, &current))
            .map_err(|e| format!("cannot write {baseline_path}: {e}"))?;
        println!("wrote {} entries to {baseline_path}", current.len());
        return Ok(true);
    }

    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let (gate, mut baseline) = load_baseline(&baseline_text)?;
    if let Some(prefixes) = filter {
        apply_filter(&mut baseline, &mut current, &prefixes)?;
        println!("filtered gate: {} baseline entries match {prefixes}", baseline.len());
    }
    let ok = check(gate, &baseline, &current);
    if ok {
        println!("bench regression check passed ({} baseline entries)", baseline.len());
    } else {
        println!("bench regression check FAILED");
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_regression_check: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_parsing_covers_the_debug_renderings() {
        assert_eq!(parse_duration_ns("980ns"), Some(980.0));
        assert_eq!(parse_duration_ns("3.5µs"), Some(3_500.0));
        assert_eq!(parse_duration_ns("3.5us"), Some(3_500.0));
        assert_eq!(parse_duration_ns("12.25ms"), Some(12_250_000.0));
        assert_eq!(parse_duration_ns("1.04s"), Some(1_040_000_000.0));
        assert_eq!(parse_duration_ns("fast"), None);
        assert_eq!(parse_duration_ns("12 parsecs"), None);
    }

    #[test]
    fn results_parsing_picks_out_timed_lines() {
        let text = "incremental_ranker: 1 threads effective\n\
                    bench server_sessions/explain_cold: mean 25.3ms / min 24.1ms / max 27.9ms over 10 iterations\n\
                    bench server_sessions/explain_cached: mean 900.5µs / min 850µs / max 1.1ms over 10 iterations\n\
                    bench smoke/only: ok (smoke mode, 1 iteration)\n\
                    incremental_ranker speedup: 9.0x\n";
        let parsed = parse_results(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].label, "server_sessions/explain_cold");
        assert_eq!(parsed[0].mean_ns, 25_300_000.0);
        assert_eq!(parsed[1].mean_ns, 900_500.0);
    }

    #[test]
    fn baseline_round_trips_and_verdicts() {
        let gate = Gate { tolerance_pct: 25.0, min_delta_ns: 50_000.0 };
        let measurements = vec![
            Measurement { label: "a/fast".into(), mean_ns: 1_000.0 },
            Measurement { label: "b/slow".into(), mean_ns: 2_000_000.0 },
        ];
        let rendered = render_baseline(gate, &measurements);
        let (loaded_gate, loaded) = load_baseline(&rendered).unwrap();
        assert_eq!(loaded_gate, gate);
        assert_eq!(loaded, measurements);

        // Within tolerance passes; beyond it, or missing, fails.
        let within = vec![
            Measurement { label: "a/fast".into(), mean_ns: 1_200.0 },
            Measurement { label: "b/slow".into(), mean_ns: 1_500_000.0 },
        ];
        assert!(check(gate, &loaded, &within));
        let regressed = vec![
            Measurement { label: "a/fast".into(), mean_ns: 1_000.0 },
            Measurement { label: "b/slow".into(), mean_ns: 2_600_000.0 },
        ];
        assert!(!check(gate, &loaded, &regressed));
        let missing = vec![Measurement { label: "a/fast".into(), mean_ns: 1_000.0 }];
        assert!(!check(gate, &loaded, &missing));
        // New benches are reported but do not fail the check.
        let extra = vec![
            Measurement { label: "a/fast".into(), mean_ns: 1_000.0 },
            Measurement { label: "b/slow".into(), mean_ns: 2_000_000.0 },
            Measurement { label: "c/new".into(), mean_ns: 5.0 },
        ];
        assert!(check(gate, &loaded, &extra));
        assert!(load_baseline("{}").is_err());
        assert!(load_baseline("nope").is_err());
    }

    #[test]
    fn filter_restricts_the_gate_to_matching_families() {
        let make = |labels: &[&str]| -> Vec<Measurement> {
            labels.iter().map(|l| Measurement { label: l.to_string(), mean_ns: 1.0 }).collect()
        };
        let mut baseline =
            make(&["ranker/4", "ranker/16", "predicate_kernels/cached/4000", "server_pool/1"]);
        let mut current = make(&["ranker/4", "server_pool/1", "aggregates/x"]);
        apply_filter(&mut baseline, &mut current, "ranker/, predicate_kernels/").unwrap();
        assert_eq!(
            baseline.iter().map(|m| m.label.as_str()).collect::<Vec<_>>(),
            vec!["ranker/4", "ranker/16", "predicate_kernels/cached/4000"]
        );
        assert_eq!(current.iter().map(|m| m.label.as_str()).collect::<Vec<_>>(), vec!["ranker/4"]);
        // The filtered check still fails on a bench missing from the run.
        let gate = Gate { tolerance_pct: 25.0, min_delta_ns: 50_000.0 };
        assert!(!check(gate, &baseline, &current));

        // No match and empty prefix lists are argument errors.
        let mut b = make(&["ranker/4"]);
        assert!(apply_filter(&mut b.clone(), &mut make(&[]), "nope/").is_err());
        assert!(apply_filter(&mut b, &mut make(&[]), " , ").is_err());
    }

    #[test]
    fn absolute_floor_masks_micro_bench_jitter_but_not_real_regressions() {
        let gate = Gate { tolerance_pct: 25.0, min_delta_ns: 50_000.0 };
        let baseline = vec![Measurement { label: "micro".into(), mean_ns: 4_000.0 }];
        // 10x slower but only +36µs absolute: cross-machine noise, passes.
        let noisy = vec![Measurement { label: "micro".into(), mean_ns: 40_000.0 }];
        assert!(check(gate, &baseline, &noisy));
        // µs → ms is a real regression: clears both slacks, fails.
        let blown = vec![Measurement { label: "micro".into(), mean_ns: 4_000_000.0 }];
        assert!(!check(gate, &baseline, &blown));
        // The floor defaults to 50µs when absent from older baselines.
        let legacy = r#"{"tolerance_pct": 25, "benches": {"micro": {"mean_ns": 4000}}}"#;
        let (legacy_gate, _) = load_baseline(legacy).unwrap();
        assert_eq!(legacy_gate.min_delta_ns, 50_000.0);
    }
}

//! Experiment E5: precision of ranked provenance vs. the traditional
//! provenance and tuple-ranking baselines (paper §1 / §4 claims).

use dbwipes_bench::{corrupted_dataset, corrupted_explanation, fmt, print_table, run_query};
use dbwipes_core::baselines::{
    coarse_grained_provenance, fine_grained_provenance, greedy_responsibility,
    single_attribute_predicates, top_k_influence, SingleAttributeConfig,
};
use dbwipes_core::{rank_influence, ErrorMetric, ExplainConfig};
use dbwipes_storage::RowId;

fn main() {
    let dataset = corrupted_dataset(20_000);
    let result = run_query(&dataset.table, &dataset.group_avg_query());
    let suspicious: Vec<usize> = (0..result.len())
        .filter(|&i| result.value_f64(i, "avg_value").unwrap().unwrap_or(0.0) > 65.0)
        .collect();
    let metric = ErrorMetric::too_high("avg_value", 60.0);
    let truth_size = dataset.truth.error_count();

    let mut rows = Vec::new();
    let mut add = |name: &str, returned: Vec<RowId>, description: String| {
        let score = dataset.truth.score_rows(&returned);
        rows.push(vec![
            name.to_string(),
            returned.len().to_string(),
            fmt(score.precision),
            fmt(score.recall),
            fmt(score.f1),
            description,
        ]);
    };

    add(
        "coarse-grained provenance",
        coarse_grained_provenance(&dataset.table).rows().collect(),
        "operator graph -> whole table".into(),
    );
    add(
        "fine-grained provenance (Trio-style)",
        fine_grained_provenance(&result, &suspicious).rows().collect(),
        "all inputs of the selected outputs".into(),
    );

    let influence = rank_influence(&dataset.table, &result, &suspicious, &metric).unwrap();
    add(
        "top-k leave-one-out influence",
        top_k_influence(&influence, truth_size).rows().collect(),
        format!("k = |ground truth| = {truth_size}"),
    );
    let responsibility: Vec<RowId> = greedy_responsibility(&influence)
        .into_iter()
        .filter(|(_, r)| *r > 0.0)
        .map(|(row, _)| row)
        .collect();
    add(
        "greedy responsibility (causality-style)",
        responsibility,
        "tuples needed to drive eps to zero".into(),
    );

    let single = single_attribute_predicates(
        &dataset.table,
        &result,
        &suspicious,
        &[],
        &metric,
        &SingleAttributeConfig::default(),
    )
    .unwrap();
    if let Some(best) = single.first() {
        add(
            "exhaustive single-attribute predicate",
            best.predicate.matching_rows(&dataset.table),
            best.predicate.to_string(),
        );
    }

    let (_, explanation) = corrupted_explanation(&dataset, vec![], ExplainConfig::standard());
    let best = explanation.best().unwrap();
    add(
        "DBWipes ranked predicate (this paper)",
        best.predicate.matching_rows(&dataset.table),
        best.predicate.to_string(),
    );

    print_table(
        "E5: who explains the error? precision/recall vs. injected ground truth (20k rows)",
        &["strategy", "returned_rows", "precision", "recall", "f1", "answer"],
        &rows,
    );
    println!(
        "\nPaper expectation: traditional provenance returns thousands of tuples with very low"
    );
    println!("precision; DBWipes returns a one/two-condition predicate whose matched tuples are");
    println!("dominated by the true errors, at equal or better recall.");
}
